#!/usr/bin/env python3
"""Render a PBS telemetry JSONL artifact as a self-contained HTML dashboard.

Usage:
  pbs_report.py --telemetry pbs_telemetry.jsonl [--out pbs_report.html]
                [--title "PBS consistency report"]

Offline twin of `pbs report` (src/obs/dashboard.cc): consumes the artifact
`pbs simulate --timeseries-out=...` writes — "meta" / "window" lines from
WriteTimeSeriesJsonl, "sample" / "alert" lines from WriteMonitorJsonl, and
"decision" lines from WriteDecisionsJsonl — and emits a single HTML file
with inline SVG charts. Standard library only, so it runs anywhere the CI
artifacts land without a toolchain or a pip install.
"""

import argparse
import html
import json
import sys

WIDTH, HEIGHT = 860.0, 220.0
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 56.0, 12.0, 26.0, 22.0

STYLE = """
body{font:14px/1.45 system-ui,sans-serif;margin:24px;background:#fafafa;color:#222}
h1{font-size:20px}h2{font-size:14px;margin:0 0 4px}
.card{background:#fff;border:1px solid #ddd;border-radius:6px;padding:12px;margin:0 0 16px;max-width:900px}
svg{width:100%;height:auto}
.grid{stroke:#eee}.tick{font-size:10px;fill:#888;text-anchor:end}.legend{font-size:11px}
.alertmark{stroke:#d73027;stroke-width:1.2;stroke-dasharray:2 3}
table{border-collapse:collapse;width:100%;font-size:12px}
th,td{border:1px solid #ddd;padding:3px 8px;text-align:left}
th{background:#f4f4f4}
.chosen{background:#e6f4e6}.alert{color:#b2182b;font-weight:600}
"""


def fmt(value):
    return f"{value:.4g}"


def parse_artifact(path):
    """Splits the JSONL stream into typed line groups; malformed lines and
    unknown types are skipped (the artifact may be a concatenation)."""
    groups = {"meta": [], "window": [], "sample": [], "alert": [],
              "decision": []}
    with open(path) as artifact:
        for line in artifact:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("type") in groups:
                groups[record["type"]].append(record)
    return groups


def render_chart(title, series, marks=()):
    """One fixed-size SVG line chart: (label, color, dashed, points) tuples
    over a shared frame, four horizontal gridlines, alert marks as dashed
    verticals. Mirrors obs::RenderChart."""
    points = [p for _, _, _, pts in series for p in pts]
    if points:
        x_min = min(p[0] for p in points)
        x_max = max(p[0] for p in points)
        y_min = min(0.0, min(p[1] for p in points))
        y_max = max(p[1] for p in points)
    else:
        x_min, x_max, y_min, y_max = 0.0, 1.0, 0.0, 1.0
    if x_max <= x_min:
        x_max = x_min + 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0

    def sx(x):
        return MARGIN_L + (x - x_min) / (x_max - x_min) * (
            WIDTH - MARGIN_L - MARGIN_R)

    def sy(y):
        return HEIGHT - MARGIN_B - (y - y_min) / (y_max - y_min) * (
            HEIGHT - MARGIN_T - MARGIN_B)

    out = [f'<div class="card"><h2>{html.escape(title)}</h2>'
           f'<svg viewBox="0 0 {fmt(WIDTH)} {fmt(HEIGHT)}" role="img">']
    for g in range(5):
        y = y_min + (y_max - y_min) * g / 4.0
        out.append(
            f'<line x1="{fmt(MARGIN_L)}" y1="{fmt(sy(y))}" '
            f'x2="{fmt(WIDTH - MARGIN_R)}" y2="{fmt(sy(y))}" class="grid"/>'
            f'<text x="{fmt(MARGIN_L - 6)}" y="{fmt(sy(y) + 4)}" '
            f'class="tick">{fmt(y)}</text>')
    for mark in marks:
        if x_min <= mark <= x_max:
            out.append(
                f'<line x1="{fmt(sx(mark))}" y1="{fmt(MARGIN_T)}" '
                f'x2="{fmt(sx(mark))}" y2="{fmt(HEIGHT - MARGIN_B)}" '
                f'class="alertmark"/>')
    legend_x = MARGIN_L
    for label, color, dashed, pts in series:
        if not pts:
            continue
        dash = ' stroke-dasharray="6 4"' if dashed else ""
        path = " ".join(f"{fmt(sx(x))},{fmt(sy(y))}" for x, y in pts)
        out.append(f'<polyline fill="none" stroke="{color}" '
                   f'stroke-width="1.8"{dash} points="{path}"/>')
        out.append(f'<text x="{fmt(legend_x)}" y="{fmt(MARGIN_T - 10)}" '
                   f'fill="{color}" class="legend">{html.escape(label)}'
                   f'</text>')
        legend_x += 10.0 * (len(label) + 2)
    out.append(
        f'<text x="{fmt(MARGIN_L)}" y="{fmt(HEIGHT - 6)}" class="tick">'
        f'{fmt(x_min)} ms</text>'
        f'<text x="{fmt(WIDTH - MARGIN_R)}" y="{fmt(HEIGHT - 6)}" '
        f'class="tick" text-anchor="end">{fmt(x_max)} ms</text>'
        f'</svg></div>\n')
    return "".join(out)


def sample_series(samples, key, predicate=None):
    return [(s.get("end_ms", 0.0), s.get(key, 0.0)) for s in samples
            if predicate is None or predicate(s)]


def render(groups, title):
    samples = groups["sample"]
    alerts = groups["alert"]
    decisions = groups["decision"]
    meta = groups["meta"][0] if groups["meta"] else {}
    marks = [a.get("time_ms", 0.0) for a in alerts]

    has_pred = lambda s: "predicted_fresh" in s
    charts = [
        render_chart("Freshness: measured vs. predicted", [
            ("measured fresh", "#1b7837", False,
             sample_series(samples, "measured_fresh")),
            ("predicted fresh", "#542788", True,
             sample_series(samples, "predicted_fresh", has_pred)),
        ], marks),
        render_chart("Read latency (ms): measured quantiles vs. prediction", [
            ("p50", "#2166ac", False, sample_series(samples, "read_p50_ms")),
            ("p99", "#b2182b", False, sample_series(samples, "read_p99_ms")),
            ("predicted p99", "#542788", True,
             sample_series(samples, "predicted_p99_ms",
                           lambda s: "predicted_p99_ms" in s)),
        ], marks),
        render_chart("Drift score (1.0 = tolerance)", [
            ("drift score", "#e08214", False,
             sample_series(samples, "drift_score")),
        ], marks),
        render_chart("Mitigation traffic per window", [
            ("hedges", "#8073ac", False, sample_series(samples, "hedges")),
            ("retries", "#d6604d", False, sample_series(samples, "retries")),
            ("stale reads", "#b2182b", False,
             sample_series(samples, "stale")),
        ], marks),
    ]

    out = [f'<!DOCTYPE html>\n<html><head><meta charset="utf-8">\n'
           f'<title>{html.escape(title)}</title>\n<style>{STYLE}</style>'
           f'</head><body>\n<h1>{html.escape(title)}</h1>\n']
    summary = (f"{len(samples)} monitor windows · "
               f"{len(groups['window'])} time-series windows · "
               f"{len(alerts)} alerts · "
               f"{len(decisions)} controller decisions")
    if meta.get("window_ms", 0.0) > 0.0:
        summary += f" · window {fmt(meta['window_ms'])} ms"
    out.append(f"<p>{summary}</p>\n")
    out.extend(charts)

    out.append('<div class="card"><h2>Alerts</h2>')
    if not alerts:
        out.append("<p>No alerts raised.</p>")
    else:
        out.append("<table><tr><th>kind</th><th>window</th><th>t (ms)</th>"
                   "<th>value</th><th>threshold</th><th>detail</th></tr>")
        for a in alerts:
            out.append(
                f'<tr><td class="alert">{html.escape(a.get("kind", ""))}'
                f'</td><td>{fmt(a.get("window_id", 0))}</td>'
                f'<td>{fmt(a.get("time_ms", 0.0))}</td>'
                f'<td>{fmt(a.get("value", 0.0))}</td>'
                f'<td>{fmt(a.get("threshold", 0.0))}</td>'
                f'<td>{html.escape(a.get("detail", ""))}</td></tr>')
        out.append("</table>")
    out.append("</div>\n")

    out.append('<div class="card"><h2>Controller decisions</h2>')
    if not decisions:
        out.append("<p>No controller ran.</p>")
    else:
        out.append("<table><tr><th>id</th><th>t (ms)</th><th>action</th>"
                   "<th>quorum</th><th>pred fresh</th><th>pred p99</th>"
                   "<th>meas fresh</th><th>meas p99</th><th>candidates "
                   "(rejected in gray)</th></tr>")
        for d in decisions:
            measured = d.get("measured_fresh", -1.0)
            cells = []
            for c in d.get("candidates", []):
                klass = (' class="chosen"' if c.get("chosen")
                         else ' style="color:#999"')
                cells.append(
                    f'<span{klass}>{html.escape(c.get("action", ""))} '
                    f'(p={fmt(c.get("predicted_fresh", 0.0))}, '
                    f'p99={fmt(c.get("predicted_p99_ms", 0.0))})</span>')
            out.append(
                f'<tr><td>{fmt(d.get("id", 0))}</td>'
                f'<td>{fmt(d.get("time_ms", 0.0))}</td>'
                f'<td>{html.escape(d.get("action", ""))}</td>'
                f'<td>R∈[{fmt(d.get("r_lo", 0))},{fmt(d.get("r_hi", 0))}] '
                f'mix {fmt(d.get("mix", 0.0))} W={fmt(d.get("w", 0))}</td>'
                f'<td>{fmt(d.get("predicted_fresh", 0.0))}</td>'
                f'<td>{fmt(d.get("predicted_p99_ms", 0.0))}</td>'
                f'<td>{fmt(measured) if measured >= 0.0 else "—"}</td>'
                f'<td>{fmt(d.get("measured_p99_ms", 0.0))}</td>'
                f'<td>{" ".join(cells)}</td></tr>')
        out.append("</table>")
    out.append("</div>\n</body></html>\n")
    return "".join(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", default="pbs_telemetry.jsonl")
    parser.add_argument("--out", default="pbs_report.html")
    parser.add_argument("--title", default="PBS consistency report")
    args = parser.parse_args()

    try:
        groups = parse_artifact(args.telemetry)
    except OSError as error:
        print(f"cannot open {args.telemetry}: {error} "
              "(run `pbs simulate --timeseries-out=...` first)",
              file=sys.stderr)
        return 1
    if not any(groups.values()):
        print(f"warning: {args.telemetry} contained no telemetry lines",
              file=sys.stderr)
    with open(args.out, "w") as out:
        out.write(render(groups, args.title))
    n_lines = sum(len(g) for g in groups.values())
    print(f"wrote {args.out} ({n_lines} telemetry lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
