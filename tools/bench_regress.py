#!/usr/bin/env python3
"""Compare a micro_perf result file against the committed baseline.

Usage:
  bench_regress.py --baseline bench/baselines/micro_perf.json \
                   --current bench_results/BENCH_micro_perf.json \
                   [--threshold-pct 10] [--headline name ...]

Exits non-zero when any headline metric's items_per_second regresses by
more than its tolerance relative to the baseline. Non-headline benchmarks
are reported but never gate: shared CI runners are too noisy to gate every
microbenchmark, so the gate covers only the throughput numbers the project
tracks as deliverables. Benchmarks present on one side only are reported
and skipped (renames and additions should update the baseline in the same
change).

Per-metric tolerances: the baseline file may carry a top-level
"tolerances" object mapping benchmark name -> allowed regression percent,
overriding --threshold-pct for that metric only. Use it for headlines
whose workload is inherently noisier than the default gate, e.g.:

  { "benchmark": "micro_perf",
    "tolerances": {"kvs_cluster_ops_telemetry": 15},
    "results": [...] }
"""

import argparse
import json
import sys

# Throughput numbers tracked as deliverables (README / ISSUE acceptance):
# the WARS Monte Carlo headline, the compiled KVS hot path and its
# per-message baseline, and the event-queue churn floor.
DEFAULT_HEADLINES = [
    "wars_trials_n5",
    "kvs_cluster_ops",
    "kvs_cluster_ops_legacy",
    "sim_event_churn",
]


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("mode") != "full":
        print(f"warning: {path} was produced in '{doc.get('mode')}' mode; "
              "only full-mode numbers are comparable", file=sys.stderr)
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold-pct", type=float, default=10.0)
    parser.add_argument("--headline", nargs="*", default=DEFAULT_HEADLINES)
    args = parser.parse_args()

    baseline_doc = load_doc(args.baseline)
    baseline = {r["name"]: r for r in baseline_doc["results"]}
    current = {r["name"]: r for r in load_doc(args.current)["results"]}
    tolerances = baseline_doc.get("tolerances", {})
    for name, pct in tolerances.items():
        if not isinstance(pct, (int, float)) or pct < 0:
            print(f"error: baseline tolerance for '{name}' must be a "
                  f"non-negative number, got {pct!r}", file=sys.stderr)
            return 2

    failures = []
    print(f"{'benchmark':<34} {'baseline/s':>12} {'current/s':>12} "
          f"{'delta':>8} {'gate':>7}")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:<34} {'-':>12} "
                  f"{current[name]['items_per_second']:>12.3e} "
                  f"{'new':>8} {'-':>7}")
            continue
        if name not in current:
            print(f"{name:<34} {baseline[name]['items_per_second']:>12.3e} "
                  f"{'-':>12} {'gone':>8} {'-':>7}")
            continue
        base = baseline[name]["items_per_second"]
        cur = current[name]["items_per_second"]
        delta_pct = 100.0 * (cur / base - 1.0)
        gated = name in args.headline
        tolerance = tolerances.get(name, args.threshold_pct)
        gate = f"-{tolerance:.0f}%" if gated else "-"
        print(f"{name:<34} {base:>12.3e} {cur:>12.3e} {delta_pct:>+7.1f}% "
              f"{gate:>7}")
        if gated and delta_pct < -tolerance:
            failures.append((name, base, cur, delta_pct, tolerance))

    if failures:
        for name, base, cur, delta_pct, tolerance in failures:
            print(f"FAIL: {name} regressed {delta_pct:+.1f}% "
                  f"(tolerance -{tolerance:.0f}%): baseline "
                  f"{base:.6g} items/s ({baseline[name]['ns_per_item']:.3f} "
                  f"ns/item), measured {cur:.6g} items/s "
                  f"({current[name]['ns_per_item']:.3f} ns/item)",
                  file=sys.stderr)
        return 1
    print("ok: no headline metric regressed beyond its tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
