#!/usr/bin/env python3
"""Compare a micro_perf result file against the committed baseline.

Usage:
  bench_regress.py --baseline bench/baselines/micro_perf.json \
                   --current bench_results/BENCH_micro_perf.json \
                   [--threshold-pct 10] [--headline name ...]

Exits non-zero when any headline metric's items_per_second regresses by
more than the threshold relative to the baseline. Non-headline benchmarks
are reported but never gate: shared CI runners are too noisy to gate every
microbenchmark, so the gate covers only the throughput numbers the project
tracks as deliverables. Benchmarks present on one side only are reported
and skipped (renames and additions should update the baseline in the same
change).
"""

import argparse
import json
import sys

# Throughput numbers tracked as deliverables (README / ISSUE acceptance):
# the WARS Monte Carlo headline, the compiled KVS hot path and its
# per-message baseline, and the event-queue churn floor.
DEFAULT_HEADLINES = [
    "wars_trials_n5",
    "kvs_cluster_ops",
    "kvs_cluster_ops_legacy",
    "sim_event_churn",
]


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("mode") != "full":
        print(f"warning: {path} was produced in '{doc.get('mode')}' mode; "
              "only full-mode numbers are comparable", file=sys.stderr)
    return {r["name"]: r for r in doc["results"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold-pct", type=float, default=10.0)
    parser.add_argument("--headline", nargs="*", default=DEFAULT_HEADLINES)
    args = parser.parse_args()

    baseline = load_results(args.baseline)
    current = load_results(args.current)

    failures = []
    print(f"{'benchmark':<34} {'baseline/s':>12} {'current/s':>12} "
          f"{'delta':>8}  gated")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"{name:<34} {'-':>12} "
                  f"{current[name]['items_per_second']:>12.3e} "
                  f"{'new':>8}  no")
            continue
        if name not in current:
            print(f"{name:<34} {baseline[name]['items_per_second']:>12.3e} "
                  f"{'-':>12} {'gone':>8}  no")
            continue
        base = baseline[name]["items_per_second"]
        cur = current[name]["items_per_second"]
        delta_pct = 100.0 * (cur / base - 1.0)
        gated = name in args.headline
        print(f"{name:<34} {base:>12.3e} {cur:>12.3e} {delta_pct:>+7.1f}%  "
              f"{'yes' if gated else 'no'}")
        if gated and delta_pct < -args.threshold_pct:
            failures.append((name, delta_pct))

    if failures:
        for name, delta_pct in failures:
            print(f"FAIL: {name} regressed {delta_pct:+.1f}% "
                  f"(threshold -{args.threshold_pct:.0f}%)", file=sys.stderr)
        return 1
    print(f"ok: no headline metric regressed more than "
          f"{args.threshold_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
