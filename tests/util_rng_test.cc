#include "util/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 95);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextOpenDoubleNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextOpenDouble();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 10000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(8, 0);
  const int n = 800000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.003);
  }
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent_a(42);
  Rng parent_b(42);
  Rng child_a = parent_a.Split();
  Rng child_b = parent_b.Split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a.Next(), child_b.Next());
  // The child does not replay the parent.
  Rng parent(42);
  Rng child = parent.Split();
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++matches;
  }
  EXPECT_LT(matches, 5);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(5);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace pbs
