#include "util/rng.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 95);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextOpenDoubleNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextOpenDouble();
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 10000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(8, 0);
  const int n = 800000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.003);
  }
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent_a(42);
  Rng parent_b(42);
  Rng child_a = parent_a.Split();
  Rng child_b = parent_b.Split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a.Next(), child_b.Next());
  // The child does not replay the parent.
  Rng parent(42);
  Rng child = parent.Split();
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++matches;
  }
  EXPECT_LT(matches, 5);
}

TEST(RngTest, NextBoundedOfOneIsAlwaysZero) {
  // bound = 1 makes Lemire's rejection threshold (-1 % 1) == 0, so every
  // draw is accepted and reduced mod 1. Regression test for the path that
  // used to sit one typo away from a division by zero.
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedLargeNonPowerOfTwoStaysInRangeAndCentered) {
  // A bound just above 2^63 rejects almost half of all raw draws, so the
  // rejection loop itself is exercised heavily.
  const uint64_t bound = (1ULL << 63) + 12345ULL;
  Rng rng(31);
  long double sum = 0.0L;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.NextBounded(bound);
    EXPECT_LT(v, bound);
    sum += static_cast<long double>(v);
  }
  const long double mean = sum / n;
  const long double expected = static_cast<long double>(bound - 1) / 2.0L;
  // Std error of the mean is bound/sqrt(12 n) ~ 0.0006 * bound; 5 sigma.
  EXPECT_NEAR(static_cast<double>(mean / expected), 1.0, 0.007);
}

TEST(RngTest, NextBoundedChiSquaredUniform) {
  // Pearson chi-squared goodness-of-fit over a non-power-of-two bound,
  // where a naive `Next() % bound` would show modulo bias.
  const uint64_t bound = 1000;
  const int n = 1000000;
  Rng rng(37);
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  const double expected = static_cast<double>(n) / bound;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 999 degrees of freedom: mean 999, sd sqrt(2*999) ~ 44.7. Accept within
  // ~5.5 sigma on each side so the test is deterministic-seed stable.
  EXPECT_GT(chi2, 999.0 - 250.0);
  EXPECT_LT(chi2, 999.0 + 250.0);
}

TEST(RngTest, StateRoundTripsThroughFromState) {
  Rng a(123);
  a.Next();
  Rng b = Rng::FromState(a.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

// --- Jump verification via GF(2) linear algebra -------------------------
//
// The xoshiro256 state transition is linear over GF(2), so one Next() step
// is a 256x256 bit matrix T acting on the state vector. Jump() claims to be
// T^(2^128) and LongJump() T^(2^192). We verify that claim from first
// principles: build T column-by-column from basis states, square it 128
// (resp. 192) times, and compare the matrix action with the jump calls on
// random states. This checks the published jump polynomials against the
// step function itself, with no self-generated golden values.

using Bits256 = std::array<uint64_t, 4>;
// Matrix stored as 256 columns; column j = M * e_j.
using Mat256 = std::array<Bits256, 256>;

Bits256 XorInto(Bits256 a, const Bits256& b) {
  for (int i = 0; i < 4; ++i) a[i] ^= b[i];
  return a;
}

Bits256 MatVec(const Mat256& m, const Bits256& v) {
  Bits256 out = {0, 0, 0, 0};
  for (int j = 0; j < 256; ++j) {
    if (v[j / 64] & (1ULL << (j % 64))) out = XorInto(out, m[j]);
  }
  return out;
}

Mat256 MatMul(const Mat256& a, const Mat256& b) {
  Mat256 out;
  for (int j = 0; j < 256; ++j) out[j] = MatVec(a, b[j]);
  return out;
}

// One xoshiro256 step as a matrix: column j is the successor state of the
// basis state e_j (the step is linear, so columns fully determine it).
Mat256 StepMatrix() {
  Mat256 t;
  for (int j = 0; j < 256; ++j) {
    Bits256 basis = {0, 0, 0, 0};
    basis[j / 64] = 1ULL << (j % 64);
    Rng rng = Rng::FromState(basis);
    rng.Next();
    t[j] = rng.state();
  }
  return t;
}

TEST(RngTest, JumpMatchesStepMatrixPower) {
  Mat256 power = StepMatrix();
  for (int i = 0; i < 128; ++i) power = MatMul(power, power);
  // `power` is now T^(2^128). Check the action on several random states.
  Rng source(20240807);
  for (int trial = 0; trial < 4; ++trial) {
    Bits256 state = {source.Next(), source.Next(), source.Next(),
                     source.Next()};
    Rng jumped = Rng::FromState(state);
    jumped.Jump();
    EXPECT_EQ(jumped.state(), MatVec(power, state)) << "trial " << trial;
  }
}

TEST(RngTest, LongJumpMatchesStepMatrixPower) {
  Mat256 power = StepMatrix();
  for (int i = 0; i < 192; ++i) power = MatMul(power, power);
  // `power` is now T^(2^192).
  Rng source(424242);
  for (int trial = 0; trial < 4; ++trial) {
    Bits256 state = {source.Next(), source.Next(), source.Next(),
                     source.Next()};
    Rng jumped = Rng::FromState(state);
    jumped.LongJump();
    EXPECT_EQ(jumped.state(), MatVec(power, state)) << "trial " << trial;
  }
}

TEST(RngTest, JumpedStreamsDoNotOverlapLocally) {
  // Streams 2^128 draws apart should share no values in a short window
  // (any overlap here would mean the jump is catastrophically short).
  Rng a(7);
  Rng b = a;  // identical state
  b.Jump();
  std::set<uint64_t> from_a;
  for (int i = 0; i < 4096; ++i) from_a.insert(a.Next());
  for (int i = 0; i < 4096; ++i) EXPECT_EQ(from_a.count(b.Next()), 0u);
}

TEST(RngTest, SplitChildrenAreDistinctAcrossTree) {
  // Exercise the tree: parents, children, grandchildren must all emit
  // distinct first draws (the old 64-bit-seed Split made such collisions
  // far more likely than full-state derivation allows).
  Rng root(1);
  std::vector<Rng> nodes;
  nodes.push_back(root);
  for (int depth = 0; depth < 3; ++depth) {
    const size_t end = nodes.size();
    for (size_t i = 0; i < end; ++i) {
      nodes.push_back(nodes[i].Split());
      nodes.push_back(nodes[i].Split());
    }
  }
  std::set<uint64_t> first_draws;
  for (Rng& node : nodes) first_draws.insert(node.Next());
  EXPECT_EQ(first_draws.size(), nodes.size());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(5);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace pbs
