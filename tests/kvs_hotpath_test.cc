// The compiled quorum hot path (kvs/hotpath.h): determinism pins —
// bitwise thread-count invariance of the sharded event loop — plus
// statistical parity with the per-message KVS engine it replaces on the
// micro_perf headline.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dist/production.h"
#include "kvs/experiment.h"
#include "kvs/hotpath.h"

namespace pbs {
namespace kvs {
namespace {

HotPathOptions SmallRun() {
  HotPathOptions options;
  options.num_streams = 48;
  options.writes_per_stream = 400;
  options.seed = 21;
  return options;
}

TEST(HotPathTest, ThreadCountIsBitwiseIrrelevant) {
  // The acceptance pin: identical digests (an order-sensitive hash over
  // every event) at 1, 4 and 8 threads, plus the hardware default.
  const HotPathResult serial = RunHotPath(SmallRun());
  EXPECT_GT(serial.total_ops(), 0);
  for (int threads : {4, 8, 0, 3}) {
    HotPathOptions options = SmallRun();
    options.threads = threads;
    const HotPathResult parallel = RunHotPath(options);
    EXPECT_EQ(parallel.digest, serial.digest) << threads << " threads";
    EXPECT_EQ(parallel.writes_committed, serial.writes_committed);
    EXPECT_EQ(parallel.reads, serial.reads);
    EXPECT_EQ(parallel.consistent_reads, serial.consistent_reads);
    EXPECT_EQ(parallel.events, serial.events);
    EXPECT_EQ(parallel.mean_write_latency_ms, serial.mean_write_latency_ms);
    EXPECT_EQ(parallel.mean_read_latency_ms, serial.mean_read_latency_ms);
  }
}

TEST(HotPathTest, SyncWindowIsBitwiseIrrelevant) {
  // Shards are data-independent between barriers, so the barrier spacing
  // may only change wall-clock cost — never the result.
  const HotPathResult coarse = RunHotPath(SmallRun());
  for (double window : {16.0, 128.0, 1e9}) {
    HotPathOptions options = SmallRun();
    options.sync_window_ms = window;
    options.threads = 4;
    EXPECT_EQ(RunHotPath(options).digest, coarse.digest) << window;
  }
}

TEST(HotPathTest, RerunsAreDeterministicAndSeedsDiffer) {
  EXPECT_EQ(RunHotPath(SmallRun()).digest, RunHotPath(SmallRun()).digest);
  HotPathOptions reseeded = SmallRun();
  reseeded.seed = 22;
  EXPECT_NE(RunHotPath(reseeded).digest, RunHotPath(SmallRun()).digest);
}

TEST(HotPathTest, OperationAccountingIsConserved) {
  HotPathOptions options = SmallRun();
  const HotPathResult result = RunHotPath(options);
  EXPECT_EQ(result.writes_started,
            options.num_streams * options.writes_per_stream);
  EXPECT_EQ(result.writes_committed + result.writes_timed_out,
            result.writes_started);
  // One probe read per committed write; one kTick + one kResolve per pair.
  EXPECT_EQ(result.reads, result.writes_committed);
  EXPECT_EQ(result.events, result.writes_started + result.reads);
  EXPECT_GT(result.mean_write_latency_ms, 0.0);
}

TEST(HotPathTest, StrongerReadQuorumsAreMoreConsistent) {
  // PBS Figure 2 monotonicity: raising R cannot lower P(consistent at t).
  double previous = -1.0;
  for (int r : {1, 2, 3}) {
    HotPathOptions options = SmallRun();
    options.r = r;
    const double p = RunHotPath(options).consistency();
    EXPECT_GE(p, previous) << "r=" << r;
    previous = p;
  }
  EXPECT_DOUBLE_EQ(previous, 1.0);  // R == N reads the freshest replica
}

TEST(HotPathTest, MatchesPerMessageEngineStatistically) {
  // Same quorum, same LNKD-SSD legs, same probe offset: the pass-structured
  // engine must reproduce the per-message engine's t-visibility and commit
  // latency within Monte Carlo noise (it replaces that engine on the
  // kvs_cluster_ops headline, so parity is the whole point).
  HotPathOptions hot;
  hot.num_streams = 64;
  hot.writes_per_stream = 1500;
  hot.seed = 5;
  const HotPathResult compiled = RunHotPath(hot);

  StalenessExperimentOptions legacy;
  legacy.cluster.quorum = {3, 1, 1};
  legacy.cluster.legs = LnkdSsd();
  legacy.cluster.request_timeout_ms = 100.0;
  legacy.writes = 12000;
  legacy.write_spacing_ms = 10.0;
  legacy.read_offsets_ms = {1.0};
  legacy.seed = 5;
  const StalenessExperimentResult reference =
      RunStalenessExperiment(legacy);
  ASSERT_EQ(reference.t_visibility.size(), 1u);
  const double p_reference = reference.t_visibility[0].ProbConsistent();

  EXPECT_NEAR(compiled.consistency(), p_reference, 0.01)
      << "t-visibility diverged from the per-message engine";

  double latency_sum = 0.0;
  for (double w : reference.write_latencies) latency_sum += w;
  const double mean_reference =
      latency_sum / static_cast<double>(reference.write_latencies.size());
  EXPECT_NEAR(compiled.mean_write_latency_ms, mean_reference,
              0.05 * mean_reference)
      << "commit latency diverged from the per-message engine";
}

TEST(HotPathTest, QuorumKnobsClampToValidRanges) {
  HotPathOptions options = SmallRun();
  options.n = 99;   // clamped to the fixed-array cap
  options.r = 99;   // clamped to n
  options.w = -5;   // clamped to 1
  const HotPathResult result = RunHotPath(options);
  EXPECT_GT(result.total_ops(), 0);
  EXPECT_DOUBLE_EQ(result.consistency(), 1.0);  // clamped r == n
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
