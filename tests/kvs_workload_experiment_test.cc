#include <cmath>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/cluster.h"
#include "kvs/experiment.h"
#include "kvs/workload.h"

namespace pbs {
namespace kvs {
namespace {

KvsConfig SsdConfig(QuorumConfig quorum) {
  KvsConfig config;
  config.quorum = quorum;
  config.legs = LnkdSsd();
  config.request_timeout_ms = 500.0;
  config.seed = 5;
  return config;
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfKeyGenerator gen(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfKeyGenerator gen(1000, 0.99);
  Rng rng(2);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(rng) < 10) ++hot;
  }
  // Under theta=0.99 skew the top-10 of 1000 keys absorb ~39% of accesses
  // (vs 1% under uniform).
  EXPECT_GT(static_cast<double>(hot) / n, 0.3);
}

TEST(ZipfTest, KeysStayInRange) {
  ZipfKeyGenerator gen(17, 0.8);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(gen.Next(rng), 17u);
  }
}

TEST(WorkloadDriverTest, AllOperationsComplete) {
  Cluster cluster(SsdConfig({3, 1, 1}));
  WorkloadOptions options;
  options.operations = 2000;
  options.read_fraction = 0.8;
  options.num_keys = 50;
  options.seed = 7;
  WorkloadDriver driver(&cluster, options);
  const WorkloadResult result = driver.RunToCompletion();
  EXPECT_EQ(result.reads_completed + result.writes_committed +
                result.failed_operations,
            2000);
  EXPECT_EQ(result.failed_operations, 0);
  EXPECT_GT(result.reads_completed, 1400);
  EXPECT_GT(result.writes_committed, 250);
}

TEST(WorkloadDriverTest, StrictQuorumHasNoMonotonicViolations) {
  Cluster cluster(SsdConfig({3, 2, 2}));
  WorkloadOptions options;
  options.operations = 3000;
  options.read_fraction = 0.7;
  options.num_keys = 5;  // hot keys maximize read-your-older-write chances
  options.zipf_theta = 0.9;
  options.mean_interarrival_ms = 0.2;
  options.seed = 8;
  WorkloadDriver driver(&cluster, options);
  const WorkloadResult result = driver.RunToCompletion();
  EXPECT_EQ(result.monotonic_violations, 0);
  EXPECT_GT(result.staleness.total(), 0);
  // Strict quorums never return older than the committed watermark
  // (in-flight newer writes do not count as staleness — Definition 1).
  EXPECT_DOUBLE_EQ(result.staleness.ProbStalerThan(1), 0.0);
}

TEST(WorkloadPresetTest, MixesMatchYcsbDefinitions) {
  const auto a = MakePresetOptions(WorkloadPreset::kYcsbA, 100, 1.0);
  EXPECT_DOUBLE_EQ(a.read_fraction, 0.5);
  const auto b = MakePresetOptions(WorkloadPreset::kYcsbB, 100, 1.0);
  EXPECT_DOUBLE_EQ(b.read_fraction, 0.95);
  const auto c = MakePresetOptions(WorkloadPreset::kYcsbC, 100, 1.0);
  EXPECT_DOUBLE_EQ(c.read_fraction, 1.0);
  const auto d = MakePresetOptions(WorkloadPreset::kYcsbD, 100, 1.0);
  EXPECT_LT(d.num_keys, a.num_keys);  // read-latest hot set
  EXPECT_DOUBLE_EQ(a.zipf_theta, 0.99);
  EXPECT_STREQ(PresetName(WorkloadPreset::kYcsbA), "YCSB-A (update heavy)");
}

TEST(WorkloadPresetTest, PresetRunsEndToEnd) {
  Cluster cluster(SsdConfig({3, 1, 1}));
  WorkloadDriver driver(
      &cluster, MakePresetOptions(WorkloadPreset::kYcsbB, 2000, 0.5,
                                  /*seed=*/5));
  const WorkloadResult result = driver.RunToCompletion();
  EXPECT_EQ(result.failed_operations, 0);
  // ~95% reads.
  EXPECT_NEAR(static_cast<double>(result.reads_completed) / 2000.0, 0.95,
              0.02);
}

TEST(WorkloadDriverTest, PartialQuorumShowsVersionStaleness) {
  // Slow writes + rapid operations on few keys: partial quorums return old
  // versions measurably often.
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = MakeWars("slow", Exponential(0.05), Exponential(1.0));
  config.request_timeout_ms = 2000.0;
  config.seed = 9;
  Cluster cluster(config);
  WorkloadOptions options;
  options.operations = 4000;
  options.read_fraction = 0.5;
  options.num_keys = 3;
  options.mean_interarrival_ms = 0.5;
  options.seed = 10;
  WorkloadDriver driver(&cluster, options);
  const WorkloadResult result = driver.RunToCompletion();
  EXPECT_GT(result.staleness.ProbStalerThan(1), 0.05);
}

TEST(StalenessExperimentTest, StrictQuorumAlwaysConsistent) {
  StalenessExperimentOptions options;
  options.cluster = SsdConfig({3, 2, 2});
  options.writes = 300;
  options.write_spacing_ms = 50.0;
  options.read_offsets_ms = {0.0, 1.0, 5.0};
  const auto result = RunStalenessExperiment(options);
  for (const auto& point : result.t_visibility) {
    EXPECT_DOUBLE_EQ(point.ProbConsistent(), 1.0) << "t=" << point.t;
    EXPECT_EQ(point.trials, 300);
  }
  EXPECT_EQ(result.detector_stale, 0);
}

TEST(StalenessExperimentTest, ConsistencyImprovesWithT) {
  StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs =
      MakeWars("slow", Exponential(0.1), Exponential(0.5));
  options.cluster.request_timeout_ms = 1000.0;
  options.writes = 1500;
  options.write_spacing_ms = 300.0;
  options.read_offsets_ms = {0.0, 5.0, 20.0, 80.0};
  const auto result = RunStalenessExperiment(options);
  ASSERT_EQ(result.t_visibility.size(), 4u);
  // Monotone non-decreasing in t, and visibly below 1 at t=0.
  EXPECT_LT(result.t_visibility[0].ProbConsistent(), 0.95);
  for (size_t i = 1; i < result.t_visibility.size(); ++i) {
    EXPECT_GE(result.t_visibility[i].ProbConsistent() + 0.04,
              result.t_visibility[i - 1].ProbConsistent());
  }
  EXPECT_GT(result.t_visibility[3].ProbConsistent(),
            result.t_visibility[0].ProbConsistent());
}

TEST(StalenessExperimentTest, ReadRepairImprovesConsistency) {
  StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs =
      MakeWars("slow", Exponential(0.05), Exponential(1.0));
  options.cluster.request_timeout_ms = 2000.0;
  options.writes = 1200;
  options.write_spacing_ms = 400.0;
  options.read_offsets_ms = {0.0, 1.0, 3.0, 10.0, 30.0};

  auto without = RunStalenessExperiment(options);
  options.cluster.read_repair = true;
  auto with = RunStalenessExperiment(options);
  // Probe reads at earlier offsets repair replicas, helping later offsets
  // of the same version: average consistency should not get worse.
  double sum_without = 0.0;
  double sum_with = 0.0;
  for (size_t i = 0; i < without.t_visibility.size(); ++i) {
    sum_without += without.t_visibility[i].ProbConsistent();
    sum_with += with.t_visibility[i].ProbConsistent();
  }
  EXPECT_GE(sum_with + 0.05, sum_without);
  EXPECT_GT(with.final_metrics.read_repairs_sent, 0);
}

TEST(StalenessExperimentTest, DetectorAccountingIsComplete) {
  StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs = LnkdDisk();
  options.cluster.request_timeout_ms = 1000.0;
  options.writes = 500;
  options.write_spacing_ms = 200.0;
  options.read_offsets_ms = {0.0, 10.0};
  const auto result = RunStalenessExperiment(options);
  const int64_t classified = result.detector_consistent +
                             result.detector_stale +
                             result.detector_false_positives;
  // One observation per completed probe read.
  int64_t probes = 0;
  for (const auto& point : result.t_visibility) probes += point.trials;
  EXPECT_EQ(classified, probes);
}

TEST(StalenessExperimentTest, LatenciesRecorded) {
  StalenessExperimentOptions options;
  options.cluster = SsdConfig({3, 1, 1});
  options.writes = 200;
  options.write_spacing_ms = 20.0;
  options.read_offsets_ms = {1.0};
  const auto result = RunStalenessExperiment(options);
  EXPECT_EQ(result.write_latencies.size(), 200u);
  EXPECT_EQ(result.read_latencies.size(), 200u);
  for (double latency : result.write_latencies) EXPECT_GT(latency, 0.0);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
