// Zero-allocation audit of the KVS hot path. This binary links
// pbs_alloc_hook, which replaces global operator new with a counting
// version: after a warmup that fills every pool (op slots, version arena,
// timer-wheel slab, routing scratch vectors, metrics buffers), the
// steady-state read/write path must perform literally zero heap
// allocations. The counter is monotonic (frees are not subtracted), so an
// allocate-per-op pattern cannot hide behind matching deletes.

#include <cstdint>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/cluster.h"
#include "kvs/failure_detector.h"
#include "kvs/hotpath.h"
#include "util/alloc_hook.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

constexpr int kKeys = 32;

// One closed-loop write+read per key, driven through the coordinator
// directly (the client layer's retry wrapper captures per-op state in a
// std::function and is not part of the zero-allocation contract).
// Returns the number of failed operations (must stay 0; asserting inside
// the measured region would allocate on the failure path only).
int RunRound(Cluster* cluster, Node* coordinator) {
  int failures = 0;
  for (int k = 0; k < kKeys; ++k) {
    const Key key = 1 + k;
    VersionedValue versioned;
    versioned.sequence = cluster->NextSequenceFor(key);
    versioned.stamp.timestamp = cluster->sim().now();
    versioned.stamp.writer = coordinator->id();
    versioned.value = "x";  // SSO-sized payload, like the bench workload
    bool committed = false;
    coordinator->CoordinateWrite(key, std::move(versioned),
                                 [&committed](const WriteResult& r) {
                                   committed = r.ok;
                                 });
    cluster->sim().RunUntil(cluster->sim().now() + 150.0);
    bool read_ok = false;
    coordinator->CoordinateRead(key, [&read_ok](const ReadResult& r) {
      read_ok = r.ok;
    });
    cluster->sim().RunUntil(cluster->sim().now() + 150.0);
    if (!committed || !read_ok) ++failures;
  }
  return failures;
}

void ReserveMetrics(ClusterMetrics* metrics, size_t upcoming_ops) {
  metrics->read_latency.Reserve(metrics->read_latency.count() + upcoming_ops);
  metrics->write_latency.Reserve(metrics->write_latency.count() +
                                 upcoming_ops);
  for (auto& [node, shard] : metrics->shards) {
    shard.read_latency.Reserve(shard.read_latency.count() + upcoming_ops);
    shard.write_latency.Reserve(shard.write_latency.count() + upcoming_ops);
  }
}

TEST(AllocTest, SteadyStateReadWritePathIsAllocationFree) {
  KvsConfig config;
  config.quorum = {3, 1, 2};
  config.legs = FastLegs();
  config.num_coordinators = 1;
  config.request_timeout_ms = 100.0;
  config.read_repair = true;  // the repair decision path must not allocate
  config.seed = 7;
  Cluster cluster(config);
  Node& coordinator = cluster.coordinator(0);

  constexpr int kRounds = 8;
  for (int round = 0; round < 2; ++round) {
    ASSERT_EQ(RunRound(&cluster, &coordinator), 0);  // warm every pool
  }
  ReserveMetrics(&cluster.metrics(), 2 * kRounds * kKeys);

  const int64_t before = alloc_hook::AllocationCount();
  int failures = 0;
  for (int round = 0; round < kRounds; ++round) {
    failures += RunRound(&cluster, &coordinator);
  }
  const int64_t allocations = alloc_hook::AllocationCount() - before;
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(allocations, 0)
      << "steady-state coordinator ops hit the allocator " << allocations
      << " times across " << 2 * kRounds * kKeys << " operations";
}

TEST(AllocTest, SloppyQuorumSubstitutionPathIsAllocationFree) {
  // The satellite regression: hint_homes / ExtendedReplicasFor used to
  // build fresh vectors per write. With a suspected replica, every write
  // runs the substitution path (extended preference list, hint targeting,
  // hint storage) — still zero allocations once capacities are warm.
  KvsConfig config;
  config.quorum = {3, 1, 2};
  config.num_storage_nodes = 6;
  config.legs = FastLegs();
  config.num_coordinators = 1;
  config.sloppy_quorums = true;
  config.sloppy_extra = 2;
  config.heartbeat_interval_ms = 10.0;
  config.suspect_timeout_ms = 30.0;
  config.hint_delivery_interval_ms = 20.0;
  config.request_timeout_ms = 100.0;
  config.seed = 11;
  Cluster cluster(config);
  cluster.StartFailureDetector();
  Node& coordinator = cluster.coordinator(0);

  // Warm phase 1: crash a replica, let the detector suspect it, and push
  // enough writes through the substitution path to size the hint buffers.
  cluster.sim().RunUntil(100.0);
  cluster.replica(0).Crash();
  cluster.sim().RunUntil(250.0);
  ASSERT_TRUE(cluster.failure_detector()->IsSuspected(0));
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_EQ(RunRound(&cluster, &coordinator), 0);
  }
  // Drain the parked hints (capacity is retained by the in-place
  // compaction), then re-crash so the measured phase replays the exact
  // warm-path mix: substitution + hint storage + handoff retries.
  cluster.replica(0).Recover();
  cluster.sim().RunUntil(cluster.sim().now() + 500.0);
  EXPECT_EQ(cluster.replica(1).num_hints() + cluster.replica(2).num_hints() +
                cluster.replica(3).num_hints() +
                cluster.replica(4).num_hints() +
                cluster.replica(5).num_hints(),
            0u);
  cluster.replica(0).Crash();
  cluster.sim().RunUntil(cluster.sim().now() + 250.0);
  ASSERT_TRUE(cluster.failure_detector()->IsSuspected(0));
  ReserveMetrics(&cluster.metrics(), 2 * kRounds * kKeys);

  const int64_t before = alloc_hook::AllocationCount();
  int failures = 0;
  for (int round = 0; round < kRounds; ++round) {
    failures += RunRound(&cluster, &coordinator);
  }
  const int64_t allocations = alloc_hook::AllocationCount() - before;
  EXPECT_EQ(failures, 0);
  EXPECT_GT(cluster.metrics().sloppy_substitutions, 0);
  EXPECT_EQ(allocations, 0)
      << "sloppy-quorum steady state hit the allocator " << allocations
      << " times";
}

TEST(AllocTest, HotPathEngineAllocatesForSetupNotPerOperation) {
  // RunHotPath sizes every pool during setup; a 40x longer run must cost
  // exactly the same number of allocations as a short one. Allocations are
  // allowed per conservative-sync window (each barrier round does a little
  // ParallelFor bookkeeping), never per operation — one giant window makes
  // the comparison exact.
  const auto count_allocations = [](int64_t writes_per_stream) {
    HotPathOptions options;
    options.num_streams = 32;
    options.writes_per_stream = writes_per_stream;
    options.sync_window_ms = 1e9;
    const int64_t before = alloc_hook::AllocationCount();
    const HotPathResult result = RunHotPath(options);
    EXPECT_GT(result.total_ops(), 0);
    return alloc_hook::AllocationCount() - before;
  };
  const int64_t short_run = count_allocations(50);
  const int64_t long_run = count_allocations(2000);
  EXPECT_EQ(long_run, short_run)
      << "hot-path allocation count scales with run length";
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
