#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions PointMassLegs(double w, double a, double r, double s) {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(w);
  legs.a = PointMass(a);
  legs.r = PointMass(r);
  legs.s = PointMass(s);
  return legs;
}

KvsConfig BasicConfig() {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs(1.0, 1.0, 1.0, 1.0);
  config.num_coordinators = 1;
  config.request_timeout_ms = 100.0;
  config.seed = 7;
  return config;
}

TEST(ClusterTest, TopologyAndAccessors) {
  Cluster cluster(BasicConfig());
  EXPECT_EQ(cluster.num_replicas(), 3);
  EXPECT_EQ(cluster.num_coordinators(), 1);
  EXPECT_EQ(cluster.num_nodes(), 4);
  EXPECT_TRUE(cluster.replica(0).is_replica());
  EXPECT_FALSE(cluster.coordinator(0).is_replica());
  const auto replicas = cluster.ReplicasFor(42);
  EXPECT_EQ(replicas.size(), 3u);
}

TEST(ClusterTest, SequencesAreMonotonePerKey) {
  Cluster cluster(BasicConfig());
  EXPECT_EQ(cluster.LatestSequenceFor(1), 0);
  EXPECT_EQ(cluster.NextSequenceFor(1), 1);
  EXPECT_EQ(cluster.NextSequenceFor(1), 2);
  EXPECT_EQ(cluster.NextSequenceFor(2), 1);  // independent per key
  EXPECT_EQ(cluster.LatestSequenceFor(1), 2);
}

TEST(WriteTest, CommitsAfterWAcksWithExactLatency) {
  // w=2ms out, a=3ms back: every ack arrives 5ms after the write starts.
  KvsConfig config = BasicConfig();
  config.legs = PointMassLegs(2.0, 3.0, 1.0, 1.0);
  config.quorum = {3, 1, 2};
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);

  std::optional<WriteResult> result;
  client.Write(5, "value", [&](const WriteResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_DOUBLE_EQ(result->latency_ms, 5.0);
  // All three replicas eventually hold the value (quorum expansion).
  for (int i = 0; i < 3; ++i) {
    const auto stored = cluster.replica(i).storage().Get(5);
    ASSERT_TRUE(stored.has_value()) << "replica " << i;
    EXPECT_EQ(stored->value, "value");
  }
  EXPECT_EQ(cluster.metrics().writes_started, 1);
  EXPECT_EQ(cluster.metrics().writes_failed, 0);
}

TEST(ReadTest, ReturnsWrittenValueWithExactLatency) {
  KvsConfig config = BasicConfig();
  config.legs = PointMassLegs(1.0, 1.0, 2.0, 3.0);
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);

  client.Write(9, "payload", nullptr);
  cluster.sim().Run();  // write fully propagates

  std::optional<ReadResult> result;
  client.Read(9, [&](const ReadResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_DOUBLE_EQ(result->latency_ms, 5.0);  // r + s
  ASSERT_TRUE(result->value.has_value());
  EXPECT_EQ(result->value->value, "payload");
}

TEST(ReadTest, MissingKeyReturnsNoValueButSucceeds) {
  Cluster cluster(BasicConfig());
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<ReadResult> result;
  client.Read(12345, [&](const ReadResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_FALSE(result->value.has_value());
}

TEST(ReadTest, FreshestOfFirstRWins) {
  // Pre-load replicas with different versions, then read with R=3 so the
  // coordinator sees them all and must return the newest.
  Cluster cluster([] {
    KvsConfig config = BasicConfig();
    config.quorum = {3, 3, 3};
    return config;
  }());
  for (int i = 0; i < 3; ++i) {
    VersionedValue value;
    value.sequence = i + 1;
    value.stamp = {static_cast<double>(i + 1), 0};
    value.value = "v" + std::to_string(i + 1);
    cluster.replica(i).storage().Put(1, value);
  }
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<ReadResult> result;
  client.Read(1, [&](const ReadResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result->value.has_value());
  EXPECT_EQ(result->value->sequence, 3);
}

TEST(TimeoutTest, WriteFailsWhenTooFewReplicasAlive) {
  KvsConfig config = BasicConfig();
  config.quorum = {3, 1, 2};
  Cluster cluster(config);
  cluster.replica(0).Crash();
  cluster.replica(1).Crash();
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(3, "x", [&](const WriteResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(cluster.metrics().writes_failed, 1);
  // The lone live replica still applied the write (sloppy durability).
  EXPECT_TRUE(cluster.replica(2).storage().Get(3).has_value());
}

TEST(TimeoutTest, ReadFailsWhenQuorumUnreachable) {
  KvsConfig config = BasicConfig();
  config.quorum = {3, 2, 1};
  Cluster cluster(config);
  cluster.replica(0).Crash();
  cluster.replica(1).Crash();
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<ReadResult> result;
  client.Read(3, [&](const ReadResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(cluster.metrics().reads_failed, 1);
}

TEST(TimeoutTest, CrashedNodeRecoversAndServesAgain) {
  KvsConfig config = BasicConfig();
  config.quorum = {1, 1, 1};
  Cluster cluster(config);
  cluster.replica(0).Crash();
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> failed;
  client.Write(1, "x", [&](const WriteResult& r) { failed = r; });
  cluster.sim().Run();
  EXPECT_FALSE(failed->ok);

  cluster.replica(0).Recover();
  std::optional<WriteResult> succeeded;
  client.Write(1, "y", [&](const WriteResult& r) { succeeded = r; });
  cluster.sim().Run();
  EXPECT_TRUE(succeeded->ok);
}

TEST(ReadRepairTest, StaleReplicaGetsFixedAfterRead) {
  KvsConfig config = BasicConfig();
  config.quorum = {3, 3, 1};  // read contacts everyone
  config.read_repair = true;
  Cluster cluster(config);
  // Replica 0 and 1 have version 2; replica 2 is stale at version 1.
  for (int i = 0; i < 3; ++i) {
    VersionedValue value;
    value.sequence = (i == 2) ? 1 : 2;
    value.stamp = {static_cast<double>(value.sequence), 0};
    cluster.replica(i).storage().Put(1, value);
  }
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Read(1, nullptr);
  cluster.sim().Run();
  EXPECT_EQ(cluster.replica(2).storage().Get(1)->sequence, 2);
  EXPECT_EQ(cluster.metrics().read_repairs_sent, 1);
}

TEST(ReadRepairTest, DisabledMeansStaleReplicaStaysStale) {
  KvsConfig config = BasicConfig();
  config.quorum = {3, 3, 1};
  config.read_repair = false;
  Cluster cluster(config);
  for (int i = 0; i < 3; ++i) {
    VersionedValue value;
    value.sequence = (i == 2) ? 1 : 2;
    value.stamp = {static_cast<double>(value.sequence), 0};
    cluster.replica(i).storage().Put(1, value);
  }
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Read(1, nullptr);
  cluster.sim().Run();
  EXPECT_EQ(cluster.replica(2).storage().Get(1)->sequence, 1);
  EXPECT_EQ(cluster.metrics().read_repairs_sent, 0);
}

TEST(HintedHandoffTest, WriteReachesReplicaAfterRecovery) {
  KvsConfig config = BasicConfig();
  config.quorum = {3, 1, 1};
  config.hinted_handoff = true;
  config.hinted_handoff_backoff_base_ms = 20.0;
  config.hinted_handoff_backoff_max_ms = 40.0;
  config.request_timeout_ms = 50.0;
  Cluster cluster(config);
  cluster.replica(1).Crash();
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(4, "durable", [&](const WriteResult& r) { result = r; });
  // Recover the replica after the first timeout+retry window.
  cluster.sim().Schedule(120.0, [&]() { cluster.replica(1).Recover(); });
  cluster.sim().Run();
  EXPECT_TRUE(result->ok);  // W=1 committed via live replicas
  const auto stored = cluster.replica(1).storage().Get(4);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->value, "durable");
  EXPECT_GT(cluster.metrics().hinted_handoffs_sent, 0);
}

TEST(LateReadHookTest, FiresOncePerReadWithLateVersions) {
  KvsConfig config = BasicConfig();
  config.quorum = {3, 1, 1};
  Cluster cluster(config);
  // Preload all replicas.
  for (int i = 0; i < 3; ++i) {
    VersionedValue value;
    value.sequence = 5;
    value.stamp = {1.0, 0};
    cluster.replica(i).storage().Put(1, value);
  }
  int hook_calls = 0;
  cluster.set_late_read_hook([&](const LateReadInfo& info) {
    ++hook_calls;
    EXPECT_EQ(info.returned_sequence, 5);
    EXPECT_EQ(info.late_response_sequences.size(), 2u);  // N - R
  });
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Read(1, nullptr);
  cluster.sim().Run();
  EXPECT_EQ(hook_calls, 1);
}

TEST(MonotonicReadsTest, ViolationCountedWhenSessionSeesOlderData) {
  // Session reads version 2 from a fresh replica, then version 1 from a
  // stale replica (forced via direct storage setup and crashing the fresh
  // ones).
  KvsConfig config = BasicConfig();
  config.quorum = {3, 1, 1};
  Cluster cluster(config);
  VersionedValue fresh;
  fresh.sequence = 2;
  fresh.stamp = {2.0, 0};
  VersionedValue stale;
  stale.sequence = 1;
  stale.stamp = {1.0, 0};
  cluster.replica(0).storage().Put(1, fresh);
  cluster.replica(1).storage().Put(1, stale);
  cluster.replica(2).storage().Put(1, stale);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  // First read: only replica 0 alive -> sees version 2.
  cluster.replica(1).Crash();
  cluster.replica(2).Crash();
  client.Read(1, nullptr);
  cluster.sim().Run();
  // Second read: only replica 1 alive -> sees version 1 (older!).
  cluster.replica(0).Crash();
  cluster.replica(1).Recover();
  client.Read(1, nullptr);
  cluster.sim().Run();
  EXPECT_EQ(client.monotonic_violations(), 1);
  EXPECT_EQ(cluster.metrics().monotonic_read_violations, 1);
  EXPECT_EQ(client.reads_issued(), 2);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
