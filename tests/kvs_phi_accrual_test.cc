// φ-accrual failure detection: suspicion accrues from the empirical pong
// inter-arrival distribution instead of tripping a fixed timeout. The
// property under test is the gray-failure one: silence drives φ up fast,
// while a *consistently slow* (but alive) replica keeps ponging regularly
// and is never suspected.

#include <optional>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/failure_detector.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig PhiConfig(QuorumConfig quorum) {
  KvsConfig config;
  config.quorum = quorum;
  config.legs = FastLegs();
  config.failure_detector = KvsConfig::FailureDetectorKind::kPhiAccrual;
  config.heartbeat_interval_ms = 10.0;
  config.phi_threshold = 8.0;
  config.phi_min_std_ms = 2.0;
  config.request_timeout_ms = 100.0;
  config.seed = 616;
  return config;
}

const PhiAccrualFailureDetector* PhiDetector(Cluster& cluster) {
  return dynamic_cast<const PhiAccrualFailureDetector*>(
      cluster.failure_detector());
}

TEST(PhiAccrualTest, ConfigSelectsTheDetectorKind) {
  Cluster phi_cluster(PhiConfig({3, 2, 2}));
  phi_cluster.StartFailureDetector();
  EXPECT_NE(PhiDetector(phi_cluster), nullptr);

  KvsConfig heartbeat = PhiConfig({3, 2, 2});
  heartbeat.failure_detector = KvsConfig::FailureDetectorKind::kHeartbeat;
  Cluster hb_cluster(heartbeat);
  hb_cluster.StartFailureDetector();
  EXPECT_NE(dynamic_cast<const HeartbeatFailureDetector*>(
                hb_cluster.failure_detector()),
            nullptr);
  EXPECT_EQ(PhiDetector(hb_cluster), nullptr);
}

TEST(PhiAccrualTest, SteadyRepliesKeepPhiLow) {
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(2000.0);
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  for (int node = 0; node < cluster.num_replicas(); ++node) {
    EXPECT_FALSE(detector->IsSuspected(node)) << "node " << node;
    EXPECT_LT(detector->Phi(node), 1.0) << "node " << node;
  }
  EXPECT_GT(detector->pongs_received(), 100);
}

TEST(PhiAccrualTest, PhiIsNegligibleBeforeHistoryAccrues) {
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(1.0);  // no pong has arrived twice yet
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  // Bootstrap regime: suspicion is computed from the configured interval,
  // so 1ms of silence yields φ ≈ 0 (but detectably growing, not clamped).
  for (int node = 0; node < cluster.num_replicas(); ++node) {
    EXPECT_LT(detector->Phi(node), 0.01);
    EXPECT_FALSE(detector->IsSuspected(node));
  }
}

TEST(PhiAccrualTest, SilenceAccruesSuspicionThenRecoveryClearsIt) {
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(500.0);
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  EXPECT_FALSE(detector->IsSuspected(2));

  cluster.replica(2).Crash();
  cluster.sim().RunUntil(540.0);
  const double early = detector->Phi(2);
  cluster.sim().RunUntil(700.0);
  const double late = detector->Phi(2);
  // φ grows monotonically with silence and crosses the threshold.
  EXPECT_GT(late, early);
  EXPECT_GE(late, 8.0);
  EXPECT_TRUE(detector->IsSuspected(2));
  EXPECT_FALSE(detector->IsSuspected(0));  // the others stay clear

  cluster.replica(2).Recover();
  cluster.sim().RunUntil(900.0);
  EXPECT_FALSE(detector->IsSuspected(2));
  EXPECT_LT(detector->Phi(2), 8.0);
}

TEST(PhiAccrualTest, ConsistentlySlowReplicaIsNotSuspected) {
  // A 3x-slow node's pongs arrive late but *regularly* — the inter-arrival
  // distribution barely changes, so φ stays low. A fixed-timeout detector
  // with a tight timeout would false-positive here.
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(300.0);  // warm up the window at normal speed
  FaultProfile slow;
  slow.delay_mult = 3.0;
  cluster.network().SetNodeFault(2, slow);
  cluster.sim().RunUntil(2000.0);
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  EXPECT_FALSE(detector->IsSuspected(2));
  EXPECT_LT(detector->Phi(2), 8.0);
}

TEST(PhiAccrualTest, SilentFromStartIsSuspectedWithinBoundedWindow) {
  // Cold-start regression: a node that is dead before the detector sends
  // its first ping never contributes a pong inter-arrival, so the φ window
  // for it stays in the bootstrap regime. Suspicion must still arrive
  // within the bounded silence window (max_silence_intervals heartbeat
  // intervals), not "whenever the bootstrap φ happens to cross".
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.replica(2).Crash();
  cluster.StartFailureDetector();
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  // 25 intervals x 10ms = 250ms bound; 400ms leaves slack for ping pacing.
  cluster.sim().RunUntil(400.0);
  EXPECT_TRUE(detector->IsSuspected(2));
  EXPECT_FALSE(detector->IsSuspected(0));
  EXPECT_FALSE(detector->IsSuspected(1));
}

WarsDistributions JitteryLegs() {
  WarsDistributions legs;
  legs.name = "jittery";
  legs.w = Exponential(0.2);  // mean 5ms: pongs overtake and reorder
  legs.a = Exponential(0.2);
  legs.r = Exponential(0.2);
  legs.s = Exponential(0.2);
  return legs;
}

TEST(PhiAccrualTest, PoisonedWindowIsBoundedByTheSilenceBackstop) {
  // Desensitization regression: heavy-tailed, reordering pong delays from a
  // very slow node inflate the window's inter-arrival variance, so after a
  // subsequent crash φ needs silence proportional to that inflated σ to
  // cross the threshold — potentially thousands of intervals. The silence
  // backstop bounds detection time regardless of the window contents.
  //
  // Twin clusters, identical seeds (the backstop consumes no randomness, so
  // both realize the same pong history): one with the backstop, one opted
  // out. At the instant the backstop fires, the opted-out detector's
  // poisoned window must still call the dead node healthy — the exact
  // failure mode the backstop exists for.
  KvsConfig config = PhiConfig({3, 2, 2});
  config.legs = JitteryLegs();
  // 80% pong loss makes inter-arrivals geometric multiples of the ping
  // interval: mean ~50ms, σ ~45ms. φ then needs ~300ms of silence to cross
  // the threshold, so the 15-interval (150ms) backstop observes the window
  // mid-desensitization.
  config.phi_max_silence_intervals = 15.0;
  KvsConfig no_backstop = config;
  no_backstop.phi_max_silence_intervals = 0.0;
  Cluster bounded(config);
  Cluster unbounded(no_backstop);
  bounded.StartFailureDetector();
  unbounded.StartFailureDetector();
  FaultProfile lossy;
  lossy.p_good_to_bad = 1.0;  // permanently "bad": steady 80% loss
  lossy.p_bad_to_good = 0.0;
  lossy.loss_bad = 0.8;
  bounded.network().SetNodeFault(2, lossy);
  unbounded.network().SetNodeFault(2, lossy);
  bounded.sim().RunUntil(1500.0);  // poison both windows
  unbounded.sim().RunUntil(1500.0);
  bounded.replica(2).Crash();
  unbounded.replica(2).Crash();

  const auto* bounded_detector = PhiDetector(bounded);
  const auto* unbounded_detector = PhiDetector(unbounded);
  ASSERT_NE(bounded_detector, nullptr);
  ASSERT_NE(unbounded_detector, nullptr);
  double suspected_at = -1.0;
  for (double t = 1510.0; t <= 6000.0 && suspected_at < 0.0; t += 10.0) {
    bounded.sim().RunUntil(t);
    unbounded.sim().RunUntil(t);
    if (bounded_detector->IsSuspected(2)) {
      suspected_at = t;
      // Same history, same instant: the poisoned window alone says healthy.
      EXPECT_LT(unbounded_detector->Phi(2), 8.0);
      EXPECT_FALSE(unbounded_detector->IsSuspected(2));
    }
  }
  // Backstop detection is bounded: in-flight straggler pongs can stretch
  // the silence start, but not past the straggler tail + 250ms.
  EXPECT_GT(suspected_at, 0.0);
}

TEST(PhiAccrualTest, SloppyQuorumsRouteAroundPhiSuspectedReplica) {
  // The sloppy-quorum machinery consumes only IsSuspected(), so swapping in
  // the φ detector keeps hinted writes working: a crashed home replica is
  // suspected, a substitute takes the write as a hint.
  KvsConfig config = PhiConfig({3, 1, 3});
  config.num_storage_nodes = 5;
  config.sloppy_quorums = true;
  config.sloppy_extra = 2;
  config.hint_delivery_interval_ms = 20.0;
  Cluster cluster(config);
  cluster.StartFailureDetector();

  const Key key = 7;
  const auto home = cluster.ReplicasFor(key);
  const NodeId dead = home[1];
  cluster.replica(dead).Crash();
  cluster.sim().RunUntil(400.0);  // let φ cross the threshold
  ASSERT_TRUE(cluster.failure_detector()->IsSuspected(dead));

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(key, "payload", [&](const WriteResult& r) { result = r; });
  cluster.sim().RunUntil(800.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);  // W=3 met via a substitute
  EXPECT_GT(cluster.metrics().sloppy_substitutions, 0);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
