// φ-accrual failure detection: suspicion accrues from the empirical pong
// inter-arrival distribution instead of tripping a fixed timeout. The
// property under test is the gray-failure one: silence drives φ up fast,
// while a *consistently slow* (but alive) replica keeps ponging regularly
// and is never suspected.

#include <optional>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/failure_detector.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig PhiConfig(QuorumConfig quorum) {
  KvsConfig config;
  config.quorum = quorum;
  config.legs = FastLegs();
  config.failure_detector = KvsConfig::FailureDetectorKind::kPhiAccrual;
  config.heartbeat_interval_ms = 10.0;
  config.phi_threshold = 8.0;
  config.phi_min_std_ms = 2.0;
  config.request_timeout_ms = 100.0;
  config.seed = 616;
  return config;
}

const PhiAccrualFailureDetector* PhiDetector(Cluster& cluster) {
  return dynamic_cast<const PhiAccrualFailureDetector*>(
      cluster.failure_detector());
}

TEST(PhiAccrualTest, ConfigSelectsTheDetectorKind) {
  Cluster phi_cluster(PhiConfig({3, 2, 2}));
  phi_cluster.StartFailureDetector();
  EXPECT_NE(PhiDetector(phi_cluster), nullptr);

  KvsConfig heartbeat = PhiConfig({3, 2, 2});
  heartbeat.failure_detector = KvsConfig::FailureDetectorKind::kHeartbeat;
  Cluster hb_cluster(heartbeat);
  hb_cluster.StartFailureDetector();
  EXPECT_NE(dynamic_cast<const HeartbeatFailureDetector*>(
                hb_cluster.failure_detector()),
            nullptr);
  EXPECT_EQ(PhiDetector(hb_cluster), nullptr);
}

TEST(PhiAccrualTest, SteadyRepliesKeepPhiLow) {
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(2000.0);
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  for (int node = 0; node < cluster.num_replicas(); ++node) {
    EXPECT_FALSE(detector->IsSuspected(node)) << "node " << node;
    EXPECT_LT(detector->Phi(node), 1.0) << "node " << node;
  }
  EXPECT_GT(detector->pongs_received(), 100);
}

TEST(PhiAccrualTest, PhiIsNegligibleBeforeHistoryAccrues) {
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(1.0);  // no pong has arrived twice yet
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  // Bootstrap regime: suspicion is computed from the configured interval,
  // so 1ms of silence yields φ ≈ 0 (but detectably growing, not clamped).
  for (int node = 0; node < cluster.num_replicas(); ++node) {
    EXPECT_LT(detector->Phi(node), 0.01);
    EXPECT_FALSE(detector->IsSuspected(node));
  }
}

TEST(PhiAccrualTest, SilenceAccruesSuspicionThenRecoveryClearsIt) {
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(500.0);
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  EXPECT_FALSE(detector->IsSuspected(2));

  cluster.replica(2).Crash();
  cluster.sim().RunUntil(540.0);
  const double early = detector->Phi(2);
  cluster.sim().RunUntil(700.0);
  const double late = detector->Phi(2);
  // φ grows monotonically with silence and crosses the threshold.
  EXPECT_GT(late, early);
  EXPECT_GE(late, 8.0);
  EXPECT_TRUE(detector->IsSuspected(2));
  EXPECT_FALSE(detector->IsSuspected(0));  // the others stay clear

  cluster.replica(2).Recover();
  cluster.sim().RunUntil(900.0);
  EXPECT_FALSE(detector->IsSuspected(2));
  EXPECT_LT(detector->Phi(2), 8.0);
}

TEST(PhiAccrualTest, ConsistentlySlowReplicaIsNotSuspected) {
  // A 3x-slow node's pongs arrive late but *regularly* — the inter-arrival
  // distribution barely changes, so φ stays low. A fixed-timeout detector
  // with a tight timeout would false-positive here.
  Cluster cluster(PhiConfig({3, 2, 2}));
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(300.0);  // warm up the window at normal speed
  FaultProfile slow;
  slow.delay_mult = 3.0;
  cluster.network().SetNodeFault(2, slow);
  cluster.sim().RunUntil(2000.0);
  const auto* detector = PhiDetector(cluster);
  ASSERT_NE(detector, nullptr);
  EXPECT_FALSE(detector->IsSuspected(2));
  EXPECT_LT(detector->Phi(2), 8.0);
}

TEST(PhiAccrualTest, SloppyQuorumsRouteAroundPhiSuspectedReplica) {
  // The sloppy-quorum machinery consumes only IsSuspected(), so swapping in
  // the φ detector keeps hinted writes working: a crashed home replica is
  // suspected, a substitute takes the write as a hint.
  KvsConfig config = PhiConfig({3, 1, 3});
  config.num_storage_nodes = 5;
  config.sloppy_quorums = true;
  config.sloppy_extra = 2;
  config.hint_delivery_interval_ms = 20.0;
  Cluster cluster(config);
  cluster.StartFailureDetector();

  const Key key = 7;
  const auto home = cluster.ReplicasFor(key);
  const NodeId dead = home[1];
  cluster.replica(dead).Crash();
  cluster.sim().RunUntil(400.0);  // let φ cross the threshold
  ASSERT_TRUE(cluster.failure_detector()->IsSuspected(dead));

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(key, "payload", [&](const WriteResult& r) { result = r; });
  cluster.sim().RunUntil(800.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);  // W=3 met via a substitute
  EXPECT_GT(cluster.metrics().sloppy_substitutions, 0);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
