// Gray-failure injection at the network layer: delay degradation,
// Gilbert-Elliott burst loss, duplicate delivery, one-way partitions, and
// the RNG-consumption contract (fault-free links draw nothing, so adding a
// fault elsewhere never perturbs an unrelated link's randomness).

#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbs {
namespace {

TEST(FaultInjectionTest, LinkDelayDegradationTransformsDelay) {
  Simulator sim;
  Network net(&sim, 1);
  FaultProfile slow;
  slow.delay_mult = 3.0;
  slow.delay_add_ms = 5.0;
  net.SetLinkFault(0, 1, slow);

  double delivered_at = -1.0;
  EXPECT_TRUE(
      net.SendWithDelay(0, 1, 10.0, [&]() { delivered_at = sim.now(); }));
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 10.0 * 3.0 + 5.0);

  // The reverse direction is untouched.
  delivered_at = -1.0;
  const double before = sim.now();
  EXPECT_TRUE(
      net.SendWithDelay(1, 0, 10.0, [&]() { delivered_at = sim.now(); }));
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, before + 10.0);
}

TEST(FaultInjectionTest, NodeAndLinkFaultsCompose) {
  // A node fault degrades every outbound message; a link fault on top of it
  // applies afterwards (node transform first, then link transform).
  Simulator sim;
  Network net(&sim, 1);
  FaultProfile node_slow;
  node_slow.delay_mult = 2.0;
  net.SetNodeFault(0, node_slow);
  FaultProfile link_slow;
  link_slow.delay_add_ms = 5.0;
  net.SetLinkFault(0, 1, link_slow);

  double delivered_at = -1.0;
  EXPECT_TRUE(
      net.SendWithDelay(0, 1, 10.0, [&]() { delivered_at = sim.now(); }));
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 10.0 * 2.0 + 5.0);

  net.ClearNodeFault(0);
  net.ClearLinkFault(0, 1);
  delivered_at = -1.0;
  const double before = sim.now();
  EXPECT_TRUE(
      net.SendWithDelay(0, 1, 10.0, [&]() { delivered_at = sim.now(); }));
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, before + 10.0);
}

TEST(FaultInjectionTest, GilbertElliottChainDropsInBursts) {
  // Degenerate chain probabilities make the burst pattern deterministic:
  // every message flips the state (good->bad, bad->good), loss_bad = 1 and
  // loss_good = 0, so deliveries alternate drop, deliver, drop, ...
  Simulator sim;
  Network net(&sim, 7);
  FaultProfile bursty;
  bursty.p_good_to_bad = 1.0;
  bursty.p_bad_to_good = 1.0;
  bursty.loss_bad = 1.0;
  bursty.loss_good = 0.0;
  net.SetLinkFault(0, 1, bursty);

  std::vector<bool> delivered;
  for (int i = 0; i < 6; ++i) {
    delivered.push_back(net.SendWithDelay(0, 1, 1.0, []() {}));
  }
  sim.Run();
  const std::vector<bool> expected = {false, true, false, true, false, true};
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(net.messages_dropped(), 3);
  EXPECT_EQ(net.LinkStats(0, 1).fault_dropped, 3);
  EXPECT_EQ(net.LinkStats(1, 0).fault_dropped, 0);
}

TEST(FaultInjectionTest, AlwaysLossyLinkDropsEverything) {
  Simulator sim;
  Network net(&sim, 7);
  FaultProfile dead;
  dead.p_good_to_bad = 1.0;
  dead.p_bad_to_good = 0.0;
  dead.loss_bad = 1.0;
  net.SetLinkFault(2, 3, dead);

  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(net.SendWithDelay(2, 3, 1.0, []() { FAIL(); }));
  }
  sim.Run();
  EXPECT_EQ(net.LinkStats(2, 3).fault_dropped, 10);
  EXPECT_EQ(net.messages_sent(), 0);
}

TEST(FaultInjectionTest, DuplicationDeliversTwiceWithLag) {
  Simulator sim;
  Network net(&sim, 3);
  FaultProfile dup;
  dup.duplicate_probability = 1.0;
  dup.duplicate_lag_ms = 2.5;
  net.SetLinkFault(0, 1, dup);

  std::vector<double> arrivals;
  EXPECT_TRUE(
      net.SendWithDelay(0, 1, 1.0, [&]() { arrivals.push_back(sim.now()); }));
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 1.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 1.0 + 2.5);
  EXPECT_EQ(net.messages_duplicated(), 1);
  EXPECT_EQ(net.messages_sent(), 1);  // one logical message
  EXPECT_EQ(net.LinkStats(0, 1).duplicated, 1);
}

TEST(FaultInjectionTest, OneWayPartitionBlocksOnlyOneDirection) {
  Simulator sim;
  Network net(&sim, 11);
  net.SetOneWayPartitioned(0, 1, true);
  EXPECT_TRUE(net.IsOneWayPartitioned(0, 1));
  EXPECT_FALSE(net.IsOneWayPartitioned(1, 0));

  // 0 -> 1 vanishes; 1 -> 0 keeps delivering (the classic gray failure:
  // the replica hears requests but its responses never come back).
  bool reverse_delivered = false;
  EXPECT_FALSE(net.SendWithDelay(0, 1, 1.0, []() { FAIL(); }));
  EXPECT_TRUE(net.SendWithDelay(1, 0, 1.0, [&]() { reverse_delivered = true; }));
  sim.Run();
  EXPECT_TRUE(reverse_delivered);
  EXPECT_EQ(net.messages_dropped(), 1);
  EXPECT_EQ(net.LinkStats(0, 1).fault_dropped, 1);

  // Healing restores the direction.
  net.SetOneWayPartitioned(0, 1, false);
  bool forward_delivered = false;
  EXPECT_TRUE(net.SendWithDelay(0, 1, 1.0, [&]() { forward_delivered = true; }));
  sim.Run();
  EXPECT_TRUE(forward_delivered);
}

TEST(FaultInjectionTest, FaultFreeLinksConsumeNoFaultRandomness) {
  // Determinism contract: the fault layer only draws from the network RNG
  // for links with an installed profile that can actually fire. Installing
  // a lossy fault on an unrelated link must not perturb the latency samples
  // of a clean link, and a pure-delay profile draws nothing at all.
  auto run = [](bool unrelated_fault, bool delay_fault) {
    Simulator sim;
    Network net(&sim, 99);
    net.set_default_latency(Exponential(0.1));
    if (unrelated_fault) {
      FaultProfile lossy;
      lossy.p_good_to_bad = 0.5;
      lossy.p_bad_to_good = 0.5;
      lossy.loss_bad = 0.9;
      net.SetLinkFault(5, 6, lossy);
    }
    if (delay_fault) {
      FaultProfile slow;
      slow.delay_add_ms = 0.0;  // identity transform, still "installed"
      net.SetLinkFault(0, 1, slow);
    }
    std::vector<double> arrivals;
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(net.Send(0, 1, [&]() { arrivals.push_back(sim.now()); }));
      sim.Run();
    }
    return arrivals;
  };

  const auto baseline = run(false, false);
  EXPECT_EQ(run(true, false), baseline);   // fault on another link
  EXPECT_EQ(run(false, true), baseline);   // delay-only fault, zero draws
}

}  // namespace
}  // namespace pbs
