#include "sim/event_queue.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pbs {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(3.0, [&] { fired.push_back(3); });
  q.Push(1.0, [&] { fired.push_back(1); });
  q.Push(2.0, [&] { fired.push_back(2); });
  ASSERT_EQ(q.size(), 3u);
  while (!q.empty()) {
    double t = -1.0;
    EXPECT_EQ(q.NextTime(), q.NextTime());
    auto cb = q.Pop(&t);
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(t, static_cast<double>(fired.back()));
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    q.Push(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop()();
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, AcceptsMoveOnlyCallback) {
  EventQueue q;
  auto payload = std::make_unique<int>(99);
  int got = 0;
  // A move-only capture cannot be stored in std::function; this is the
  // regression test for the old copying Pop.
  q.Push(1.0, [p = std::move(payload), &got] { got = *p; });
  q.Pop()();
  EXPECT_EQ(got, 99);
}

TEST(EventQueueTest, PopReturnsCallbackWithoutFiringIt) {
  EventQueue q;
  int calls = 0;
  q.Push(1.0, [&] { ++calls; });
  auto cb = q.Pop();
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(q.empty());
  cb();
  EXPECT_EQ(calls, 1);
}

// Golden-order test: a large random schedule with many exact time ties must
// drain in exactly the order a stable sort by time predicts.
TEST(EventQueueTest, RandomScheduleDrainsInStableTimeOrder) {
  Rng rng(7);
  EventQueue q;
  std::vector<double> times;
  std::vector<int> fired;
  const int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    // Draw from a small set of discrete times so ties are common.
    const double t = static_cast<double>(rng.NextBounded(97));
    times.push_back(t);
    q.Push(t, [&fired, i] { fired.push_back(i); });
  }
  std::vector<int> expect(kEvents);
  for (int i = 0; i < kEvents; ++i) expect[i] = i;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](int a, int b) { return times[a] < times[b]; });

  double last = -1.0;
  while (!q.empty()) {
    double t = 0.0;
    EXPECT_EQ(q.NextTime(), times[expect[fired.size()]]);
    q.Pop(&t)();
    EXPECT_GE(t, last);
    last = t;
  }
  EXPECT_EQ(fired, expect);
}

// Interleaved Push/Pop churn (slot reuse through the free list) checked
// against a reference: repeatedly schedule bursts, then drain a random
// number of events, comparing every popped (time, id) with a stable-sorted
// mirror of the pending set.
TEST(EventQueueTest, InterleavedChurnMatchesReference) {
  Rng rng(21);
  EventQueue q;
  // Reference: pending (time, insertion id), kept sorted lazily.
  std::vector<std::pair<double, int>> pending;
  std::vector<int> popped_ids;
  int next_id = 0;
  for (int round = 0; round < 200; ++round) {
    const int pushes = static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < pushes; ++i) {
      const double t = static_cast<double>(rng.NextBounded(13));
      const int id = next_id++;
      q.Push(t, [&popped_ids, id] { popped_ids.push_back(id); });
      pending.emplace_back(t, id);
    }
    const int pops =
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(
            pending.size() + 1)));
    for (int i = 0; i < pops; ++i) {
      // Earliest time, FIFO among ties == minimum (time, id) pair, because
      // ids increase in scheduling order.
      auto best = std::min_element(pending.begin(), pending.end());
      double t = 0.0;
      q.Pop(&t)();
      ASSERT_EQ(t, best->first);
      ASSERT_EQ(popped_ids.back(), best->second);
      pending.erase(best);
    }
    ASSERT_EQ(q.size(), pending.size());
  }
}

// Each thread churns its own private queue; run under TSan this verifies the
// pool/free-list implementation shares no hidden mutable state between
// instances.
TEST(EventQueueTest, IndependentQueuesAreThreadSafe) {
  std::vector<std::thread> workers;
  std::vector<long> sums(4, 0);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w, &sums] {
      Rng rng(100 + static_cast<uint64_t>(w));
      EventQueue q;
      long sum = 0;
      for (int round = 0; round < 500; ++round) {
        for (int i = 0; i < 8; ++i) {
          const double t = static_cast<double>(rng.NextBounded(50));
          q.Push(t, [&sum, i] { sum += i; });
        }
        for (int i = 0; i < 6; ++i) q.Pop()();
      }
      while (!q.empty()) q.Pop()();
      sums[w] = sum;
    });
  }
  for (auto& t : workers) t.join();
  for (long s : sums) EXPECT_EQ(s, 500L * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

}  // namespace
}  // namespace pbs
