#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "kvs/ring.h"
#include "kvs/storage.h"

namespace pbs {
namespace kvs {
namespace {

TEST(RingTest, PreferenceListSizeAndDistinctness) {
  ConsistentHashRing ring(5, 16, /*seed=*/1);
  for (Key key = 0; key < 200; ++key) {
    const auto list = ring.PreferenceList(key, 3);
    ASSERT_TRUE(list.ok());
    EXPECT_EQ(list.value().size(), 3u);
    const std::set<int> unique(list.value().begin(), list.value().end());
    EXPECT_EQ(unique.size(), 3u);
    for (int node : list.value()) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 5);
    }
  }
}

TEST(RingTest, FullMembershipWhenNEqualsClusterSize) {
  ConsistentHashRing ring(3, 8, /*seed=*/2);
  const auto list = ring.PreferenceList(12345, 3);
  ASSERT_TRUE(list.ok());
  std::set<int> unique(list.value().begin(), list.value().end());
  EXPECT_EQ(unique, (std::set<int>{0, 1, 2}));
}

TEST(RingTest, DeterministicPlacement) {
  ConsistentHashRing a(5, 16, /*seed=*/3);
  ConsistentHashRing b(5, 16, /*seed=*/3);
  for (Key key = 0; key < 100; ++key) {
    EXPECT_EQ(a.PreferenceList(key, 3).value(), b.PreferenceList(key, 3).value());
  }
}

TEST(RingTest, DifferentKeysLandOnDifferentPrimaries) {
  ConsistentHashRing ring(10, 32, /*seed=*/4);
  std::set<int> primaries;
  for (Key key = 0; key < 100; ++key) {
    primaries.insert(ring.PreferenceList(key, 1).value().front());
  }
  EXPECT_GT(primaries.size(), 5u);
}

TEST(RingTest, OwnershipRoughlyBalancedWithManyVnodes) {
  ConsistentHashRing ring(4, 256, /*seed=*/5);
  const auto fractions = ring.OwnershipFractions(100000, /*seed=*/6);
  ASSERT_TRUE(fractions.ok());
  double total = 0.0;
  for (double f : fractions.value()) {
    EXPECT_NEAR(f, 0.25, 0.08);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RingTest, HashKeyAvalanches) {
  // Adjacent keys map to distant hash positions.
  EXPECT_NE(HashKey(0), HashKey(1));
  EXPECT_NE(HashKey(1) - HashKey(0), HashKey(2) - HashKey(1));
}

TEST(StorageTest, PutThenGetRoundTrip) {
  ReplicaStorage storage;
  VersionedValue value;
  value.sequence = 1;
  value.stamp = {1.0, 0};
  value.value = "hello";
  EXPECT_TRUE(storage.Put(7, value));
  const auto got = storage.Get(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "hello");
  EXPECT_EQ(got->sequence, 1);
  EXPECT_EQ(storage.num_keys(), 1u);
}

TEST(StorageTest, MissingKeyIsNullopt) {
  ReplicaStorage storage;
  EXPECT_FALSE(storage.Get(99).has_value());
}

TEST(StorageTest, NewerVersionSupersedes) {
  ReplicaStorage storage;
  VersionedValue v1;
  v1.sequence = 1;
  v1.stamp = {1.0, 0};
  VersionedValue v2;
  v2.sequence = 2;
  v2.stamp = {2.0, 0};
  EXPECT_TRUE(storage.Put(1, v1));
  EXPECT_TRUE(storage.Put(1, v2));
  EXPECT_EQ(storage.Get(1)->sequence, 2);
  EXPECT_EQ(storage.writes_applied(), 2);
}

TEST(StorageTest, OlderVersionIgnoredRegardlessOfArrivalOrder) {
  // The convergence property quorum expansion relies on: replaying the same
  // messages in any order yields the same final state.
  ReplicaStorage in_order;
  ReplicaStorage reversed;
  VersionedValue v1;
  v1.sequence = 1;
  v1.stamp = {1.0, 0};
  VersionedValue v2;
  v2.sequence = 2;
  v2.stamp = {2.0, 0};
  in_order.Put(1, v1);
  in_order.Put(1, v2);
  reversed.Put(1, v2);
  EXPECT_FALSE(reversed.Put(1, v1));  // stale write rejected
  EXPECT_EQ(in_order.Get(1)->sequence, reversed.Get(1)->sequence);
}

TEST(StorageTest, SupersessionMergesVectorClocks) {
  ReplicaStorage storage;
  VersionedValue v1;
  v1.stamp = {1.0, 0};
  v1.clock.Increment(1);
  VersionedValue v2;
  v2.stamp = {2.0, 0};
  v2.clock.Increment(2);
  storage.Put(1, v1);
  storage.Put(1, v2);
  const auto got = storage.Get(1);
  EXPECT_EQ(got->clock.EntryFor(1), 1);
  EXPECT_EQ(got->clock.EntryFor(2), 1);
}

TEST(StorageTest, ForEachVisitsEverything) {
  ReplicaStorage storage;
  for (Key key = 0; key < 10; ++key) {
    VersionedValue value;
    value.sequence = static_cast<int64_t>(key);
    value.stamp = {static_cast<double>(key), 0};
    storage.Put(key, value);
  }
  int visited = 0;
  storage.ForEach([&](Key, const VersionedValue&) { ++visited; });
  EXPECT_EQ(visited, 10);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
