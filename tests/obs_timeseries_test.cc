// Windowed time-series layer (DESIGN.md §13): registry deltas, the
// Advance/AdvanceDelta ring, rollover accounting, window-id-aligned
// merges, and the golden bytes of the JSONL exporter.

#include <string>

#include <gtest/gtest.h>

#include "obs/registry.h"
#include "obs/timeseries.h"

namespace pbs {
namespace obs {
namespace {

TEST(RegistryDeltaTest, SubtractsCountersAndDropsUnmoved) {
  Registry previous;
  previous.counter("moved").Add(3);
  previous.counter("quiet").Add(5);
  Registry cumulative = previous;
  cumulative.counter("moved").Add(4);

  const Registry delta = RegistryDelta(cumulative, previous);
  ASSERT_NE(delta.FindCounter("moved"), nullptr);
  EXPECT_EQ(delta.FindCounter("moved")->value, 4);
  // "quiet" did not move in the window, so it is dropped entirely.
  EXPECT_EQ(delta.FindCounter("quiet"), nullptr);
}

TEST(RegistryDeltaTest, NewInstrumentsCarryOverWhole) {
  Registry previous;
  Registry cumulative;
  cumulative.counter("ops").Add(2);
  cumulative.histogram("lat").Record(2.0);

  const Registry delta = RegistryDelta(cumulative, previous);
  ASSERT_NE(delta.FindCounter("ops"), nullptr);
  EXPECT_EQ(delta.FindCounter("ops")->value, 2);
  ASSERT_NE(delta.FindHistogram("lat"), nullptr);
  EXPECT_EQ(delta.FindHistogram("lat")->count(), 1);
  EXPECT_DOUBLE_EQ(delta.FindHistogram("lat")->min(), 2.0);
}

TEST(RegistryDeltaTest, HistogramDeltaIsBucketExact) {
  Registry previous;
  previous.histogram("lat").Record(1.0);
  previous.histogram("lat").Record(4.0);
  Registry cumulative = previous;
  cumulative.histogram("lat").Record(16.0);
  cumulative.histogram("lat").Record(16.0);

  const Registry delta = RegistryDelta(cumulative, previous);
  const LogHistogram* hist = delta.FindHistogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 2);
  // Both window samples landed in the bucket containing 16; the delta's
  // extremes are that bucket's bounds.
  EXPECT_LE(hist->min(), 16.0);
  EXPECT_GE(hist->max(), 16.0);
}

TEST(TimeSeriesTest, AdvanceCutsDeltasAgainstPreviousBaseline) {
  TimeSeries series(8);
  Registry cumulative;
  cumulative.counter("ops").Add(2);
  series.Advance(0, 0.0, 500.0, cumulative);
  cumulative.counter("ops").Add(3);
  const WindowSnapshot& second = series.Advance(1, 500.0, 1000.0, cumulative);

  EXPECT_EQ(second.window_id, 1);
  ASSERT_NE(second.delta.FindCounter("ops"), nullptr);
  EXPECT_EQ(second.delta.FindCounter("ops")->value, 3);
  ASSERT_EQ(series.windows().size(), 2u);
  EXPECT_EQ(series.windows().front().delta.FindCounter("ops")->value, 2);
}

TEST(TimeSeriesTest, AdvanceDeltaMatchesAdvanceForTheSameStream) {
  Registry c1;
  c1.counter("ops").Add(2);
  Registry c2 = c1;
  c2.counter("ops").Add(3);
  c2.histogram("lat").Record(2.0);

  TimeSeries via_advance(8);
  via_advance.Advance(0, 0.0, 500.0, c1);
  via_advance.Advance(1, 500.0, 1000.0, c2);

  TimeSeries via_delta(8);
  via_delta.AdvanceDelta(0, 0.0, 500.0, RegistryDelta(c1, Registry{}));
  via_delta.AdvanceDelta(1, 500.0, 1000.0, RegistryDelta(c2, c1));

  EXPECT_EQ(via_advance.windows(), via_delta.windows());
  EXPECT_EQ(via_advance.windows_cut(), via_delta.windows_cut());
}

TEST(TimeSeriesTest, RolloverDropsOldestAndCounts) {
  TimeSeries series(2);
  for (int64_t id = 0; id < 5; ++id) {
    Registry delta;
    delta.counter("w").Add(id + 1);
    series.AdvanceDelta(id, id * 100.0, (id + 1) * 100.0, std::move(delta));
  }
  EXPECT_EQ(series.windows().size(), 2u);
  EXPECT_EQ(series.windows_cut(), 5);
  EXPECT_EQ(series.windows_dropped(), 3);
  EXPECT_EQ(series.windows().front().window_id, 3);
  EXPECT_EQ(series.windows().back().window_id, 4);
}

TEST(TimeSeriesTest, ZeroCapacityClampsToOne) {
  TimeSeries series(0);
  EXPECT_EQ(series.capacity(), 1u);
  series.AdvanceDelta(0, 0.0, 1.0, Registry{});
  series.AdvanceDelta(1, 1.0, 2.0, Registry{});
  EXPECT_EQ(series.windows().size(), 1u);
  EXPECT_EQ(series.windows().front().window_id, 1);
}

TEST(TimeSeriesTest, MergeAlignsSharedWindowIds) {
  TimeSeries a(8);
  Registry da0;
  da0.counter("reads").Add(10);
  a.AdvanceDelta(0, 0.0, 500.0, std::move(da0));
  Registry da1;
  da1.counter("reads").Add(20);
  a.AdvanceDelta(1, 500.0, 990.0, std::move(da1));

  TimeSeries b(8);
  Registry db1;
  db1.counter("reads").Add(5);
  b.AdvanceDelta(1, 500.0, 1000.0, std::move(db1));
  Registry db2;
  db2.counter("reads").Add(7);
  b.AdvanceDelta(2, 1000.0, 1500.0, std::move(db2));

  a.Merge(b);
  ASSERT_EQ(a.windows().size(), 3u);
  EXPECT_EQ(a.windows()[0].window_id, 0);
  EXPECT_EQ(a.windows()[1].window_id, 1);
  EXPECT_EQ(a.windows()[2].window_id, 2);
  // Shared id 1 merged registry-wise; its span widens to the union.
  EXPECT_EQ(a.windows()[1].delta.FindCounter("reads")->value, 25);
  EXPECT_DOUBLE_EQ(a.windows()[1].end_ms, 1000.0);
  // Shared ids count once toward the cut total.
  EXPECT_EQ(a.windows_cut(), 3);
}

TEST(TimeSeriesTest, MergeKeepsLargerCapacityAndReappliesRollover) {
  TimeSeries a(2);
  for (int64_t id : {2, 3}) {
    a.AdvanceDelta(id, id * 1.0, id + 1.0, Registry{});
  }
  TimeSeries b(3);
  for (int64_t id : {0, 1, 4}) {
    b.AdvanceDelta(id, id * 1.0, id + 1.0, Registry{});
  }
  a.Merge(b);
  EXPECT_EQ(a.capacity(), 3u);
  ASSERT_EQ(a.windows().size(), 3u);
  EXPECT_EQ(a.windows().front().window_id, 2);
  EXPECT_EQ(a.windows().back().window_id, 4);
  EXPECT_EQ(a.windows_cut(), 5);
  EXPECT_EQ(a.windows_dropped(), 2);
}

TEST(TimeSeriesJsonlTest, GoldenBytes) {
  TimeSeries series(8);
  Registry cumulative;
  cumulative.counter("ops").Add(2);
  series.Advance(0, 0.0, 500.0, cumulative);
  cumulative.counter("ops").Add(3);
  cumulative.histogram("lat").Record(2.0);
  series.Advance(1, 500.0, 1000.0, cumulative);

  // A single-sample histogram clamps every quantile to the one value; the
  // exact bytes below are the format contract for offline consumers
  // (tools/pbs_report.py parses exactly these lines).
  const std::string expected =
      "{\"type\":\"meta\",\"windows\":2,\"windows_cut\":2,"
      "\"windows_dropped\":0,\"window_ms\":500}\n"
      "{\"type\":\"window\",\"window_id\":0,\"start_ms\":0,\"end_ms\":500,"
      "\"counters\":{\"ops\":2},\"histograms\":{}}\n"
      "{\"type\":\"window\",\"window_id\":1,\"start_ms\":500,"
      "\"end_ms\":1000,\"counters\":{\"ops\":3},\"histograms\":{\"lat\":"
      "{\"count\":1,\"min\":2,\"max\":2,\"mean\":2,\"p50\":2,\"p90\":2,"
      "\"p99\":2}}}\n";
  EXPECT_EQ(TimeSeriesJsonl(series, 500.0), expected);
}

TEST(TimeSeriesJsonlTest, DeterministicAndMetaEchoesWindowMs) {
  TimeSeries series(4);
  Registry delta;
  delta.counter("x").Add(1);
  series.AdvanceDelta(0, 0.0, 250.0, std::move(delta));
  const std::string once = TimeSeriesJsonl(series, 250.0);
  EXPECT_EQ(once, TimeSeriesJsonl(series, 250.0));
  EXPECT_NE(once.find("\"window_ms\":250"), std::string::npos);
  // Unknown cadence (0) is representable, for merged offline series.
  EXPECT_NE(TimeSeriesJsonl(series).find("\"window_ms\":0"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pbs
