#include "util/math.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(LogFactorialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogFactorialTest, NegativeIsMinusInfinity) {
  EXPECT_EQ(LogFactorial(-1), -std::numeric_limits<double>::infinity());
}

TEST(BinomialTest, PascalTriangleRow5) {
  EXPECT_DOUBLE_EQ(Binomial(5, 0), 1.0);
  EXPECT_NEAR(Binomial(5, 1), 5.0, 1e-9);
  EXPECT_NEAR(Binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(Binomial(5, 3), 10.0, 1e-9);
  EXPECT_NEAR(Binomial(5, 4), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(Binomial(5, 5), 1.0);
}

TEST(BinomialTest, InvalidCombinationsAreZero) {
  EXPECT_EQ(Binomial(3, 4), 0.0);
  EXPECT_EQ(Binomial(3, -1), 0.0);
  EXPECT_EQ(Binomial(-2, 1), 0.0);
}

TEST(BinomialTest, SymmetryHoldsForLargeArguments) {
  for (int n : {50, 100, 500}) {
    for (int k : {1, 7, 20}) {
      EXPECT_NEAR(Binomial(n, k) / Binomial(n, n - k), 1.0, 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTest, PascalRecurrenceHolds) {
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      const double lhs = Binomial(n, k);
      const double rhs = Binomial(n - 1, k - 1) + Binomial(n - 1, k);
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-10) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialRatioTest, MatchesDirectComputation) {
  // C(2,1)/C(3,1) = 2/3: the paper's N=3, R=W=1 miss probability.
  EXPECT_NEAR(BinomialRatio(2, 3, 1), 2.0 / 3.0, 1e-12);
  // C(1,1)/C(3,1) = 1/3: N=3, R=1, W=2.
  EXPECT_NEAR(BinomialRatio(1, 3, 1), 1.0 / 3.0, 1e-12);
  // C(1,2) = 0.
  EXPECT_EQ(BinomialRatio(1, 3, 2), 0.0);
}

TEST(BinomialRatioTest, PaperLargeQuorumExample) {
  // Section 2.1: N=100, R=W=30 gives ps = 1.88e-6.
  const double ps = BinomialRatio(70, 100, 30);
  EXPECT_NEAR(ps, 1.88e-6, 0.02e-6);
}

TEST(BinomialRatioTest, StableForHugeArguments) {
  const double ratio = BinomialRatio(900, 1000, 100);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 1.0);
  EXPECT_TRUE(std::isfinite(ratio));
}

TEST(ClampProbabilityTest, ClampsBothEnds) {
  EXPECT_EQ(ClampProbability(-0.5), 0.0);
  EXPECT_EQ(ClampProbability(1.5), 1.0);
  EXPECT_EQ(ClampProbability(0.25), 0.25);
}

TEST(KahanSumTest, RecoversSmallTermsNextToLargeOnes) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_NEAR(sum.value(), 10000.0, 1e-6);
}

TEST(KahanSumTest, EmptySumIsZero) {
  KahanSum sum;
  EXPECT_EQ(sum.value(), 0.0);
}

TEST(CeilProbabilityRankTest, SmallExactAndDecimalCases) {
  EXPECT_EQ(CeilProbabilityRank(0.5, 4), 2);
  EXPECT_EQ(CeilProbabilityRank(0.25, 8), 2);
  EXPECT_EQ(CeilProbabilityRank(1.0, 7), 7);
  // Decimal probabilities round-trip even though 0.2 > 1/5 as a double:
  // the first sample's coverage fl(1/5) equals the double 0.2, so rank 1.
  EXPECT_EQ(CeilProbabilityRank(0.2, 5), 1);
  EXPECT_EQ(CeilProbabilityRank(0.25, 4), 1);
  EXPECT_EQ(CeilProbabilityRank(0.3, 10), 3);
  // The ceil(p * n) failure mode: 0.07 * 100 = 7.000000000000001, whose
  // ceil claims rank 8; the curve's coverage fl(7/100) already equals 0.07.
  EXPECT_EQ(CeilProbabilityRank(0.07, 100), 7);
  EXPECT_EQ(CeilProbabilityRank(0.999, 1000), 999);
  EXPECT_EQ(CeilProbabilityRank(0.9995, 1000), 1000);
}

TEST(CeilProbabilityRankTest, BoundaryRanks) {
  for (int64_t n : {1LL, 2LL, 3LL, 7LL, 1000LL, 1000000LL, 1LL << 40}) {
    // p = 1/n: the first sample's coverage is by definition fl(1/n) = p.
    EXPECT_EQ(CeilProbabilityRank(1.0 / static_cast<double>(n), n), 1) << n;
    // p = 1.0 demands every sample.
    EXPECT_EQ(CeilProbabilityRank(1.0, n), n) << n;
  }
}

TEST(CeilProbabilityRankTest, TinyProbabilityAlwaysRankOne) {
  EXPECT_EQ(CeilProbabilityRank(1e-300, 1000000), 1);
  EXPECT_EQ(CeilProbabilityRank(std::numeric_limits<double>::min(), 5), 1);
  EXPECT_EQ(CeilProbabilityRank(1e-18, 1000), 1);
}

TEST(CeilProbabilityRankTest, LargeNBoundaries) {
  const int64_t n = 1000000;
  EXPECT_EQ(CeilProbabilityRank(0.999, n), 999000);
  EXPECT_EQ(CeilProbabilityRank(0.5, n), 500000);
  // Just above 0.5 must round up to 500001.
  EXPECT_EQ(CeilProbabilityRank(std::nextafter(0.5, 1.0), n), 500001);
  // Just below 1.0 stays at n (no rank below n reaches coverage 1 - ulp).
  EXPECT_EQ(CeilProbabilityRank(std::nextafter(1.0, 0.0), n), n);
}

TEST(CeilProbabilityRankTest, IsTheExactEcdfInverse) {
  // Defining property, checked exhaustively for moderate n: the returned
  // rank's coverage reaches p and the previous rank's does not.
  for (int64_t n : {1LL, 2LL, 3LL, 5LL, 97LL, 1000LL}) {
    for (int64_t k = 1; k <= n; ++k) {
      const double p = static_cast<double>(k) / static_cast<double>(n);
      const int64_t rank = CeilProbabilityRank(p, n);
      EXPECT_EQ(rank, k) << k << "/" << n;  // decimal/rational round-trip
      EXPECT_GE(static_cast<double>(rank) / static_cast<double>(n), p);
      if (rank > 1) {
        EXPECT_LT(static_cast<double>(rank - 1) / static_cast<double>(n), p);
      }
    }
  }
}

}  // namespace
}  // namespace pbs
