#include "util/math.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(LogFactorialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogFactorialTest, NegativeIsMinusInfinity) {
  EXPECT_EQ(LogFactorial(-1), -std::numeric_limits<double>::infinity());
}

TEST(BinomialTest, PascalTriangleRow5) {
  EXPECT_DOUBLE_EQ(Binomial(5, 0), 1.0);
  EXPECT_NEAR(Binomial(5, 1), 5.0, 1e-9);
  EXPECT_NEAR(Binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(Binomial(5, 3), 10.0, 1e-9);
  EXPECT_NEAR(Binomial(5, 4), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(Binomial(5, 5), 1.0);
}

TEST(BinomialTest, InvalidCombinationsAreZero) {
  EXPECT_EQ(Binomial(3, 4), 0.0);
  EXPECT_EQ(Binomial(3, -1), 0.0);
  EXPECT_EQ(Binomial(-2, 1), 0.0);
}

TEST(BinomialTest, SymmetryHoldsForLargeArguments) {
  for (int n : {50, 100, 500}) {
    for (int k : {1, 7, 20}) {
      EXPECT_NEAR(Binomial(n, k) / Binomial(n, n - k), 1.0, 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTest, PascalRecurrenceHolds) {
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      const double lhs = Binomial(n, k);
      const double rhs = Binomial(n - 1, k - 1) + Binomial(n - 1, k);
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-10) << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialRatioTest, MatchesDirectComputation) {
  // C(2,1)/C(3,1) = 2/3: the paper's N=3, R=W=1 miss probability.
  EXPECT_NEAR(BinomialRatio(2, 3, 1), 2.0 / 3.0, 1e-12);
  // C(1,1)/C(3,1) = 1/3: N=3, R=1, W=2.
  EXPECT_NEAR(BinomialRatio(1, 3, 1), 1.0 / 3.0, 1e-12);
  // C(1,2) = 0.
  EXPECT_EQ(BinomialRatio(1, 3, 2), 0.0);
}

TEST(BinomialRatioTest, PaperLargeQuorumExample) {
  // Section 2.1: N=100, R=W=30 gives ps = 1.88e-6.
  const double ps = BinomialRatio(70, 100, 30);
  EXPECT_NEAR(ps, 1.88e-6, 0.02e-6);
}

TEST(BinomialRatioTest, StableForHugeArguments) {
  const double ratio = BinomialRatio(900, 1000, 100);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 1.0);
  EXPECT_TRUE(std::isfinite(ratio));
}

TEST(ClampProbabilityTest, ClampsBothEnds) {
  EXPECT_EQ(ClampProbability(-0.5), 0.0);
  EXPECT_EQ(ClampProbability(1.5), 1.0);
  EXPECT_EQ(ClampProbability(0.25), 0.25);
}

TEST(KahanSumTest, RecoversSmallTermsNextToLargeOnes) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_NEAR(sum.value(), 10000.0, 1e-6);
}

TEST(KahanSumTest, EmptySumIsZero) {
  KahanSum sum;
  EXPECT_EQ(sum.value(), 0.0);
}

}  // namespace
}  // namespace pbs
