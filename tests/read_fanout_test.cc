// Section 2.3's Voldemort read fan-out claim: sending reads to R of N
// (instead of N of N) leaves staleness untouched but raises read latency
// and removes the late responses that feed read repair and detection.

#include <numeric>
#include <optional>

#include <gtest/gtest.h>

#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/client.h"
#include "kvs/cluster.h"

namespace pbs {
namespace {

TEST(WarsReadFanoutTest, StalenessNearlyUnaffectedWithSmallFresherBias) {
  // The paper: "provided staleness probabilities are independent across
  // requests, this does not affect staleness." Exactly true in the
  // set-intersection model; in the WARS timing model there is a small
  // second-order effect: Dynamo's first R responders are biased toward
  // replicas with small read-request legs — exactly the replicas the read
  // reached early, i.e. the more-likely-stale ones — so a uniformly random
  // R-subset is marginally FRESHER. We assert both the near-equality and
  // the direction of the residual bias.
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const QuorumConfig config{3, 2, 1};
  const auto all_n = RunWarsTrials(config, model, 400000, /*seed=*/1,
                                   false, ReadFanout::kAllN);
  const auto quorum_only = RunWarsTrials(config, model, 400000, /*seed=*/2,
                                         false, ReadFanout::kQuorumOnly);
  const TVisibilityCurve curve_all(all_n.staleness_thresholds);
  const TVisibilityCurve curve_subset(quorum_only.staleness_thresholds);
  for (double t : {0.0, 5.0, 20.0}) {
    const double p_all = curve_all.ProbConsistent(t);
    const double p_subset = curve_subset.ProbConsistent(t);
    EXPECT_NEAR(p_all, p_subset, 0.03) << "t=" << t;
    EXPECT_GE(p_subset + 0.005, p_all) << "t=" << t;  // bias direction
  }
}

TEST(WarsReadFanoutTest, QuorumOnlyReadsAreSlowerForPartialR) {
  const auto model = MakeIidModel(Ymmr(), 3);
  const QuorumConfig config{3, 2, 1};
  const auto all_n = RunWarsTrials(config, model, 100000, /*seed=*/3,
                                   false, ReadFanout::kAllN);
  const auto quorum_only = RunWarsTrials(config, model, 100000, /*seed=*/4,
                                         false, ReadFanout::kQuorumOnly);
  const double mean_all =
      std::accumulate(all_n.read_latencies.begin(),
                      all_n.read_latencies.end(), 0.0) /
      all_n.read_latencies.size();
  const double mean_subset =
      std::accumulate(quorum_only.read_latencies.begin(),
                      quorum_only.read_latencies.end(), 0.0) /
      quorum_only.read_latencies.size();
  // 2nd-fastest of 3 vs max of a random 2: strictly slower on average.
  EXPECT_GT(mean_subset, mean_all * 1.02);
}

TEST(WarsReadFanoutTest, EquivalentWhenREqualsN) {
  // Both policies wait for every replica when R = N.
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const QuorumConfig config{3, 3, 1};
  const auto all_n = RunWarsTrials(config, model, 50000, /*seed=*/5, false,
                                   ReadFanout::kAllN);
  const auto quorum_only = RunWarsTrials(config, model, 50000, /*seed=*/5,
                                         false, ReadFanout::kQuorumOnly);
  // Same seed, same legs: the latency distributions must agree closely
  // (element order differs only through subset shuffling randomness).
  const double q_all =
      TVisibilityCurve(all_n.staleness_thresholds).ProbConsistent(0.0);
  const double q_subset =
      TVisibilityCurve(quorum_only.staleness_thresholds).ProbConsistent(0.0);
  EXPECT_DOUBLE_EQ(q_all, 1.0);
  EXPECT_DOUBLE_EQ(q_subset, 1.0);
}

namespace kvs_fanout {

using namespace kvs;

WarsDistributions PointMassLegs() {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

TEST(KvsReadFanoutTest, QuorumOnlySendsExactlyRRequests) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs();
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.request_timeout_ms = 50.0;
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Read(1, nullptr);
  cluster.sim().Run();
  // One read request + one response (vs 3 + 3 under Dynamo fan-out).
  EXPECT_EQ(cluster.network().messages_sent(), 2);
}

TEST(KvsReadFanoutTest, NoLateResponsesMeansNoReadRepair) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs();
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.read_repair = true;
  config.request_timeout_ms = 50.0;
  config.seed = 17;
  Cluster cluster(config);
  // One fresh, two stale replicas.
  for (int i = 0; i < 3; ++i) {
    kvs::VersionedValue value;
    value.sequence = (i == 0) ? 2 : 1;
    value.stamp = {static_cast<double>(value.sequence), 0};
    cluster.replica(i).storage().Put(1, value);
  }
  int late_count = -1;
  cluster.set_late_read_hook([&](const LateReadInfo& info) {
    late_count = static_cast<int>(info.late_response_sequences.size());
  });
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Read(1, nullptr);
  cluster.sim().Run();
  EXPECT_EQ(late_count, 0);  // collection closes with zero late responses
  // With R=1 only one replica was contacted: nothing to compare, nothing
  // repaired.
  EXPECT_EQ(cluster.metrics().read_repairs_sent, 0);
}

TEST(KvsReadFanoutTest, StalenessStatisticallyUnchanged) {
  // Measure P(fresh probe read) under both fan-outs with slow writes.
  auto run = [](ReadFanout fanout) {
    KvsConfig config;
    config.quorum = {3, 1, 1};
    config.legs = MakeWars("slow", Exponential(0.1), Exponential(1.0));
    config.read_fanout = fanout;
    config.request_timeout_ms = 1000.0;
    config.seed = 23;
    Cluster cluster(config);
    ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
    ClientSession reader(&cluster, cluster.coordinator(0).id(), 2);
    int64_t fresh = 0;
    int64_t probes = 0;
    for (int i = 0; i < 4000; ++i) {
      cluster.sim().At(i * 200.0, [&]() {
        const int64_t expected = cluster.LatestSequenceFor(1) + 1;
        writer.Write(1, "v", [&, expected](const WriteResult& w) {
          if (!w.ok) return;
          reader.Read(1, [&, expected](const ReadResult& r) {
            if (!r.ok) return;
            ++probes;
            if (r.value.has_value() && r.value->sequence >= expected) {
              ++fresh;
            }
          });
        });
      });
    }
    cluster.sim().Run();
    return static_cast<double>(fresh) / static_cast<double>(probes);
  };
  const double p_all = run(ReadFanout::kAllN);
  const double p_subset = run(ReadFanout::kQuorumOnly);
  // Near-equal, with the random subset marginally fresher (no
  // first-responder selection bias; see the WARS test above).
  EXPECT_NEAR(p_all, p_subset, 0.06);
  EXPECT_GE(p_subset + 0.02, p_all);
}

}  // namespace kvs_fanout

}  // namespace
}  // namespace pbs
