#include <optional>
#include <set>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/failure_detector.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig SloppyConfig() {
  KvsConfig config;
  config.quorum = {3, 1, 3};  // W=3: one dead home replica stalls writes
  config.num_storage_nodes = 5;
  config.legs = FastLegs();
  config.sloppy_quorums = true;
  config.sloppy_extra = 2;
  config.heartbeat_interval_ms = 10.0;
  config.suspect_timeout_ms = 30.0;
  config.hint_delivery_interval_ms = 20.0;
  config.request_timeout_ms = 100.0;
  config.seed = 31337;
  return config;
}

TEST(FailureDetectorTest, HealthyClusterHasNoSuspects) {
  KvsConfig config = SloppyConfig();
  Cluster cluster(config);
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(500.0);
  for (int node = 0; node < cluster.num_replicas(); ++node) {
    EXPECT_FALSE(cluster.failure_detector()->IsSuspected(node))
        << "node " << node;
  }
  EXPECT_GT(cluster.failure_detector()->pings_sent(), 100);
  EXPECT_GT(cluster.failure_detector()->pongs_received(), 100);
}

TEST(FailureDetectorTest, CrashedNodeBecomesSuspectedThenCleared) {
  Cluster cluster(SloppyConfig());
  cluster.StartFailureDetector();
  cluster.sim().RunUntil(100.0);
  EXPECT_FALSE(cluster.failure_detector()->IsSuspected(2));

  cluster.replica(2).Crash();
  // Suspicion within timeout + a heartbeat cycle + message legs.
  cluster.sim().RunUntil(200.0);
  EXPECT_TRUE(cluster.failure_detector()->IsSuspected(2));
  // Other nodes stay clear.
  EXPECT_FALSE(cluster.failure_detector()->IsSuspected(0));

  cluster.replica(2).Recover();
  cluster.sim().RunUntil(300.0);
  EXPECT_FALSE(cluster.failure_detector()->IsSuspected(2));
}

TEST(FailureDetectorTest, StartIsIdempotent) {
  Cluster cluster(SloppyConfig());
  cluster.StartFailureDetector();
  auto* first = cluster.failure_detector();
  cluster.StartFailureDetector();
  EXPECT_EQ(cluster.failure_detector(), first);
}

TEST(ClusterTest, ExtendedPreferenceListCoversSubstitutes) {
  Cluster cluster(SloppyConfig());
  const Key key = 7;
  const auto home = cluster.ReplicasFor(key);
  const auto extended = cluster.ExtendedReplicasFor(key);
  EXPECT_EQ(home.size(), 3u);
  EXPECT_EQ(extended.size(), 5u);  // min(5, 3 + 2)
  // Extended list starts with the home list.
  for (size_t i = 0; i < home.size(); ++i) EXPECT_EQ(extended[i], home[i]);
  const std::set<NodeId> unique(extended.begin(), extended.end());
  EXPECT_EQ(unique.size(), extended.size());
}

TEST(SloppyQuorumTest, WriteSucceedsViaSubstituteWhenHomeReplicaDown) {
  Cluster cluster(SloppyConfig());
  cluster.StartFailureDetector();
  const Key key = 7;
  const auto home = cluster.ReplicasFor(key);
  const auto extended = cluster.ExtendedReplicasFor(key);
  const NodeId dead = home[1];
  const NodeId substitute = extended[3];

  cluster.replica(dead).Crash();
  cluster.sim().RunUntil(200.0);  // let the detector catch up
  ASSERT_TRUE(cluster.failure_detector()->IsSuspected(dead));

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(key, "payload", [&](const WriteResult& r) { result = r; });
  cluster.sim().RunUntil(400.0);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok) << "sloppy write should commit with W=3";
  EXPECT_EQ(cluster.metrics().sloppy_substitutions, 1);
  EXPECT_EQ(cluster.metrics().hints_stored, 1);
  // The substitute holds a hint but does NOT serve the key.
  EXPECT_EQ(cluster.node(substitute).num_hints(), 1u);
  EXPECT_FALSE(cluster.node(substitute).storage().Get(key).has_value());
  // The dead home replica obviously has nothing yet.
  EXPECT_FALSE(cluster.replica(dead).storage().Get(key).has_value());
}

TEST(SloppyQuorumTest, WithoutSloppyTheSameWriteTimesOut) {
  KvsConfig config = SloppyConfig();
  config.sloppy_quorums = false;
  Cluster cluster(config);
  cluster.StartFailureDetector();
  const Key key = 7;
  cluster.replica(cluster.ReplicasFor(key)[1]).Crash();
  cluster.sim().RunUntil(200.0);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(key, "payload", [&](const WriteResult& r) { result = r; });
  cluster.sim().RunUntil(400.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(cluster.metrics().sloppy_substitutions, 0);
}

TEST(SloppyQuorumTest, HintDeliveredToRecoveredHomeReplica) {
  Cluster cluster(SloppyConfig());
  cluster.StartFailureDetector();
  const Key key = 7;
  const NodeId dead = cluster.ReplicasFor(key)[1];
  cluster.replica(dead).Crash();
  cluster.sim().RunUntil(200.0);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(key, "payload", nullptr);
  cluster.sim().RunUntil(400.0);
  ASSERT_EQ(cluster.metrics().hints_stored, 1);
  EXPECT_EQ(cluster.metrics().hints_delivered, 0);  // home still down

  cluster.replica(dead).Recover();
  // Recovery -> pong -> unsuspected -> next hint-delivery tick forwards.
  cluster.sim().RunUntil(800.0);
  EXPECT_EQ(cluster.metrics().hints_delivered, 1);
  const auto stored = cluster.replica(dead).storage().Get(key);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->value, "payload");
}

TEST(SloppyQuorumTest, ReadsStillUseHomeReplicas) {
  // Sloppy substitution affects the write path only: reads keep fanning to
  // the home preference list (standard Dynamo behavior), so data parked as
  // hints is invisible until delivered.
  Cluster cluster(SloppyConfig());
  cluster.StartFailureDetector();
  const Key key = 7;
  const NodeId dead = cluster.ReplicasFor(key)[1];
  cluster.replica(dead).Crash();
  cluster.sim().RunUntil(200.0);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(key, "v1", nullptr);
  cluster.sim().RunUntil(400.0);

  std::optional<ReadResult> read;
  client.Read(key, [&](const ReadResult& r) { read = r; });
  cluster.sim().RunUntil(600.0);
  ASSERT_TRUE(read.has_value());
  ASSERT_TRUE(read->ok);  // R=1: live home replicas answer
  ASSERT_TRUE(read->value.has_value());
  EXPECT_EQ(read->value->value, "v1");  // two live homes applied the write
}

TEST(SloppyQuorumTest, AllSubstitutesDownFallsBackGracefully) {
  KvsConfig config = SloppyConfig();
  Cluster cluster(config);
  cluster.StartFailureDetector();
  const Key key = 7;
  const auto extended = cluster.ExtendedReplicasFor(key);
  // Kill one home and every substitute: nothing to substitute with.
  cluster.replica(extended[1]).Crash();
  cluster.replica(extended[3]).Crash();
  cluster.replica(extended[4]).Crash();
  cluster.sim().RunUntil(200.0);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<WriteResult> result;
  client.Write(key, "x", [&](const WriteResult& r) { result = r; });
  cluster.sim().RunUntil(500.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);  // W=3 unreachable; fails like strict Dynamo
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
