// Closed-loop consistency controller: SLA declaration and parsing, mixed
// (McKenzie-style fractional) quorum evaluation, the cluster-side knob
// surface the controller actuates, and the controller's epoch loop
// end-to-end — decisions recorded, history audit-joinable, digest and
// campaign results bitwise reproducible.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "dist/production.h"
#include "kvs/cluster.h"
#include "kvs/controller.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "kvs/options.h"
#include "util/stats.h"

namespace pbs {
namespace kvs {
namespace {

// ---------------------------------------------------------------- SlaTarget

TEST(SlaTargetTest, ParsesClausesInAnyOrder) {
  const StatusOr<SlaTarget> parsed = SlaTarget::Parse("p=0.999,t=10,p99<=15");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().fresh_probability, 0.999);
  EXPECT_DOUBLE_EQ(parsed.value().staleness_bound_ms, 10.0);
  EXPECT_DOUBLE_EQ(parsed.value().read_p99_ms, 15.0);

  const StatusOr<SlaTarget> reordered =
      SlaTarget::Parse("p99<=15,t=10,p=0.999");
  ASSERT_TRUE(reordered.ok());
  EXPECT_EQ(parsed.value(), reordered.value());
}

TEST(SlaTargetTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(SlaTarget::Parse("").ok());
  EXPECT_FALSE(SlaTarget::Parse("p=0.999,t=10").ok());  // missing p99
  EXPECT_FALSE(SlaTarget::Parse("p=0.999,p99<=15").ok());  // missing t
  EXPECT_FALSE(SlaTarget::Parse("p=nan,t=10,p99<=15").ok());
  EXPECT_FALSE(SlaTarget::Parse("p=0.999,t=10,p99<=15,bogus=1").ok());
  EXPECT_FALSE(SlaTarget::Parse("p=1.5,t=10,p99<=15").ok());  // p not in (0,1)
  EXPECT_FALSE(SlaTarget::Parse("p=0.9,t=-1,p99<=15").ok());
  EXPECT_FALSE(SlaTarget::Parse("p=0.9,t=10,p99<=0").ok());
}

TEST(SlaTargetTest, DisabledTargetValidates) {
  const SlaTarget none;
  EXPECT_FALSE(none.enabled());
  EXPECT_TRUE(none.Validate().ok());
}

// -------------------------------------------------------------- MixedQuorum

TEST(MixedQuorumTest, MixtureQuantileMatchesComponentsAtTheExtremes) {
  const std::vector<double> lo = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> hi = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(MixtureQuantileSorted(lo, 1.0, hi, 0.0, 0.5),
                   MixtureQuantileSorted(lo, 1.0, {}, 0.0, 0.5));
  // A zero-weight component is ignored: pure-hi delegates to the plain
  // (interpolating) component quantile.
  EXPECT_DOUBLE_EQ(MixtureQuantileSorted(lo, 0.0, hi, 1.0, 0.99),
                   QuantileSorted(hi, 0.99));
  // 50/50: the median of the merged mass sits between the components.
  const double mid = MixtureQuantileSorted(lo, 0.5, hi, 0.5, 0.5);
  EXPECT_GE(mid, 4.0);
  EXPECT_LE(mid, 10.0);
  // The mixture p99 is dominated by the slow component.
  EXPECT_DOUBLE_EQ(MixtureQuantileSorted(lo, 0.5, hi, 0.5, 0.999), 40.0);
}

TEST(MixedQuorumTest, EvaluationInterpolatesBetweenFixedQuorums) {
  SlaTarget sla;
  sla.fresh_probability = 0.9;
  sla.staleness_bound_ms = 10.0;
  sla.read_p99_ms = 1000.0;
  const ReplicaLatencyModelPtr model = MakeIidModel(LnkdDisk(), 3);
  const int trials = 20000;
  const uint64_t seed = 11;

  const MixedQuorum r1{3, 1, 1, 2, 0.0};
  const MixedQuorum r2{3, 2, 2, 2, 0.0};
  const MixedQuorum mixed{3, 1, 2, 2, 0.5};
  ASSERT_TRUE(mixed.IsValid());
  ASSERT_TRUE(mixed.mixing());

  const MixedQuorumEvaluation e1 = EvaluateMixedQuorum(
      r1, sla, model, trials, seed, ReadFanout::kQuorumOnly);
  const MixedQuorumEvaluation e2 = EvaluateMixedQuorum(
      r2, sla, model, trials, seed, ReadFanout::kQuorumOnly);
  const MixedQuorumEvaluation em = EvaluateMixedQuorum(
      mixed, sla, model, trials, seed, ReadFanout::kQuorumOnly);

  // Reading more replicas is monotonically fresher.
  EXPECT_GT(e2.fresh_probability, e1.fresh_probability);
  // The 50/50 mix lands strictly between the pure arms on freshness and
  // between (or at) them on latency.
  EXPECT_GT(em.fresh_probability, e1.fresh_probability);
  EXPECT_LT(em.fresh_probability, e2.fresh_probability);
  EXPECT_GE(em.read_p99_ms, e1.read_p99_ms);
  EXPECT_LE(em.read_p99_ms, e2.read_p99_ms + 1e-9);
}

TEST(MixedQuorumTest, EvaluationIsDeterministicGivenTheSeed) {
  SlaTarget sla;
  sla.fresh_probability = 0.95;
  sla.staleness_bound_ms = 5.0;
  sla.read_p99_ms = 50.0;
  const ReplicaLatencyModelPtr model = MakeIidModel(LnkdSsd(), 3);
  const MixedQuorum mixed{3, 1, 2, 2, 0.25};
  const MixedQuorumEvaluation a = EvaluateMixedQuorum(
      mixed, sla, model, 5000, 42, ReadFanout::kAllN);
  const MixedQuorumEvaluation b = EvaluateMixedQuorum(
      mixed, sla, model, 5000, 42, ReadFanout::kAllN);
  EXPECT_EQ(a.fresh_probability, b.fresh_probability);
  EXPECT_EQ(a.read_p99_ms, b.read_p99_ms);
  EXPECT_EQ(a.write_p99_ms, b.write_p99_ms);
  EXPECT_EQ(a.feasible, b.feasible);
}

// -------------------------------------------------- ControllerOptions/config

TEST(ControllerOptionsTest, ValidatesRanges) {
  ControllerOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.epoch_ms = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.switch_improvement_factor = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.mix_step = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.cooldown_epochs = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ControllerOptionsTest, EnabledControllerRequiresAnSla) {
  KvsConfig config;
  config.legs = LnkdSsd();
  config.controller.enabled = true;
  EXPECT_FALSE(config.Validate().ok());
  ASSERT_TRUE(
      SlaTarget::Parse("p=0.9,t=10,p99<=50").ok());
  config.sla = SlaTarget::Parse("p=0.9,t=10,p99<=50").value();
  EXPECT_TRUE(config.Validate().ok());
}

// ------------------------------------------------------- cluster knob surface

KvsConfig ControllerConfig() {
  KvsConfig config;
  config.quorum = {3, 1, 2};
  config.legs = LnkdDisk();
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.request_timeout_ms = 200.0;
  config.sla = SlaTarget::Parse("p=0.9,t=10,p99<=50").value();
  config.controller.enabled = true;
  config.controller.epoch_ms = 500.0;
  config.controller.trials_per_eval = 300;
  config.controller.min_leg_samples = 32;
  config.seed = 7;
  return config;
}

TEST(ClusterKnobTest, UpdateReadMixValidatesAndDegenerates) {
  Cluster cluster(ControllerConfig());
  EXPECT_FALSE(cluster.UpdateReadMix(0, 2, 0.5).ok());   // r_lo < 1
  EXPECT_FALSE(cluster.UpdateReadMix(2, 1, 0.5).ok());   // r_lo > r_hi
  EXPECT_FALSE(cluster.UpdateReadMix(1, 4, 0.5).ok());   // r_hi > n
  EXPECT_FALSE(cluster.UpdateReadMix(1, 2, -0.1).ok());  // p out of range
  EXPECT_FALSE(cluster.UpdateReadMix(1, 2, 1.1).ok());

  ASSERT_TRUE(cluster.UpdateReadMix(1, 2, 0.25).ok());
  EXPECT_TRUE(cluster.read_mix().mixing());
  // Degenerate probabilities collapse to a fixed quorum.
  ASSERT_TRUE(cluster.UpdateReadMix(1, 2, 1.0).ok());
  EXPECT_FALSE(cluster.read_mix().mixing());
  EXPECT_EQ(cluster.config().quorum.r, 1);
  ASSERT_TRUE(cluster.UpdateReadMix(1, 2, 0.0).ok());
  EXPECT_FALSE(cluster.read_mix().mixing());
  EXPECT_EQ(cluster.config().quorum.r, 2);
}

TEST(ClusterKnobTest, EffectiveReadQuorumMixesPerRead) {
  Cluster cluster(ControllerConfig());
  ASSERT_TRUE(cluster.UpdateReadMix(1, 2, 0.5).ok());
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(cluster.EffectiveReadQuorumFor(i));
  EXPECT_EQ(seen, (std::set<int>{1, 2}));
  EXPECT_GT(cluster.metrics().mixed_reads_lo, 0);
  EXPECT_GT(cluster.metrics().mixed_reads_hi, 0);
  const int64_t lo = cluster.metrics().mixed_reads_lo;
  const int64_t hi = cluster.metrics().mixed_reads_hi;
  // ~50/50 split over 200 draws (binomial: 3+ σ of slack).
  EXPECT_GT(lo, 60);
  EXPECT_GT(hi, 60);
  EXPECT_EQ(lo + hi, 200);
}

TEST(ClusterKnobTest, FreshnessLedgerClassifiesAgainstTheBound) {
  KvsConfig config = ControllerConfig();
  config.sla.staleness_bound_ms = 10.0;
  Cluster cluster(config);
  // Key 5, version 2 committed at t=100. A read started at t=105 that
  // returns version 1 is within the bound (the newer commit is only 5ms
  // old); a read started at t=150 returning version 1 is stale.
  cluster.RecordCommit(5, /*sequence=*/2, /*commit_time=*/100.0);
  cluster.RecordReadOutcome(5, /*returned_sequence=*/1,
                            /*read_start_time=*/105.0);
  EXPECT_EQ(cluster.FreshReads(0), 1);
  EXPECT_EQ(cluster.StaleReads(0), 0);
  cluster.RecordReadOutcome(5, /*returned_sequence=*/1,
                            /*read_start_time=*/150.0);
  EXPECT_EQ(cluster.StaleReads(0), 1);
  // Reading the committed (or newer) version is always fresh.
  cluster.RecordReadOutcome(5, /*returned_sequence=*/2,
                            /*read_start_time=*/150.0);
  EXPECT_EQ(cluster.FreshReads(0), 2);
  EXPECT_EQ(cluster.metrics().reads_fresh_measured, 2);
  EXPECT_EQ(cluster.metrics().reads_stale_measured, 1);
}

// ------------------------------------------------------- controller end-to-end

StalenessExperimentOptions ControllerExperiment() {
  StalenessExperimentOptions options;
  options.cluster = ControllerConfig();
  options.writes = 200;
  options.write_spacing_ms = 50.0;
  options.read_offsets_ms = {1.0, 10.0, 50.0};
  options.seed = 99;
  return options;
}

TEST(ControllerTest, EpochLoopRecordsDecisionsAndHistory) {
  const StalenessExperimentResult result =
      RunStalenessExperiment(ControllerExperiment());
  EXPECT_GT(result.final_metrics.controller_epochs, 5);
  ASSERT_FALSE(result.controller_decisions.empty());
  ASSERT_FALSE(result.controller_history.empty());
  EXPECT_NE(result.controller_digest, 0u);

  // Decision ids are dense and 1-based; epochs are monotone.
  int64_t expected_id = 1;
  double last_time = -1.0;
  for (const ConsistencyController::Decision& d :
       result.controller_decisions) {
    EXPECT_EQ(d.id, expected_id++);
    EXPECT_GE(d.time_ms, last_time);
    last_time = d.time_ms;
    EXPECT_FALSE(d.action.empty());
    EXPECT_TRUE(d.quorum.IsValid()) << d.action;
  }
  // History: record 0 is the initial config; valid_from is monotone, every
  // later record maps to an actuated decision.
  EXPECT_EQ(result.controller_history.front().decision_id, 0);
  double last_from = -1.0;
  for (const obs::AdaptationRecord& record : result.controller_history) {
    EXPECT_GT(record.valid_from_ms, last_from);
    last_from = record.valid_from_ms;
    EXPECT_GE(record.r_lo, 1);
    EXPECT_LE(record.r_lo, record.r_hi);
    EXPECT_GE(record.w, 1);
  }
  // Measured-freshness plumbing reached the metrics.
  EXPECT_GT(result.final_metrics.reads_fresh_measured +
                result.final_metrics.reads_stale_measured,
            0);
}

TEST(ControllerTest, RunsAreBitwiseReproducible) {
  const StalenessExperimentResult a =
      RunStalenessExperiment(ControllerExperiment());
  const StalenessExperimentResult b =
      RunStalenessExperiment(ControllerExperiment());
  ASSERT_EQ(a.controller_decisions.size(), b.controller_decisions.size());
  for (size_t i = 0; i < a.controller_decisions.size(); ++i) {
    EXPECT_EQ(a.controller_decisions[i], b.controller_decisions[i]) << i;
  }
  EXPECT_EQ(a.controller_digest, b.controller_digest);
}

TEST(ControllerTest, ControllerOffLeavesTheRunUntouched) {
  // RNG-consumption contract: enabling the feature must not perturb a
  // feature-off run — and a controller-off run must reproduce the
  // pre-feature draw sequences (no controller objects, no decisions).
  StalenessExperimentOptions options = ControllerExperiment();
  options.cluster.controller.enabled = false;
  const StalenessExperimentResult result = RunStalenessExperiment(options);
  EXPECT_TRUE(result.controller_decisions.empty());
  EXPECT_TRUE(result.controller_history.empty());
  EXPECT_EQ(result.controller_digest, 0u);
  EXPECT_EQ(result.final_metrics.controller_epochs, 0);
}

TEST(ControllerTest, HedgesOnWhenASlowReplicaBlowsTheLatencyBudget) {
  // The bench/pcap headline in miniature: a 20x slow replica under
  // kQuorumOnly. The measured p99 (or outright read failures) must drive
  // the tail-relief ladder: hedging on, never trading staleness for it.
  StalenessExperimentOptions options = ControllerExperiment();
  options.cluster.sla = SlaTarget::Parse("p=0.9,t=10,p99<=8").value();
  FaultSchedule faults;
  faults.AddSlowNode(0.0, 20000.0, /*node=*/0, /*delay_mult=*/20.0);
  const StalenessExperimentResult result =
      RunStalenessExperimentWithFaults(options, faults);
  ASSERT_FALSE(result.controller_history.empty());
  EXPECT_TRUE(result.controller_history.back().hedge_enabled);
  bool saw_hedge_on = false;
  for (const ConsistencyController::Decision& d :
       result.controller_decisions) {
    if (d.action == "hedge_on") saw_hedge_on = true;
    // Guarded actuation: no decision both widens the staleness exposure
    // (lower r_lo/r_hi or mix shifted toward the low arm) and loosens the
    // latency protections in the same step — every action is one knob.
    EXPECT_NE(d.action, "");
  }
  EXPECT_TRUE(saw_hedge_on);
  EXPECT_GT(result.final_metrics.controller_steps, 0);
}

// ------------------------------------------------------- campaign determinism

TEST(ControllerCampaignTest, StaticBaselineRunsWithControllerDisabled) {
  ControllerTrialOptions options;
  options.experiment = ControllerExperiment();
  options.experiment.cluster.controller.enabled = false;
  options.experiment.writes = 100;
  options.trials = 2;
  options.seed = 5;
  const ControllerCampaignResult result =
      RunControllerTrials(options, PbsExecutionOptions{});
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_GT(result.pooled.reads_started, 0);
  for (const ControllerCampaignSummary& trial : result.trials) {
    EXPECT_EQ(trial.decision_digest, 0u);
    EXPECT_EQ(trial.decisions, 0);
  }
}

TEST(ControllerCampaignTest, FaultFactoryDoesNotPerturbTheWorkloadStream) {
  // The runner draws workload and fault seeds per trial whether or not a
  // fault factory is installed, so adding an *empty* schedule via the
  // factory reproduces the fault-free campaign bitwise.
  ControllerTrialOptions options;
  options.experiment = ControllerExperiment();
  options.experiment.writes = 100;
  options.trials = 2;
  options.seed = 17;
  const ControllerCampaignResult without =
      RunControllerTrials(options, PbsExecutionOptions{});
  options.faults = [](double, uint64_t) { return FaultSchedule(); };
  const ControllerCampaignResult with_empty =
      RunControllerTrials(options, PbsExecutionOptions{});
  EXPECT_EQ(without, with_empty);
}

// ------------------------------------------------------- predictor backends

TEST(ControllerBackendTest, ExplicitMonteCarloMatchesTheDefault) {
  // The backend knob defaults to kMonteCarlo; spelling it out — and moving
  // the (unused) analytic grid knobs — must not perturb decision streams
  // or digests. This is the compatibility half of the DESIGN.md §12
  // contract.
  const StalenessExperimentResult baseline =
      RunStalenessExperiment(ControllerExperiment());
  StalenessExperimentOptions options = ControllerExperiment();
  options.cluster.controller.backend = PredictorBackend::kMonteCarlo;
  options.cluster.controller.grid_bins = 2000;
  options.cluster.controller.grid_max_ms = 700.0;
  options.cluster.controller.grid_auto_max = false;
  const StalenessExperimentResult explicit_mc = RunStalenessExperiment(options);
  ASSERT_EQ(explicit_mc.controller_decisions.size(),
            baseline.controller_decisions.size());
  for (size_t i = 0; i < baseline.controller_decisions.size(); ++i) {
    EXPECT_EQ(explicit_mc.controller_decisions[i],
              baseline.controller_decisions[i])
        << i;
  }
  EXPECT_EQ(explicit_mc.controller_digest, baseline.controller_digest);
}

TEST(ControllerBackendTest, AnalyticRunsAreBitwiseReproducible) {
  StalenessExperimentOptions options = ControllerExperiment();
  options.cluster.controller.backend = PredictorBackend::kAnalytic;
  const StalenessExperimentResult a = RunStalenessExperiment(options);
  const StalenessExperimentResult b = RunStalenessExperiment(options);
  EXPECT_GT(a.final_metrics.controller_epochs, 5);
  ASSERT_FALSE(a.controller_decisions.empty());
  ASSERT_EQ(a.controller_decisions.size(), b.controller_decisions.size());
  for (size_t i = 0; i < a.controller_decisions.size(); ++i) {
    EXPECT_EQ(a.controller_decisions[i], b.controller_decisions[i]) << i;
  }
  EXPECT_EQ(a.controller_digest, b.controller_digest);
}

TEST(ControllerBackendTest, AutoBackendRunsTheEpochLoop) {
  StalenessExperimentOptions options = ControllerExperiment();
  options.cluster.controller.backend = PredictorBackend::kAuto;
  const StalenessExperimentResult result = RunStalenessExperiment(options);
  EXPECT_GT(result.final_metrics.controller_epochs, 5);
  EXPECT_FALSE(result.controller_decisions.empty());
  EXPECT_NE(result.controller_digest, 0u);
}

TEST(ControllerBackendTest, AnalyticCampaignIsThreadCountDeterministic) {
  // The acceptance pin: kAnalytic controller campaigns (no RNG in the
  // per-epoch evaluator at all) reproduce bitwise at 1, 4 and 8 threads,
  // exactly like the Monte Carlo pin in parallel_determinism_test.
  ControllerTrialOptions options;
  options.experiment = ControllerExperiment();
  options.experiment.writes = 150;
  options.experiment.cluster.controller.backend = PredictorBackend::kAnalytic;
  options.trials = 3;
  options.seed = 606;
  PbsExecutionOptions serial_exec;
  serial_exec.threads = 1;
  const ControllerCampaignResult serial =
      RunControllerTrials(options, serial_exec);
  ASSERT_EQ(serial.trials.size(), 3u);
  EXPECT_NE(serial.pooled_digest, 0u);
  for (int threads : {4, 8}) {
    PbsExecutionOptions exec;
    exec.threads = threads;
    const ControllerCampaignResult parallel =
        RunControllerTrials(options, exec);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
