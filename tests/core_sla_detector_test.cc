#include <gtest/gtest.h>

#include "core/sla.h"
#include "core/staleness_detector.h"
#include "core/wars.h"
#include "dist/production.h"

namespace pbs {
namespace {

SlaOptimizer::ModelFactory DiskFactory() {
  return [](int n) { return MakeIidModel(LnkdDisk(), n); };
}

TEST(SlaOptimizerTest, EnumeratesTheWholeBox) {
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/2000, /*seed=*/1);
  SlaConstraints constraints;
  constraints.min_n = 2;
  constraints.max_n = 3;
  const auto candidates = optimizer.EnumerateAll(constraints, {});
  // N=2 contributes 2*2 configs, N=3 contributes 3*3.
  EXPECT_EQ(candidates.size(), 4u + 9u);
}

TEST(SlaOptimizerTest, FeasibleSortedByObjective) {
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/3000, /*seed=*/2);
  SlaConstraints constraints;
  constraints.min_n = 3;
  constraints.max_n = 3;
  constraints.max_t_visibility_ms = 1e9;  // everything feasible
  const auto candidates = optimizer.EnumerateAll(constraints, {});
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_TRUE(candidates[i - 1].feasible);
    EXPECT_LE(candidates[i - 1].objective, candidates[i].objective);
  }
}

TEST(SlaOptimizerTest, TightStalenessBoundForcesStricterQuorums) {
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/5000, /*seed=*/3);
  SlaConstraints constraints;
  constraints.min_n = 3;
  constraints.max_n = 3;
  constraints.consistency_probability = 0.9999;
  constraints.max_t_visibility_ms = 0.0;  // zero staleness window
  const auto best = optimizer.Optimize(constraints, {});
  ASSERT_TRUE(best.ok());
  // Only overlapping quorums give a zero window at that probability.
  EXPECT_TRUE(best.value().config.IsStrict());
}

TEST(SlaOptimizerTest, RelaxedBoundPrefersR1W1) {
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/5000, /*seed=*/4);
  SlaConstraints constraints;
  constraints.min_n = 3;
  constraints.max_n = 3;
  constraints.consistency_probability = 0.999;
  constraints.max_t_visibility_ms = 1e6;  // effectively unconstrained
  const auto best = optimizer.Optimize(constraints, {});
  ASSERT_TRUE(best.ok());
  // Smallest quorums are fastest when staleness does not bind.
  EXPECT_EQ(best.value().config.r, 1);
  EXPECT_EQ(best.value().config.w, 1);
}

TEST(SlaOptimizerTest, DurabilityFloorRespected) {
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/2000, /*seed=*/5);
  SlaConstraints constraints;
  constraints.min_n = 3;
  constraints.max_n = 3;
  constraints.min_write_quorum = 2;
  constraints.max_t_visibility_ms = 1e6;
  const auto candidates = optimizer.EnumerateAll(constraints, {});
  for (const auto& candidate : candidates) {
    EXPECT_GE(candidate.config.w, 2);
  }
}

TEST(SlaOptimizerTest, UnsatisfiableReturnsNotFound) {
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/1000, /*seed=*/6);
  SlaConstraints constraints;
  constraints.min_n = 2;
  constraints.max_n = 2;
  constraints.min_write_quorum = 3;  // no W in [3, 2]: empty box
  const auto best = optimizer.Optimize(constraints, {});
  EXPECT_FALSE(best.ok());
}

TEST(SlaOptimizerTest, WriteWeightSteersTheChoice) {
  // With only write latency in the objective and a strict-staleness bound,
  // prefer W=1-ish configs that satisfy the bound through R instead.
  SlaOptimizer optimizer(DiskFactory(), /*trials=*/5000, /*seed=*/7);
  SlaConstraints constraints;
  constraints.min_n = 3;
  constraints.max_n = 3;
  constraints.consistency_probability = 0.9999;
  constraints.max_t_visibility_ms = 0.0;
  SlaObjective writes_only;
  writes_only.read_weight = 0.0;
  writes_only.write_weight = 1.0;
  const auto best = optimizer.Optimize(constraints, writes_only);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value().config.w, 1);
  EXPECT_EQ(best.value().config.r, 3);  // R=3, W=1 is the write-cheap strict quorum
}

// ---------------------------------------------------------------------------
// Staleness detector (Section 4.3)

TEST(StalenessDetectorTest, ConsistentWhenNoNewerLateResponses) {
  StalenessDetector detector;
  ReadObservation obs;
  obs.returned_version = 5;
  obs.late_response_versions = {5, 4, 0};
  EXPECT_EQ(detector.Observe(obs), StalenessVerdict::kConsistent);
  EXPECT_EQ(detector.consistent(), 1);
}

TEST(StalenessDetectorTest, HeuristicModeFlagsWithoutClassifying) {
  StalenessDetector detector;  // no oracle
  ReadObservation obs;
  obs.returned_version = 3;
  obs.late_response_versions = {7};
  EXPECT_EQ(detector.Observe(obs), StalenessVerdict::kFlagged);
  EXPECT_EQ(detector.flagged(), 1);
  EXPECT_EQ(detector.stale(), 0);
}

TEST(StalenessDetectorTest, OracleSeparatesStaleFromFalsePositive) {
  // Versions 1..10 commit at time = version; version 9 is uncommitted.
  auto oracle = [](int64_t version) -> double {
    if (version == 9) return -1.0;
    return static_cast<double>(version);
  };
  StalenessDetector detector(oracle);

  // Read started at t=6.5 and returned version 5; a late response shows
  // version 6, which committed at 6.0 <= 6.5: a true stale read.
  ReadObservation stale;
  stale.returned_version = 5;
  stale.read_start_time = 6.5;
  stale.late_response_versions = {6};
  EXPECT_EQ(detector.Observe(stale), StalenessVerdict::kStale);

  // Late response shows uncommitted version 9: newer-but-uncommitted.
  ReadObservation in_flight;
  in_flight.returned_version = 8;
  in_flight.read_start_time = 8.5;
  in_flight.late_response_versions = {9};
  EXPECT_EQ(detector.Observe(in_flight), StalenessVerdict::kFalsePositive);

  // Late response committed *after* the read started: also a false
  // positive under the paper's staleness semantics.
  ReadObservation committed_later;
  committed_later.returned_version = 7;
  committed_later.read_start_time = 7.5;
  committed_later.late_response_versions = {8};
  EXPECT_EQ(detector.Observe(committed_later),
            StalenessVerdict::kFalsePositive);

  EXPECT_EQ(detector.stale(), 1);
  EXPECT_EQ(detector.false_positives(), 2);
  EXPECT_EQ(detector.reads(), 3);
}

TEST(StalenessDetectorTest, IntermediateCommittedVersionCaughtEvenIfNewestIsNot) {
  // Newest late version (9) is uncommitted, but version 6 (also late,
  // committed before the read) proves staleness.
  auto oracle = [](int64_t version) -> double {
    if (version == 9) return -1.0;
    return static_cast<double>(version);
  };
  StalenessDetector detector(oracle);
  ReadObservation obs;
  obs.returned_version = 5;
  obs.read_start_time = 6.5;
  obs.late_response_versions = {9, 6};
  EXPECT_EQ(detector.Observe(obs), StalenessVerdict::kStale);
}

TEST(StalenessDetectorTest, EmpiricalConsistencyAccounting) {
  auto oracle = [](int64_t version) {
    return static_cast<double>(version);
  };
  StalenessDetector detector(oracle);
  ReadObservation fresh;
  fresh.returned_version = 2;
  fresh.late_response_versions = {1};
  detector.Observe(fresh);
  ReadObservation stale;
  stale.returned_version = 1;
  stale.read_start_time = 10.0;
  stale.late_response_versions = {2};
  detector.Observe(stale);
  EXPECT_DOUBLE_EQ(detector.EmpiricalConsistency(), 0.5);
}

}  // namespace
}  // namespace pbs
