#include "util/function.h"

#include <array>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(UniqueFunctionTest, DefaultConstructedIsEmpty) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  UniqueFunction<void()> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(UniqueFunctionTest, InvokesCapturedLambda) {
  int calls = 0;
  UniqueFunction<void()> f = [&calls] { ++calls; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunctionTest, ReturnsValuesAndForwardsArguments) {
  UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);

  UniqueFunction<int(std::unique_ptr<int>)> take =
      [](std::unique_ptr<int> p) { return *p; };
  EXPECT_EQ(take(std::make_unique<int>(7)), 7);
}

TEST(UniqueFunctionTest, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<int>(42);
  UniqueFunction<int()> f = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunctionTest, MoveTransfersStateAndEmptiesSource) {
  int calls = 0;
  UniqueFunction<void()> a = [&calls] { ++calls; };
  UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  UniqueFunction<void()> c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunctionTest, DestroysCaptureExactlyOnce) {
  int live = 0;
  struct Tracker {
    int* live;
    explicit Tracker(int* l) : live(l) { ++*live; }
    Tracker(Tracker&& o) noexcept : live(o.live) { live = o.live; ++*live; }
    Tracker(const Tracker& o) : live(o.live) { ++*live; }
    ~Tracker() { --*live; }
  };
  {
    UniqueFunction<void()> f = [t = Tracker(&live)] { (void)t; };
    EXPECT_GE(live, 1);
    UniqueFunction<void()> g = std::move(f);
    g = nullptr;
    EXPECT_EQ(live, 0);
  }
  EXPECT_EQ(live, 0);
}

TEST(UniqueFunctionTest, LargeCapturesSpillToHeapAndStillMove) {
  // Larger than kInlineSize, forcing the heap path.
  std::array<double, 16> big;
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
  static_assert(sizeof(big) > UniqueFunction<double()>::kInlineSize);

  UniqueFunction<double()> f = [big] {
    double sum = 0;
    for (double x : big) sum += x;
    return sum;
  };
  UniqueFunction<double()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(), 120.0);
}

TEST(UniqueFunctionTest, ReassignmentReplacesCallable) {
  UniqueFunction<int()> f = [] { return 1; };
  f = [] { return 2; };
  EXPECT_EQ(f(), 2);
}

}  // namespace
}  // namespace pbs
