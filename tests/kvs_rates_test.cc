#include "kvs/rates.h"

#include <gtest/gtest.h>

#include "core/closed_form.h"
#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"

namespace pbs {
namespace kvs {
namespace {

TEST(RateEstimatorTest, NeedsTwoEvents) {
  RateEstimator rate;
  EXPECT_EQ(rate.EventsPerMs(100.0), 0.0);
  rate.Record(10.0);
  EXPECT_EQ(rate.EventsPerMs(100.0), 0.0);
  rate.Record(20.0);
  EXPECT_GT(rate.EventsPerMs(100.0), 0.0);
}

TEST(RateEstimatorTest, SteadyStreamGivesExactRate) {
  RateEstimator rate;
  for (int i = 0; i <= 10; ++i) rate.Record(i * 5.0);  // every 5 ms
  EXPECT_NEAR(rate.EventsPerMs(50.0), 0.2, 1e-12);
}

TEST(RateEstimatorTest, DecaysWhenStreamStops) {
  RateEstimator rate;
  rate.Record(0.0);
  rate.Record(10.0);  // 0.1 events/ms over the burst
  EXPECT_NEAR(rate.EventsPerMs(10.0), 0.1, 1e-12);
  // 990 ms of silence: the window span stretches to now.
  EXPECT_NEAR(rate.EventsPerMs(1000.0), 1.0 / 1000.0, 1e-12);
}

TEST(RateEstimatorTest, WindowSlidesOverOldEvents) {
  RateEstimator rate(/*window_capacity=*/4);
  // Slow prefix, then a fast burst; the window must forget the prefix.
  rate.Record(0.0);
  rate.Record(1000.0);
  for (int i = 0; i < 4; ++i) rate.Record(2000.0 + i * 1.0);
  EXPECT_NEAR(rate.EventsPerMs(2003.0), 1.0, 1e-12);
  EXPECT_EQ(rate.count(), 4u);
}

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(0.5);
  legs.a = PointMass(0.5);
  legs.r = PointMass(0.5);
  legs.s = PointMass(0.5);
  return legs;
}

TEST(SessionRatesTest, MeasuredRatesFeedEquation3) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = FastLegs();
  Cluster cluster(config);
  ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  ClientSession reader(&cluster, cluster.coordinator(0).id(), 2);

  // Writes every 10 ms, session reads every 20 ms: gw/cr = 2.
  for (int i = 0; i < 200; ++i) {
    cluster.sim().At(i * 10.0, [&]() { writer.Write(5, "v", nullptr); });
  }
  for (int i = 0; i < 100; ++i) {
    cluster.sim().At(i * 20.0, [&]() { reader.Read(5, nullptr); });
  }
  // Sample the rates while the streams are live (the estimator decays
  // during the trailing request-timeout drain after traffic stops).
  double measured_gw = 0.0;
  double measured_cr = 0.0;
  double predicted = 0.0;
  cluster.sim().At(1995.0, [&]() {
    measured_gw = cluster.WriteRatePerMsFor(5);
    measured_cr = reader.ReadRatePerMs(5);
    predicted = reader.PredictedMonotonicViolationProbability(5);
  });
  cluster.sim().Run();

  EXPECT_NEAR(measured_gw, 0.1, 0.01);
  EXPECT_NEAR(measured_cr, 0.05, 0.005);
  const double expected =
      MonotonicReadsViolationProbability({3, 1, 1}, 0.1, 0.05);
  EXPECT_NEAR(predicted, expected, 0.05);
  // gw/cr = 2 -> k = 3 -> ps^3 = (2/3)^3.
  EXPECT_NEAR(expected, 8.0 / 27.0, 0.02);
}

TEST(SessionRatesTest, UnmeasuredRatesPredictZero) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = FastLegs();
  Cluster cluster(config);
  ClientSession session(&cluster, cluster.coordinator(0).id(), 1);
  EXPECT_EQ(session.PredictedMonotonicViolationProbability(1), 0.0);
  EXPECT_EQ(session.ReadRatePerMs(1), 0.0);
  EXPECT_EQ(cluster.WriteRatePerMsFor(1), 0.0);
}

TEST(SessionRatesTest, MeasuredViolationsBoundedByPrediction) {
  // Equation 3 assumes non-expanding quorums, so it upper-bounds the
  // violation rate of the real (expanding) cluster. Use slow writes and
  // fast re-reads to make violations actually occur.
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = MakeWars("slow", Exponential(0.05), Exponential(2.0));
  config.request_timeout_ms = 2000.0;
  config.seed = 99;
  Cluster cluster(config);
  ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  ClientSession reader(&cluster, cluster.coordinator(0).id(), 2);

  for (int i = 0; i < 3000; ++i) {
    cluster.sim().At(i * 20.0, [&]() {
      writer.Write(9, "v", nullptr);
      reader.Read(9, nullptr);
    });
  }
  cluster.sim().Run();
  ASSERT_GT(reader.reads_issued(), 0);
  const double measured =
      static_cast<double>(reader.monotonic_violations()) /
      static_cast<double>(reader.reads_issued());
  const double predicted = reader.PredictedMonotonicViolationProbability(9);
  EXPECT_GT(measured, 0.0);
  EXPECT_LE(measured, predicted + 0.02)
      << "Equation 3 must be a conservative bound for expanding quorums";
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
