#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/empirical.h"
#include "dist/fit.h"
#include "dist/mixture.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "util/stats.h"

namespace pbs {
namespace {

TEST(EmpiricalTest, CdfQuantileRoundTrip) {
  EmpiricalDistribution dist({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(dist.size(), 5u);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(3.0), 0.6);
  EXPECT_DOUBLE_EQ(dist.Mean(), 3.0);
}

TEST(EmpiricalTest, ResamplesOnlyObservedValues) {
  EmpiricalDistribution dist({1.0, 2.0, 3.0});
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = dist.Sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 3.0);
  }
}

TEST(EmpiricalTest, RoundTripsAnotherDistribution) {
  auto source = Exponential(0.2);
  Rng rng(123);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(source->Sample(rng));
  EmpiricalDistribution dist(std::move(samples));
  EXPECT_NEAR(dist.Mean(), 5.0, 0.15);
  EXPECT_NEAR(dist.Quantile(0.5), source->Quantile(0.5), 0.1);
}

TEST(NelderMeadTest, MinimizesSphereFunction) {
  auto sphere = [](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) s += (v - 1.0) * (v - 1.0);
    return s;
  };
  const auto x = NelderMead(sphere, {5.0, -3.0, 0.0}, 1.0, 2000);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-3);
}

TEST(NelderMeadTest, MinimizesRosenbrock) {
  auto rosenbrock = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const auto x = NelderMead(rosenbrock, {-1.2, 1.0}, 0.5, 20000);
  EXPECT_NEAR(x[0], 1.0, 0.02);
  EXPECT_NEAR(x[1], 1.0, 0.04);
}

TEST(QuantileNRmseTest, ZeroForPerfectModel) {
  auto dist = Exponential(1.0);
  std::vector<PercentilePoint> points;
  for (double pct : {10.0, 50.0, 90.0, 99.0}) {
    points.push_back({pct, dist->Quantile(pct / 100.0)});
  }
  EXPECT_NEAR(QuantileNRmse(*dist, points), 0.0, 1e-12);
}

TEST(FitTest, RecoversSyntheticMixtureQuantiles) {
  // Generate percentile points from a known Pareto+Exp mixture and check
  // that the fitted model reproduces them closely (the parameters
  // themselves may differ -- the objective is quantile agreement, exactly
  // like the paper's N-RMSE criterion).
  const auto truth = ParetoExponentialMixture(0.9, 0.5, 4.0, 0.05);
  std::vector<PercentilePoint> points;
  for (double pct : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    points.push_back({pct, truth->Quantile(pct / 100.0)});
  }
  const ParetoExpFit fit = FitParetoExponential(points, /*seed=*/1);
  EXPECT_LT(fit.n_rmse, 0.02) << fit.Describe();
  const auto model = fit.ToDistribution();
  for (const auto& pt : points) {
    const double got = model->Quantile(pt.percentile / 100.0);
    EXPECT_NEAR(got, pt.value, 0.15 * pt.value + 0.05)
        << "pct=" << pt.percentile;
  }
}

TEST(FitTest, FitsYammerReadTable) {
  // Section 5.5 methodology check: a Pareto-body + exponential-tail mixture
  // fits the published Riak read percentiles with small N-RMSE (the paper
  // reports .06% for its A=R=S fit; we only require the same order).
  const ParetoExpFit fit =
      FitParetoExponential(YammerReadPercentiles(), /*seed=*/2);
  EXPECT_LT(fit.n_rmse, 0.05) << fit.Describe();
  EXPECT_GT(fit.weight_body, 0.5);  // body carries most of the mass
}

TEST(FitTest, DeterministicGivenSeed) {
  const auto points = YammerReadPercentiles();
  const ParetoExpFit a = FitParetoExponential(points, 3, 8);
  const ParetoExpFit b = FitParetoExponential(points, 3, 8);
  EXPECT_DOUBLE_EQ(a.xm, b.xm);
  EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.weight_body, b.weight_body);
}

}  // namespace
}  // namespace pbs
