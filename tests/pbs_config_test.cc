// pbs::Config public API: Status-returning validation, fault-spec parsing,
// scenario resolution, and the lowering onto the internal KvsConfig /
// StalenessExperimentOptions structs.

#include <string>

#include <gtest/gtest.h>

#include "kvs/failure.h"
#include "pbs/config.h"
#include "util/status.h"

namespace pbs {
namespace {

TEST(QuorumOptionsTest, DefaultValidatesAndBadShapeDoesNot) {
  EXPECT_TRUE(QuorumOptions{}.Validate().ok());
  QuorumOptions bad;
  bad.r = 4;  // R > N
  const Status status = bad.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadOptionsTest, RejectsEmptyAndNegativeInputs) {
  EXPECT_TRUE(WorkloadOptions{}.Validate().ok());
  WorkloadOptions w;
  w.writes = 0;
  EXPECT_FALSE(w.Validate().ok());
  w = WorkloadOptions{};
  w.write_spacing_ms = 0.0;
  EXPECT_FALSE(w.Validate().ok());
  w = WorkloadOptions{};
  w.read_offsets_ms.clear();
  EXPECT_FALSE(w.Validate().ok());
  w = WorkloadOptions{};
  w.read_offsets_ms = {1.0, -2.0};
  EXPECT_FALSE(w.Validate().ok());
}

TEST(ScenarioTest, KnownNamesResolveUnknownNamesError) {
  for (const char* name : {"lnkd-ssd", "lnkd-disk", "ymmr", "wan"}) {
    EXPECT_TRUE(ScenarioLegs(name).ok()) << name;
    EXPECT_TRUE(ScenarioModel(name, 3).ok()) << name;
  }
  const auto legs = ScenarioLegs("lnkd-tape");
  ASSERT_FALSE(legs.ok());
  EXPECT_EQ(legs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(legs.status().message().find("lnkd-tape"), std::string::npos);
  EXPECT_FALSE(ScenarioModel("lnkd-disk", 0).ok());
}

TEST(ParseFaultSpecTest, ParsesEveryKindWithDefaults) {
  kvs::FaultSchedule schedule;
  const double horizon = 1000.0;
  EXPECT_TRUE(
      ParseFaultSpec("slow:node=2,factor=10", horizon, &schedule).ok());
  EXPECT_TRUE(
      ParseFaultSpec("lossy:src=0,dst=4,loss=0.8", horizon, &schedule).ok());
  EXPECT_TRUE(ParseFaultSpec("dup:src=0,dst=4", horizon, &schedule).ok());
  EXPECT_TRUE(
      ParseFaultSpec("flap:node=2,up=300,down=200", horizon, &schedule).ok());
  EXPECT_TRUE(ParseFaultSpec("oneway:src=0,dst=4", horizon, &schedule).ok());
  ASSERT_EQ(schedule.faults().size(), 5u);
  EXPECT_EQ(schedule.faults()[0].kind, kvs::GrayFault::Kind::kSlowNode);
  EXPECT_EQ(schedule.faults()[0].node, 2);
  // start/end default to the whole run.
  EXPECT_DOUBLE_EQ(schedule.faults()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(schedule.faults()[0].end, horizon);
  EXPECT_EQ(schedule.faults()[4].kind,
            kvs::GrayFault::Kind::kAsymmetricPartition);
}

TEST(ParseFaultSpecTest, GraySpecSeedsARandomMix) {
  kvs::FaultSchedule schedule;
  ASSERT_TRUE(ParseFaultSpec("gray:seed=7", 20000.0, &schedule,
                             /*default_gray_replicas=*/3)
                  .ok());
  EXPECT_FALSE(schedule.faults().empty());
  // Same seed, same horizon: same schedule size (deterministic generator).
  kvs::FaultSchedule again;
  ASSERT_TRUE(ParseFaultSpec("gray:seed=7", 20000.0, &again, 3).ok());
  EXPECT_EQ(schedule.faults().size(), again.faults().size());
}

TEST(ParseFaultSpecTest, RejectsUnknownKindAndMalformedParams) {
  kvs::FaultSchedule schedule;
  const Status unknown = ParseFaultSpec("meteor:node=1", 100.0, &schedule);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.message().find("unknown fault kind"), std::string::npos);
  const Status malformed = ParseFaultSpec("slow:node", 100.0, &schedule);
  ASSERT_FALSE(malformed.ok());
  EXPECT_NE(malformed.message().find("bad fault parameter"),
            std::string::npos);
}

TEST(FaultOptionsTest, ValidateDryRunsSemicolonSeparatedSpecs) {
  FaultOptions faults;
  EXPECT_FALSE(faults.any());
  EXPECT_TRUE(faults.Validate().ok());
  faults.specs = "slow:node=0,factor=5;oneway:src=1,dst=2";
  EXPECT_TRUE(faults.any());
  EXPECT_TRUE(faults.Validate().ok());
  const auto built = faults.Build(500.0);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().faults().size(), 2u);
  faults.specs = "slow:node=0;bogus:x=1";
  EXPECT_FALSE(faults.Validate().ok());
  EXPECT_FALSE(faults.Build(500.0).ok());
}

TEST(ConfigTest, DefaultConfigValidatesAndFirstFailureWins) {
  EXPECT_TRUE(Config{}.Validate().ok());

  Config config;
  config.quorum.w = 9;  // invalid (W > N)
  config.scenario = "nope";  // also invalid, but quorum is checked first
  const Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message().find("nope"), std::string::npos);
}

TEST(ConfigTest, ValidateCoversEveryGroup) {
  Config config;
  config.scenario = "nope";
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.request_timeout_ms = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.anti_entropy_interval_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.hedge.quantile = 1.5;
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.retry.max_attempts = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.retry.backoff_base_ms = 50.0;
  config.retry.backoff_max_ms = 10.0;
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.faults.specs = "bogus";
  EXPECT_FALSE(config.Validate().ok());

  config = Config{};
  config.obs.trace_sample_every = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, BuildKvsConfigLowersEveryField) {
  Config config = Config{}
                      .WithSeed(99)
                      .WithScenario("ymmr")
                      .WithQuorum(5, 2, 3)
                      .WithFanout(ReadFanout::kQuorumOnly)
                      .WithTracing(true);
  config.read_repair = true;
  config.anti_entropy_interval_ms = 250.0;
  config.request_timeout_ms = 333.0;
  config.phi_detector = true;
  config.hedge.enabled = true;
  config.hedge.delay_ms = 4.0;
  config.retry.max_attempts = 3;
  config.retry.deadline_ms = 800.0;

  const auto built = config.BuildKvsConfig();
  ASSERT_TRUE(built.ok());
  const kvs::KvsConfig& kvs = built.value();
  EXPECT_EQ(kvs.quorum.n, 5);
  EXPECT_EQ(kvs.quorum.r, 2);
  EXPECT_EQ(kvs.quorum.w, 3);
  EXPECT_EQ(kvs.read_fanout, ReadFanout::kQuorumOnly);
  EXPECT_EQ(kvs.legs.name, Ymmr().name);
  EXPECT_TRUE(kvs.read_repair);
  EXPECT_DOUBLE_EQ(kvs.anti_entropy_interval_ms, 250.0);
  EXPECT_DOUBLE_EQ(kvs.request_timeout_ms, 333.0);
  EXPECT_TRUE(kvs.hedge.enabled);
  EXPECT_DOUBLE_EQ(kvs.hedge.delay_ms, 4.0);
  EXPECT_EQ(kvs.retry.max_attempts, 3);
  EXPECT_DOUBLE_EQ(kvs.retry.deadline_ms, 800.0);
  EXPECT_TRUE(kvs.obs.trace_enabled);
  EXPECT_EQ(kvs.seed, 99u);
  EXPECT_EQ(kvs.failure_detector,
            kvs::KvsConfig::FailureDetectorKind::kPhiAccrual);
}

TEST(ConfigTest, BuildExperimentLowersWorkloadAndSeed) {
  Config config = Config{}.WithSeed(17).WithWorkload(123, 40.0);
  config.workload.read_offsets_ms = {1.0, 9.0};
  const auto built = config.BuildExperiment();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().writes, 123);
  EXPECT_DOUBLE_EQ(built.value().write_spacing_ms, 40.0);
  EXPECT_EQ(built.value().read_offsets_ms.size(), 2u);
  EXPECT_EQ(built.value().seed, 17u);
  EXPECT_EQ(built.value().cluster.seed, 17u);
}

TEST(ConfigTest, BuildPropagatesValidationFailure) {
  Config config;
  config.scenario = "nope";
  EXPECT_FALSE(config.BuildKvsConfig().ok());
  EXPECT_FALSE(config.BuildExperiment().ok());
}

TEST(ConfigTest, BuildFaultScheduleUsesHorizonAndQuorumSize) {
  Config config = Config{}.WithWorkload(10, 100.0).WithFaults("slow:node=1");
  config.workload.read_offsets_ms = {5.0};
  config.request_timeout_ms = 100.0;
  const auto schedule = config.BuildFaultSchedule();
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule.value().faults().size(), 1u);
  // end defaults to the harness horizon: (writes+1)*spacing + max offset +
  // 3 timeouts = 11*100 + 5 + 300.
  EXPECT_DOUBLE_EQ(schedule.value().faults()[0].end, 1405.0);
  EXPECT_DOUBLE_EQ(config.HorizonMs(), 1405.0);
}

TEST(ConfigTest, WithSettersChain) {
  const Config config = Config{}
                            .WithSeed(5)
                            .WithScenario("wan")
                            .WithQuorum(5, 3, 3)
                            .WithFanout(ReadFanout::kQuorumOnly)
                            .WithWorkload(7, 11.0)
                            .WithFaults("flap:node=1,up=10,down=10")
                            .WithTracing(true);
  EXPECT_EQ(config.seed, 5u);
  EXPECT_EQ(config.scenario, "wan");
  EXPECT_EQ(config.quorum.n, 5);
  EXPECT_EQ(config.quorum.fanout, ReadFanout::kQuorumOnly);
  EXPECT_EQ(config.workload.writes, 7);
  EXPECT_TRUE(config.faults.any());
  EXPECT_TRUE(config.obs.trace_enabled);
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, WithControlLoopLowersSlaAndControllerIntoTheKvsConfig) {
  const auto sla = SlaTarget::Parse("p=0.99,t=10,p99<=15");
  ASSERT_TRUE(sla.ok());
  Config config = Config{}.WithControlLoop(sla.value());
  config.controller.epoch_ms = 750.0;
  EXPECT_TRUE(config.sla.enabled());
  EXPECT_TRUE(config.controller.enabled);
  ASSERT_TRUE(config.Validate().ok());
  const auto built = config.BuildKvsConfig();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().sla, sla.value());
  EXPECT_TRUE(built.value().controller.enabled);
  EXPECT_DOUBLE_EQ(built.value().controller.epoch_ms, 750.0);
}

TEST(ConfigTest, WithSlaAloneDeclaresWithoutEnablingTheController) {
  const Config config =
      Config{}.WithSla(SlaTarget::Parse("p=0.9,t=5,p99<=20").value());
  EXPECT_TRUE(config.sla.enabled());
  EXPECT_FALSE(config.controller.enabled);
  ASSERT_TRUE(config.Validate().ok());
  const auto built = config.BuildKvsConfig();
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built.value().sla.enabled());
  EXPECT_FALSE(built.value().controller.enabled);
}

TEST(ConfigTest, ControllerWithoutSlaFailsValidation) {
  Config config;
  config.controller.enabled = true;
  const Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("requires a declared sla"),
            std::string::npos);
  EXPECT_FALSE(config.BuildKvsConfig().ok());
  // Declaring the SLA (the WithControlLoop path) cures it.
  config.sla = SlaTarget::Parse("p=0.9,t=5,p99<=20").value();
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, InvalidSlaAndControllerOptionsAreCaughtByValidate) {
  Config config;
  config.sla.fresh_probability = 1.5;  // out of (0, 1)
  config.sla.read_p99_ms = 10.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.sla = SlaTarget::Parse("p=0.9,t=5,p99<=20").value();
  config.controller.enabled = true;
  config.controller.epoch_ms = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace pbs
