#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/table.h"

namespace pbs {
namespace {

TEST(TextTableTest, AlignsColumnsAndSeparatesHeader) {
  TextTable table({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "2"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Header, separator, two data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable table({"cfg", "x", "y"});
  table.AddRow("R=1 W=1", {1.23456, 7.0}, 2);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("1.23"), std::string::npos);
  EXPECT_NE(out.str().find("7.00"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique directory per test: ctest runs these binaries in parallel.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir =
        ::testing::TempDir() + "/pbs_csv_" + info->name();
    std::filesystem::remove_all(dir);
    path_ = dir + "/out.csv";
  }
  std::string path_;
};

TEST_F(CsvWriterTest, WritesRowsAndCreatesDirectories) {
  {
    CsvWriter csv(path_);
    ASSERT_TRUE(csv.ok());
    csv.WriteHeader({"a", "b"});
    csv.WriteRow({"1", "2"});
    csv.WriteRow("label", {3.5}, 1);
  }
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "label,3.5");
}

TEST_F(CsvWriterTest, EscapesCommasAndQuotes) {
  {
    CsvWriter csv(path_);
    ASSERT_TRUE(csv.ok());
    csv.WriteRow({"a,b", "say \"hi\""});
  }
  std::ifstream in(path_);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "\"a,b\",\"say \"\"hi\"\"\"");
}

TEST(EnsureDirectoryTest, CreatesNestedPath) {
  const std::string dir = ::testing::TempDir() + "/pbs_dir_test/x/y/z";
  std::filesystem::remove_all(::testing::TempDir() + "/pbs_dir_test");
  EXPECT_TRUE(EnsureDirectory(dir));
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  // Idempotent.
  EXPECT_TRUE(EnsureDirectory(dir));
}

}  // namespace
}  // namespace pbs
