// SmallVector and FlatMap64 — the hot-path containers behind the
// coordinator's pending-op tables and replica lists. Functional coverage
// here; the zero-allocation claims are asserted in kvs_alloc_test (which
// links the counting allocator hook).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_hash.h"
#include "util/rng.h"
#include "util/small_vector.h"

namespace pbs {
namespace {

// Instrumented element: counts live instances so every test can assert the
// container never leaks or double-destroys across spills, moves and erases.
struct Counted {
  static int live;
  int value = 0;

  Counted() { ++live; }
  explicit Counted(int v) : value(v) { ++live; }
  Counted(const Counted& other) : value(other.value) { ++live; }
  Counted(Counted&& other) noexcept : value(other.value) { ++live; }
  Counted& operator=(const Counted&) = default;
  Counted& operator=(Counted&&) = default;
  ~Counted() { --live; }
};
int Counted::live = 0;

TEST(SmallVectorTest, GrowsFromInlineToHeapPreservingContents) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_GE(v.capacity(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[i], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 19);
}

TEST(SmallVectorTest, EraseShiftsTailAndKeepsOrder) {
  SmallVector<int, 8> v{0, 1, 2, 3, 4};
  int* it = v.erase(v.begin() + 1);
  EXPECT_EQ(*it, 2);
  EXPECT_EQ(v, (SmallVector<int, 8>{0, 2, 3, 4}));
  v.erase(v.end() - 1);
  EXPECT_EQ(v, (SmallVector<int, 8>{0, 2, 3}));
}

TEST(SmallVectorTest, ResizeAndAssignMatchVectorSemantics) {
  SmallVector<int, 2> v;
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0);
  v.assign(size_t{3}, 7);
  EXPECT_EQ(v, (SmallVector<int, 2>{7, 7, 7}));
  const std::vector<int> source = {1, 2, 3, 4};
  v.assign(source.begin(), source.end());
  EXPECT_EQ(v, (SmallVector<int, 2>{1, 2, 3, 4}));
  v.resize(1);
  EXPECT_EQ(v, (SmallVector<int, 2>{1}));
}

TEST(SmallVectorTest, CopyAndMoveAcrossInlineAndHeapStates) {
  {
    SmallVector<Counted, 4> inline_v;
    for (int i = 0; i < 3; ++i) inline_v.emplace_back(i);
    SmallVector<Counted, 4> heap_v;
    for (int i = 0; i < 12; ++i) heap_v.emplace_back(i);

    SmallVector<Counted, 4> copy = inline_v;
    EXPECT_EQ(copy.size(), 3u);
    EXPECT_EQ(copy[2].value, 2);

    SmallVector<Counted, 4> moved_heap = std::move(heap_v);
    EXPECT_EQ(moved_heap.size(), 12u);
    EXPECT_EQ(moved_heap[11].value, 11);
    EXPECT_TRUE(heap_v.empty());  // heap buffer was stolen

    SmallVector<Counted, 4> moved_inline = std::move(inline_v);
    EXPECT_EQ(moved_inline.size(), 3u);

    copy = moved_heap;  // inline state overwritten by heap-sized copy
    EXPECT_EQ(copy.size(), 12u);
    EXPECT_EQ(copy[7].value, 7);
  }
  EXPECT_EQ(Counted::live, 0) << "element lifetime imbalance";
}

TEST(SmallVectorTest, StringsSurviveSpill) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back("value-" + std::to_string(i) +
                "-long-enough-to-defeat-sso-buffers");
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(v[i], "value-" + std::to_string(i) +
                        "-long-enough-to-defeat-sso-buffers");
  }
}

TEST(FlatMap64Test, PutFindEraseBasics) {
  FlatMap64 map;
  EXPECT_TRUE(map.empty());
  map.Put(42, 7);
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 7u);
  map.Put(42, 9);  // overwrite, no size change
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(42), 9u);
  EXPECT_EQ(map.Find(43), nullptr);
  EXPECT_TRUE(map.Erase(42));
  EXPECT_FALSE(map.Erase(42));
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap64Test, GrowsAcrossRehashKeepingEveryEntry) {
  FlatMap64 map;
  for (uint64_t k = 1; k <= 10000; ++k) {
    map.Put(k, static_cast<uint32_t>(k * 3));
  }
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 1; k <= 10000; ++k) {
    const uint32_t* v = map.Find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, static_cast<uint32_t>(k * 3));
  }
}

TEST(FlatMap64Test, BackwardShiftEraseAgainstReferenceModel) {
  // The op tables churn insert/erase forever with monotonically growing
  // request ids; backward-shift deletion must keep lookups exact. Fuzz
  // against unordered_map as the oracle.
  FlatMap64 map;
  std::unordered_map<uint64_t, uint32_t> reference;
  Rng rng(2024);
  uint64_t next_key = 1;
  std::vector<uint64_t> live_keys;
  for (int step = 0; step < 200000; ++step) {
    const bool insert = live_keys.empty() || rng.NextDouble() < 0.55;
    if (insert) {
      const uint64_t key = next_key++;
      const uint32_t value = static_cast<uint32_t>(rng.Next());
      map.Put(key, value);
      reference[key] = value;
      live_keys.push_back(key);
    } else {
      const size_t pick = rng.NextBounded(live_keys.size());
      const uint64_t key = live_keys[pick];
      live_keys[pick] = live_keys.back();
      live_keys.pop_back();
      EXPECT_TRUE(map.Erase(key));
      reference.erase(key);
    }
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    const uint32_t* found = map.Find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(*found, value) << key;
  }
  // Spot-check misses: recently deleted keys must be absent.
  for (uint64_t k = next_key; k < next_key + 100; ++k) {
    EXPECT_EQ(map.Find(k), nullptr);
  }
}

TEST(FlatMap64Test, ReserveAndClear) {
  FlatMap64 map;
  map.Reserve(5000);
  for (uint64_t k = 1; k <= 5000; ++k) map.Put(k, 1);
  EXPECT_EQ(map.size(), 5000u);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
  map.Put(1, 2);  // usable after Clear
  EXPECT_EQ(*map.Find(1), 2u);
}

}  // namespace
}  // namespace pbs
