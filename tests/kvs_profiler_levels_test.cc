#include <gtest/gtest.h>

#include "core/tvisibility.h"
#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/consistency_level.h"
#include "kvs/profiler.h"

namespace pbs {
namespace kvs {
namespace {

TEST(ConsistencyLevelTest, ResponseCounts) {
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kOne, 3).value(), 1);
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kTwo, 3).value(), 2);
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kThree, 3).value(), 3);
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kQuorum, 3).value(), 2);
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kQuorum, 5).value(), 3);
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kQuorum, 4).value(), 3);
  EXPECT_EQ(ResponsesFor(ConsistencyLevel::kAll, 5).value(), 5);
}

TEST(ConsistencyLevelTest, RejectsImpossibleLevels) {
  EXPECT_FALSE(ResponsesFor(ConsistencyLevel::kThree, 2).ok());
  EXPECT_FALSE(ResponsesFor(ConsistencyLevel::kTwo, 1).ok());
  EXPECT_FALSE(ResponsesFor(ConsistencyLevel::kOne, 0).ok());
}

TEST(ConsistencyLevelTest, QuorumQuorumIsStrict) {
  for (int n : {1, 2, 3, 4, 5, 7}) {
    EXPECT_TRUE(IsStrictCombination(n, ConsistencyLevel::kQuorum,
                                    ConsistencyLevel::kQuorum))
        << "n=" << n;
  }
}

TEST(ConsistencyLevelTest, CassandraDefaultIsPartial) {
  // Cassandra defaults to N=3, R=W=ONE (Section 2.3): partial.
  EXPECT_FALSE(IsStrictCombination(3, ConsistencyLevel::kOne,
                                   ConsistencyLevel::kOne));
  // ONE/ALL and ALL/ONE are strict.
  EXPECT_TRUE(IsStrictCombination(3, ConsistencyLevel::kOne,
                                  ConsistencyLevel::kAll));
  EXPECT_TRUE(IsStrictCombination(3, ConsistencyLevel::kAll,
                                  ConsistencyLevel::kOne));
}

TEST(ConsistencyLevelTest, MakeQuorumConfigBridgesToPbs) {
  const auto config = MakeQuorumConfig(3, ConsistencyLevel::kOne,
                                       ConsistencyLevel::kQuorum);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value(), (QuorumConfig{3, 1, 2}));
  EXPECT_EQ(ToString(ConsistencyLevel::kQuorum), "QUORUM");
}

// ---------------------------------------------------------------------------
// Leg profiler

WarsDistributions PointMassLegs() {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(4.0);
  legs.a = PointMass(3.0);
  legs.r = PointMass(2.0);
  legs.s = PointMass(1.0);
  return legs;
}

TEST(LegProfilerTest, EmptyProfilerFailsConversion) {
  LegProfiler profiler;
  EXPECT_FALSE(profiler.ToWarsDistributions("x").ok());
}

TEST(LegProfilerTest, RecordsEveryQuorumMessageLeg) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs();
  config.request_timeout_ms = 100.0;
  Cluster cluster(config);
  LegProfiler profiler;
  cluster.set_leg_profiler(&profiler);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(1, "v", nullptr);
  cluster.sim().Run();
  client.Read(1, nullptr);
  cluster.sim().Run();

  // One write: 3 W legs + 3 A legs; one read: 3 R legs + 3 S legs.
  EXPECT_EQ(profiler.count(LegProfiler::Leg::kWriteRequest), 3u);
  EXPECT_EQ(profiler.count(LegProfiler::Leg::kWriteAck), 3u);
  EXPECT_EQ(profiler.count(LegProfiler::Leg::kReadRequest), 3u);
  EXPECT_EQ(profiler.count(LegProfiler::Leg::kReadResponse), 3u);
  for (double w : profiler.samples(LegProfiler::Leg::kWriteRequest)) {
    EXPECT_DOUBLE_EQ(w, 4.0);
  }
  for (double s : profiler.samples(LegProfiler::Leg::kReadResponse)) {
    EXPECT_DOUBLE_EQ(s, 1.0);
  }

  const auto dists = profiler.ToWarsDistributions("profiled");
  ASSERT_TRUE(dists.ok());
  Rng rng(1);
  EXPECT_DOUBLE_EQ(dists.value().w->Sample(rng), 4.0);
  EXPECT_DOUBLE_EQ(dists.value().a->Sample(rng), 3.0);
}

TEST(LegProfilerTest, ProfiledPredictionMatchesGroundTruthModel) {
  // The measure-online / predict loop: run traffic through the cluster
  // with exponential legs, profile the legs, rebuild WARS distributions
  // from the profile, and check the resulting t-visibility prediction
  // matches a prediction from the true distributions.
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = MakeWars("exp", Exponential(0.1), Exponential(0.5));
  config.request_timeout_ms = 1000.0;
  config.seed = 5;
  Cluster cluster(config);
  LegProfiler profiler;
  cluster.set_leg_profiler(&profiler);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  for (int i = 0; i < 4000; ++i) {
    cluster.sim().At(i * 50.0, [&client]() {
      client.Write(1, "v", nullptr);
      client.Read(1, nullptr);
    });
  }
  cluster.sim().Run();
  ASSERT_GE(profiler.count(LegProfiler::Leg::kWriteRequest), 12000u);

  const auto profiled = profiler.ToWarsDistributions("profiled");
  ASSERT_TRUE(profiled.ok());
  const auto from_profile = EstimateTVisibility(
      {3, 1, 1}, MakeIidModel(profiled.value(), 3), 100000, /*seed=*/6);
  const auto from_truth = EstimateTVisibility(
      {3, 1, 1}, MakeIidModel(config.legs, 3), 100000, /*seed=*/7);
  for (double t : {0.0, 5.0, 20.0, 60.0}) {
    EXPECT_NEAR(from_profile.ProbConsistent(t), from_truth.ProbConsistent(t),
                0.02)
        << "t=" << t;
  }
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
