// Network partitions and message loss against the quorum protocol: unlike
// fail-stop crashes, a partitioned replica is alive and keeps serving the
// peers it can still reach (so gossip anti-entropy routes around the cut) —
// the CAP-flavored scenarios Section 6's failure discussion gestures at.

#include <optional>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/anti_entropy.h"
#include "kvs/client.h"
#include "kvs/cluster.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig BaseConfig(QuorumConfig quorum) {
  KvsConfig config;
  config.quorum = quorum;
  config.legs = FastLegs();
  config.request_timeout_ms = 100.0;
  config.seed = 515;
  return config;
}

TEST(PartitionTest, CoordinatorCutFromOneReplicaFailsStrictWrites) {
  Cluster cluster(BaseConfig({3, 1, 3}));
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetPartitioned(coordinator, 1, true);

  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> result;
  client.Write(1, "x", [&](const WriteResult& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);  // W=3 unreachable across the cut
  // The reachable replicas still applied it (partial write).
  EXPECT_TRUE(cluster.replica(0).storage().Get(1).has_value());
  EXPECT_FALSE(cluster.replica(1).storage().Get(1).has_value());
}

TEST(PartitionTest, PartialQuorumRidesOutTheCut) {
  Cluster cluster(BaseConfig({3, 1, 1}));
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetPartitioned(coordinator, 1, true);
  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> write;
  client.Write(1, "x", [&](const WriteResult& r) { write = r; });
  cluster.sim().Run();
  EXPECT_TRUE(write->ok);  // W=1: availability is the partial quorum's point
  std::optional<ReadResult> read;
  client.Read(1, [&](const ReadResult& r) { read = r; });
  cluster.sim().Run();
  EXPECT_TRUE(read->ok);
  EXPECT_EQ(read->value->value, "x");
}

TEST(PartitionTest, GossipRoutesAroundACoordinatorCut) {
  // Replica 1 is cut from the coordinator but not from its peers: quorum
  // replication cannot reach it, gossip anti-entropy can.
  KvsConfig config = BaseConfig({3, 1, 1});
  config.anti_entropy_interval_ms = 25.0;
  Cluster cluster(config);
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetPartitioned(coordinator, 1, true);

  ClientSession client(&cluster, coordinator, 1);
  client.Write(1, "routed", nullptr);
  cluster.StartAntiEntropy();
  cluster.sim().RunUntil(500.0);
  const auto stored = cluster.replica(1).storage().Get(1);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->value, "routed");
}

TEST(PartitionTest, HealRestoresDirectReplication) {
  Cluster cluster(BaseConfig({3, 1, 3}));
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetPartitioned(coordinator, 1, true);
  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> during;
  client.Write(1, "a", [&](const WriteResult& r) { during = r; });
  cluster.sim().Run();
  EXPECT_FALSE(during->ok);

  cluster.network().SetPartitioned(coordinator, 1, false);
  std::optional<WriteResult> after;
  client.Write(1, "b", [&](const WriteResult& r) { after = r; });
  cluster.sim().Run();
  EXPECT_TRUE(after->ok);
  EXPECT_EQ(cluster.replica(1).storage().Get(1)->value, "b");
}

TEST(PartitionTest, AsymmetricPartitionLosesResponsesNotRequests) {
  // One-way cut replica 1 -> coordinator: requests still reach replica 1
  // (it applies writes), but its acks/responses vanish — so a strict W=3
  // write fails at the coordinator even though all three replicas stored
  // the value. The dual of a clean partition, and invisible to two-way
  // reachability checks.
  Cluster cluster(BaseConfig({3, 1, 3}));
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetOneWayPartitioned(1, coordinator, true);

  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> write;
  client.Write(1, "x", [&](const WriteResult& r) { write = r; });
  cluster.sim().Run();
  ASSERT_TRUE(write.has_value());
  EXPECT_FALSE(write->ok);  // ack from replica 1 never arrives
  for (int i = 0; i < 3; ++i) {
    const auto stored = cluster.replica(i).storage().Get(1);
    ASSERT_TRUE(stored.has_value()) << "replica " << i;
    EXPECT_EQ(stored->value, "x");  // the request direction was open
  }

  // R=1 reads survive (replicas 0 and 2 answer); healing restores W=3.
  std::optional<ReadResult> read;
  client.Read(1, [&](const ReadResult& r) { read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok);
  EXPECT_EQ(read->value->value, "x");

  cluster.network().SetOneWayPartitioned(1, coordinator, false);
  std::optional<WriteResult> healed;
  client.Write(1, "y", [&](const WriteResult& r) { healed = r; });
  cluster.sim().Run();
  ASSERT_TRUE(healed.has_value());
  EXPECT_TRUE(healed->ok);
}

TEST(PartitionTest, DuplicateDeliveryIsHarmlessToQuorumCounting) {
  // Every replica link delivers each message twice. Duplicate write
  // applications are idempotent (same version) and duplicate acks /
  // responses are suppressed at the coordinator, so strict quorums behave
  // exactly as on a clean network.
  Cluster cluster(BaseConfig({3, 3, 3}));
  const NodeId coordinator = cluster.coordinator(0).id();
  FaultProfile dup;
  dup.duplicate_probability = 1.0;
  dup.duplicate_lag_ms = 0.0;  // copy races the original into the quorum
  for (int i = 0; i < 3; ++i) {
    cluster.network().SetLinkFault(coordinator, i, dup);
    cluster.network().SetLinkFault(i, coordinator, dup);
  }

  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> write;
  client.Write(1, "x", [&](const WriteResult& r) { write = r; });
  cluster.sim().Run();
  ASSERT_TRUE(write.has_value());
  EXPECT_TRUE(write->ok);

  std::optional<ReadResult> read;
  client.Read(1, [&](const ReadResult& r) { read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok);
  EXPECT_EQ(read->value->value, "x");
  EXPECT_GT(cluster.network().messages_duplicated(), 0);
  EXPECT_GT(cluster.metrics().duplicate_acks_suppressed +
                cluster.metrics().duplicate_responses_suppressed,
            0);
  EXPECT_EQ(client.monotonic_violations(), 0);
}

TEST(MessageLossTest, LossyNetworkDegradesIntoTimeoutsNotCorruption) {
  KvsConfig config = BaseConfig({3, 2, 2});
  Cluster cluster(config);
  cluster.network().set_drop_probability(0.4);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);

  int ok_count = 0;
  int fail_count = 0;
  for (int i = 0; i < 200; ++i) {
    cluster.sim().At(i * 200.0, [&]() {
      client.Write(i, "v", [&](const WriteResult& r) {
        r.ok ? ++ok_count : ++fail_count;
      });
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(ok_count + fail_count, 200);
  // With 40% loss, P(write leg + ack leg both survive) = .36 per replica;
  // needing 2 of 3 succeeds sometimes and fails sometimes.
  EXPECT_GT(ok_count, 10);
  EXPECT_GT(fail_count, 10);
  // Committed writes are real: their values are durably stored on at least
  // W replicas.
  // (Spot-check: every ok write left at least one replica with the value.)
}

TEST(MessageLossTest, HintedHandoffRetriesThroughLoss) {
  KvsConfig config = BaseConfig({3, 1, 1});
  config.hinted_handoff = true;
  config.hinted_handoff_backoff_base_ms = 20.0;
  config.hinted_handoff_backoff_max_ms = 40.0;
  config.hinted_handoff_max_retries = 200;
  config.request_timeout_ms = 50.0;
  Cluster cluster(config);
  cluster.network().set_drop_probability(0.5);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(1, "sticky", nullptr);
  cluster.sim().RunUntil(30000.0);
  // Despite 50% loss, retries eventually land the write on every replica.
  for (int i = 0; i < 3; ++i) {
    const auto stored = cluster.replica(i).storage().Get(1);
    ASSERT_TRUE(stored.has_value()) << "replica " << i;
    EXPECT_EQ(stored->value, "sticky");
  }
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
