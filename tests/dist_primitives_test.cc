#include "dist/primitives.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace pbs {
namespace {

struct DistCase {
  std::string name;
  DistributionPtr dist;
  double expected_mean;  // NaN if infinite / untested
};

std::vector<DistCase> AllCases() {
  return {
      {"exp_fast", Exponential(2.0), 0.5},
      {"exp_slow", Exponential(0.1), 10.0},
      {"pareto_heavy", Pareto(1.0, 3.0), 1.5},
      {"pareto_light", Pareto(0.235, 10.0), 0.235 * 10.0 / 9.0},
      {"uniform", Uniform(2.0, 6.0), 4.0},
      {"trunc_normal", TruncatedNormal(5.0, 1.0),
       std::numeric_limits<double>::quiet_NaN()},
      {"lognormal", LogNormal(0.0, 0.5), std::exp(0.125)},
      {"weibull", Weibull(2.0, 3.0), 3.0 * std::tgamma(1.5)},
  };
}

class DistributionPropertyTest
    : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionPropertyTest, QuantileInvertsCdf) {
  const auto& dist = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double x = dist.Quantile(p);
    EXPECT_NEAR(dist.Cdf(x), p, 1e-6)
        << GetParam().name << " at p=" << p << " (x=" << x << ")";
  }
}

TEST_P(DistributionPropertyTest, CdfIsMonotoneNonDecreasing) {
  const auto& dist = *GetParam().dist;
  double prev = -1.0;
  for (double x = 0.0; x <= 50.0; x += 0.25) {
    const double c = dist.Cdf(x);
    EXPECT_GE(c, prev) << GetParam().name << " at x=" << x;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionPropertyTest, SamplesMatchAnalyticMean) {
  if (std::isnan(GetParam().expected_mean)) GTEST_SKIP();
  const auto& dist = *GetParam().dist;
  Rng rng(2024);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(dist.Sample(rng));
  const double tolerance =
      0.02 * GetParam().expected_mean + 4.0 * stats.stddev() / 447.0;
  EXPECT_NEAR(stats.mean(), GetParam().expected_mean, tolerance)
      << GetParam().name;
  EXPECT_NEAR(dist.Mean(), GetParam().expected_mean, 1e-9);
}

TEST_P(DistributionPropertyTest, SamplesAreNonNegative) {
  const auto& dist = *GetParam().dist;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(dist.Sample(rng), 0.0) << GetParam().name;
  }
}

TEST_P(DistributionPropertyTest, SampledEcdfMatchesCdf) {
  const auto& dist = *GetParam().dist;
  Rng rng(77);
  std::vector<double> samples;
  samples.reserve(100000);
  for (int i = 0; i < 100000; ++i) samples.push_back(dist.Sample(rng));
  std::sort(samples.begin(), samples.end());
  for (double p : {0.1, 0.5, 0.9}) {
    const double x = dist.Quantile(p);
    EXPECT_NEAR(EcdfSorted(samples, x), p, 0.01) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionPropertyTest,
    ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

TEST(ExponentialTest, CdfClosedForm) {
  ExponentialDistribution dist(0.5);
  EXPECT_DOUBLE_EQ(dist.Cdf(0.0), 0.0);
  EXPECT_NEAR(dist.Cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(dist.Mean(), 2.0);
}

TEST(ParetoTest, SupportStartsAtXm) {
  ParetoDistribution dist(3.0, 2.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(2.9), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(3.0), 0.0);
  EXPECT_GT(dist.Cdf(3.1), 0.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.0), 3.0);
}

TEST(ParetoTest, HeavyTailHasInfiniteMean) {
  ParetoDistribution dist(1.0, 0.9);
  EXPECT_TRUE(std::isinf(dist.Mean()));
}

TEST(TruncatedNormalTest, NoMassBelowZero) {
  TruncatedNormalDistribution dist(0.5, 2.0);  // substantial truncation
  EXPECT_DOUBLE_EQ(dist.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(-1.0), 0.0);
  EXPECT_GE(dist.Quantile(0.001), 0.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(dist.Sample(rng), 0.0);
}

TEST(TruncatedNormalTest, MeanExceedsMuDueToTruncation) {
  TruncatedNormalDistribution dist(1.0, 2.0);
  EXPECT_GT(dist.Mean(), 1.0);
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), dist.Mean(), 0.02);
}

TEST(PointMassTest, DegenerateEverything) {
  PointMassDistribution dist(4.2);
  EXPECT_DOUBLE_EQ(dist.Cdf(4.1), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(4.2), 1.0);
  EXPECT_DOUBLE_EQ(dist.Quantile(0.3), 4.2);
  EXPECT_DOUBLE_EQ(dist.Mean(), 4.2);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(dist.Sample(rng), 4.2);
}

TEST(ShiftedTest, AddsOffsetEverywhere) {
  auto base = Exponential(1.0);
  ShiftedDistribution dist(base, 75.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(74.9), 0.0);
  EXPECT_NEAR(dist.Quantile(0.5), base->Quantile(0.5) + 75.0, 1e-12);
  EXPECT_NEAR(dist.Mean(), 76.0, 1e-12);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(dist.Sample(rng), 75.0);
}

TEST(ScaledTest, MultipliesEverything) {
  auto base = Uniform(1.0, 3.0);
  ScaledDistribution dist(base, 10.0);
  EXPECT_NEAR(dist.Quantile(0.5), 20.0, 1e-12);
  EXPECT_NEAR(dist.Mean(), 20.0, 1e-12);
  EXPECT_NEAR(dist.Cdf(15.0), 0.25, 1e-12);
}

TEST(DescribeTest, MentionsParameters) {
  EXPECT_NE(Exponential(0.183)->Describe().find("0.183"),
            std::string::npos);
  EXPECT_NE(Pareto(1.05, 1.51)->Describe().find("1.05"), std::string::npos);
}

}  // namespace
}  // namespace pbs
