// Pluggable predictor backends (DESIGN.md §12): the wire names, the
// Status-typed PbsPredictor::Create factory and its rejections, engine
// interchangeability behind the PredictionEngine surface, kAuto's
// resolve-and-fall-back behavior, and the backend-dispatched
// MixedQuorumPredictor the consistency controller builds per epoch.

#include "core/backend.h"

#include <string>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/closed_form.h"
#include "core/predictor.h"
#include "core/wars.h"
#include "dist/production.h"
#include "util/status.h"

namespace pbs {
namespace {

// ------------------------------------------------------------- wire names

TEST(PredictorBackendTest, NamesRoundTripThroughParse) {
  for (const PredictorBackend backend :
       {PredictorBackend::kMonteCarlo, PredictorBackend::kAnalytic,
        PredictorBackend::kAuto}) {
    const StatusOr<PredictorBackend> parsed =
        ParsePredictorBackend(PredictorBackendName(backend));
    ASSERT_TRUE(parsed.ok()) << PredictorBackendName(backend);
    EXPECT_EQ(parsed.value(), backend);
  }
  EXPECT_STREQ(PredictorBackendName(PredictorBackend::kMonteCarlo), "mc");
  EXPECT_STREQ(PredictorBackendName(PredictorBackend::kAnalytic), "analytic");
  EXPECT_STREQ(PredictorBackendName(PredictorBackend::kAuto), "auto");
}

TEST(PredictorBackendTest, ParseAcceptsAliasesAndRejectsUnknownNames) {
  // "montecarlo" / "monte-carlo" are accepted spellings of "mc".
  for (const char* alias : {"montecarlo", "monte-carlo"}) {
    const StatusOr<PredictorBackend> parsed = ParsePredictorBackend(alias);
    ASSERT_TRUE(parsed.ok()) << alias;
    EXPECT_EQ(parsed.value(), PredictorBackend::kMonteCarlo);
  }
  EXPECT_FALSE(ParsePredictorBackend("").ok());
  EXPECT_FALSE(ParsePredictorBackend("turbo").ok());
  EXPECT_FALSE(ParsePredictorBackend("MC").ok());
  EXPECT_EQ(ParsePredictorBackend("turbo").status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- Create factory

TEST(PbsPredictorCreateTest, RejectsInvalidInputs) {
  const auto model = MakeIidModel(LnkdDisk(), 3);

  // Quorum shape.
  EXPECT_FALSE(PbsPredictor::Create({3, 4, 1}, model).ok());
  EXPECT_FALSE(PbsPredictor::Create({0, 1, 1}, model).ok());
  // Null / size-mismatched model.
  EXPECT_FALSE(PbsPredictor::Create({3, 1, 1}, nullptr).ok());
  EXPECT_FALSE(
      PbsPredictor::Create({5, 1, 1}, MakeIidModel(LnkdDisk(), 3)).ok());
  // Trial budget and grid shape.
  PredictorOptions options;
  options.trials = 0;
  EXPECT_FALSE(PbsPredictor::Create({3, 1, 1}, model, options).ok());
  options = {};
  options.backend = PredictorBackend::kAnalytic;
  options.grid.bins = 0;
  EXPECT_FALSE(PbsPredictor::Create({3, 1, 1}, model, options).ok());
  options.grid = {};
  options.grid.max_ms = -1.0;
  EXPECT_FALSE(PbsPredictor::Create({3, 1, 1}, model, options).ok());
}

TEST(PbsPredictorCreateTest, AnalyticDemandsAnIidModel) {
  PredictorOptions options;
  options.backend = PredictorBackend::kAnalytic;
  const auto wan = MakeWanModel(WanLocalBase(), 5);
  const auto created = PbsPredictor::Create({5, 2, 2}, wan, options);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(PbsPredictorCreateTest, LegacyConstructorDelegatesBitwise) {
  // The transitional constructor routes through Create: every query must
  // be bitwise identical between the two spellings.
  PredictorOptions options;
  options.trials = 20000;
  options.seed = 99;
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const auto created = PbsPredictor::Create({3, 1, 2}, model, options);
  ASSERT_TRUE(created.ok());
  const PbsPredictor& a = created.value();
  const PbsPredictor b({3, 1, 2}, model, options);
  EXPECT_EQ(a.ProbConsistent(1.0), b.ProbConsistent(1.0));
  EXPECT_EQ(a.TimeForConsistency(0.99), b.TimeForConsistency(0.99));
  EXPECT_EQ(a.ReadLatencyPercentile(99.0), b.ReadLatencyPercentile(99.0));
  EXPECT_EQ(a.WriteLatencyPercentile(99.0), b.WriteLatencyPercentile(99.0));
  EXPECT_EQ(a.KStaleness(1), b.KStaleness(1));
  EXPECT_EQ(a.backend(), b.backend());
}

// --------------------------------------------- engine interchangeability

TEST(PredictionEngineTest, AnalyticAgreesWithMonteCarlo) {
  // The DESIGN.md §12 contract in miniature (bench/analytic_vs_mc runs the
  // full sweep): same query surface, answers within the documented
  // tolerances.
  const auto model = MakeIidModel(LnkdDisk(), 3);
  PredictorOptions mc_options;
  mc_options.trials = 200000;
  mc_options.seed = 7;
  const auto mc = PbsPredictor::Create({3, 1, 1}, model, mc_options);
  ASSERT_TRUE(mc.ok());
  EXPECT_EQ(mc.value().backend(), PredictorBackend::kMonteCarlo);

  PredictorOptions an_options;
  an_options.backend = PredictorBackend::kAnalytic;
  const auto an = PbsPredictor::Create({3, 1, 1}, model, an_options);
  ASSERT_TRUE(an.ok());
  EXPECT_EQ(an.value().backend(), PredictorBackend::kAnalytic);
  EXPECT_TRUE(an.value().backend_note().empty());

  for (double pct : {50.0, 99.0, 99.9}) {
    const double mc_read = mc.value().ReadLatencyPercentile(pct);
    EXPECT_NEAR(an.value().ReadLatencyPercentile(pct), mc_read,
                0.02 * mc_read + 0.15)
        << "read pct=" << pct;
    const double mc_write = mc.value().WriteLatencyPercentile(pct);
    EXPECT_NEAR(an.value().WriteLatencyPercentile(pct), mc_write,
                0.02 * mc_write + 0.15)
        << "write pct=" << pct;
  }
  for (double t : {0.0, 5.0, 20.0}) {
    EXPECT_NEAR(an.value().ProbConsistent(t), mc.value().ProbConsistent(t),
                0.05)
        << "t=" << t;
  }
  // Propagation CDF shape: size N+1, monotone, terminal 1.
  const auto pw = an.value().engine().WritePropagationCdfAt(5.0);
  ASSERT_EQ(pw.size(), 4u);
  for (size_t c = 1; c < pw.size(); ++c) EXPECT_GE(pw[c] + 1e-12, pw[c - 1]);
  EXPECT_DOUBLE_EQ(pw.back(), 1.0);
}

TEST(PredictionEngineTest, ClosedFormQueriesAreBackendIndependent) {
  // k-staleness and monotonic reads lower through core/closed_form.h for
  // every backend: bitwise identical, no engine involved.
  const auto model = MakeIidModel(LnkdSsd(), 3);
  PredictorOptions mc_options;
  mc_options.trials = 5000;
  PredictorOptions an_options;
  an_options.backend = PredictorBackend::kAnalytic;
  const auto mc = PbsPredictor::Create({3, 1, 1}, model, mc_options);
  const auto an = PbsPredictor::Create({3, 1, 1}, model, an_options);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(an.ok());
  for (int k : {1, 2, 3}) {
    EXPECT_EQ(mc.value().KStaleness(k), an.value().KStaleness(k));
    EXPECT_EQ(mc.value().KFreshness(k), an.value().KFreshness(k));
    EXPECT_EQ(an.value().KStaleness(k),
              KStalenessProbability({3, 1, 1}, k));
  }
  EXPECT_EQ(mc.value().MonotonicReadsViolation(2.0, 1.0),
            an.value().MonotonicReadsViolation(2.0, 1.0));
}

// ------------------------------------------------------------------ kAuto

TEST(AutoBackendTest, KeepsAnalyticForIidModels) {
  PredictorOptions options;
  options.backend = PredictorBackend::kAuto;
  options.trials = 20000;
  const auto created =
      PbsPredictor::Create({3, 1, 1}, MakeIidModel(LnkdDisk(), 3), options);
  ASSERT_TRUE(created.ok());
  // LNKD-DISK passes the spot-check (bench/analytic_vs_mc pins the margin),
  // so kAuto resolves to the analytic engine with nothing to report.
  EXPECT_EQ(created.value().backend(), PredictorBackend::kAnalytic);
  EXPECT_TRUE(created.value().backend_note().empty());
}

TEST(AutoBackendTest, FallsBackToMonteCarloForNonIidModels) {
  PredictorOptions options;
  options.backend = PredictorBackend::kAuto;
  options.trials = 20000;
  const auto created = PbsPredictor::Create(
      {5, 2, 2}, MakeWanModel(WanLocalBase(), 5), options);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().backend(), PredictorBackend::kMonteCarlo);
  EXPECT_FALSE(created.value().backend_note().empty());
}

// ------------------------------------------------- MixedQuorumPredictor

TEST(MixedQuorumPredictorTest, MonteCarloModeIsExactlyTheFreeFunction) {
  // The controller's per-epoch predictor in kMonteCarlo mode must be a
  // pass-through to EvaluateMixedQuorum — this is what keeps historical
  // controller decision streams and digests bitwise unchanged.
  SlaTarget sla;
  sla.fresh_probability = 0.9;
  sla.staleness_bound_ms = 10.0;
  sla.read_p99_ms = 50.0;
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const MixedQuorum quorum{3, 1, 2, 2, 0.25};

  MixedQuorumPredictor::Options options;
  options.trials = 2000;
  options.read_fanout = ReadFanout::kQuorumOnly;
  options.exec.threads = 1;
  const MixedQuorumPredictor predictor(sla, model, quorum, options);
  EXPECT_EQ(predictor.backend(), PredictorBackend::kMonteCarlo);

  const MixedQuorumEvaluation via_predictor = predictor.Evaluate(quorum, 31);
  const MixedQuorumEvaluation direct = EvaluateMixedQuorum(
      quorum, sla, model, options.trials, 31, options.read_fanout,
      options.exec);
  EXPECT_EQ(via_predictor.fresh_probability, direct.fresh_probability);
  EXPECT_EQ(via_predictor.read_p99_ms, direct.read_p99_ms);
  EXPECT_EQ(via_predictor.write_p99_ms, direct.write_p99_ms);
  EXPECT_EQ(via_predictor.feasible, direct.feasible);
}

TEST(MixedQuorumPredictorTest, AnalyticModeIsSeedFree) {
  SlaTarget sla;
  sla.fresh_probability = 0.9;
  sla.staleness_bound_ms = 10.0;
  sla.read_p99_ms = 50.0;
  MixedQuorumPredictor::Options options;
  options.backend = PredictorBackend::kAnalytic;
  const MixedQuorum quorum{3, 1, 2, 2, 0.5};
  const MixedQuorumPredictor predictor(sla, MakeIidModel(LnkdDisk(), 3),
                                       quorum, options);
  ASSERT_EQ(predictor.backend(), PredictorBackend::kAnalytic);
  EXPECT_TRUE(predictor.note().empty());
  // No RNG: the seed is ignored, evaluations are bitwise repeatable.
  const MixedQuorumEvaluation a = predictor.Evaluate(quorum, 1);
  const MixedQuorumEvaluation b = predictor.Evaluate(quorum, 999);
  EXPECT_EQ(a.fresh_probability, b.fresh_probability);
  EXPECT_EQ(a.read_p99_ms, b.read_p99_ms);
  EXPECT_EQ(a.write_p99_ms, b.write_p99_ms);
  EXPECT_EQ(a.feasible, b.feasible);
}

TEST(MixedQuorumPredictorTest, AnalyticFallsBackInsteadOfFailing) {
  // The controller cannot surface a Status mid-epoch, so kAnalytic against
  // a non-IID model degrades to Monte Carlo and says why.
  SlaTarget sla;
  sla.fresh_probability = 0.9;
  sla.staleness_bound_ms = 10.0;
  sla.read_p99_ms = 500.0;
  MixedQuorumPredictor::Options options;
  options.backend = PredictorBackend::kAnalytic;
  options.trials = 500;
  const MixedQuorum quorum{5, 1, 2, 2, 0.0};
  const MixedQuorumPredictor predictor(
      sla, MakeWanModel(WanLocalBase(), 5), quorum, options);
  EXPECT_EQ(predictor.backend(), PredictorBackend::kMonteCarlo);
  EXPECT_FALSE(predictor.note().empty());
  const MixedQuorumEvaluation eval = predictor.Evaluate(quorum, 3);
  EXPECT_GT(eval.fresh_probability, 0.0);
}

}  // namespace
}  // namespace pbs
