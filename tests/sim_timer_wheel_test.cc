// The timer wheel's contract: O(1) cancellable timers that, when they do
// fire, fire at exactly the (time, sequence) position a plain Schedule()
// would have given them — the property that made the node/client/failure-
// detector conversion to ScheduleTimer bitwise behavior-preserving.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/timer_wheel.h"
#include "util/rng.h"

namespace pbs {
namespace {

// Drains every staged-ready timer, appending fire times to `out`.
void DrainReady(TimerWheel* wheel, std::vector<double>* out) {
  double time;
  uint64_t sequence;
  while (wheel->PeekReady(&time, &sequence)) {
    EventCallback cb = wheel->PopReady();
    cb();
    out->push_back(time);
  }
}

// Bounded drain: pops only timers due at or before `horizon`. PeekReady
// advances the wheel until *something* stages (its contract — the wheel
// must be able to supply the simulator's next event), so an unbounded
// drain would run every resident timer, not just the expired ones.
void DrainReadyUpTo(TimerWheel* wheel, double horizon,
                    std::vector<double>* out) {
  double time;
  uint64_t sequence;
  while (wheel->PeekReady(&time, &sequence) && time <= horizon) {
    EventCallback cb = wheel->PopReady();
    cb();
    out->push_back(time);
  }
}

TEST(TimerWheelTest, FiresInTimeOrderAcrossLevels) {
  // Spread across all hierarchy levels (sub-tick to thousands of ticks) so
  // the cascade path runs, not just level 0.
  TimerWheel wheel(/*resolution_ms=*/0.5);
  std::vector<double> fired;
  std::vector<double> times = {0.1,  0.6,   3.0,     40.0,   41.0,
                               700.0, 2500.0, 30000.0, 31000.0};
  Rng rng(7);
  std::vector<double> shuffled = times;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  uint64_t seq = 0;
  for (double t : shuffled) {
    wheel.Add(t, seq++, [t, &fired]() { fired.push_back(t); });
  }
  EXPECT_EQ(wheel.pending(), times.size());

  wheel.ExpireUpTo(std::numeric_limits<double>::infinity());
  std::vector<double> order;
  DrainReady(&wheel, &order);
  std::sort(times.begin(), times.end());
  EXPECT_EQ(order, times);
  EXPECT_EQ(fired, times);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, SameTimeTiesFireInSequenceOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  // Insert same-time timers with out-of-order sequence numbers; FIFO order
  // must follow the sequence, not insertion order.
  wheel.Add(5.0, /*sequence=*/30, [&]() { fired.push_back(2); });
  wheel.Add(5.0, /*sequence=*/10, [&]() { fired.push_back(0); });
  wheel.Add(5.0, /*sequence=*/20, [&]() { fired.push_back(1); });
  wheel.ExpireUpTo(10.0);
  std::vector<double> times;
  DrainReady(&wheel, &times);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(TimerWheelTest, ExpireIsPartialAndResumable) {
  TimerWheel wheel(1.0);
  std::vector<double> fired;
  for (double t : {2.0, 4.0, 8.0, 16.0, 150.0}) {
    wheel.Add(t, static_cast<uint64_t>(t), [t, &fired]() {
      fired.push_back(t);
    });
  }
  wheel.ExpireUpTo(8.0);
  std::vector<double> times;
  DrainReadyUpTo(&wheel, 8.0, &times);
  EXPECT_EQ(fired, (std::vector<double>{2.0, 4.0, 8.0}));
  EXPECT_EQ(wheel.pending(), 2u);
  wheel.ExpireUpTo(1000.0);
  DrainReadyUpTo(&wheel, 1000.0, &times);
  EXPECT_EQ(fired, (std::vector<double>{2.0, 4.0, 8.0, 16.0, 150.0}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelPreventsFiringAndReleasesCaptures) {
  TimerWheel wheel;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  bool fired = false;
  TimerHandle handle = wheel.Add(10.0, 1, [token, &fired]() { fired = true; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // the pending callback keeps it alive

  EXPECT_TRUE(wheel.Cancel(handle));
  EXPECT_TRUE(watch.expired());  // cancellation drops captures immediately
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.Cancel(handle)) << "double-cancel must be a no-op";

  wheel.ExpireUpTo(std::numeric_limits<double>::infinity());
  double time;
  uint64_t sequence;
  EXPECT_FALSE(wheel.PeekReady(&time, &sequence));
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, StaleHandleCannotCancelARecycledSlot) {
  TimerWheel wheel;
  TimerHandle first = wheel.Add(1.0, 1, []() {});
  ASSERT_TRUE(wheel.Cancel(first));  // frees the slot
  bool second_fired = false;
  TimerHandle second = wheel.Add(2.0, 2, [&]() { second_fired = true; });
  // The recycled slot has a new generation; the stale handle must not reach
  // the new timer.
  EXPECT_EQ(first.index, second.index);
  EXPECT_FALSE(wheel.Cancel(first));
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.ExpireUpTo(5.0);
  std::vector<double> times;
  DrainReady(&wheel, &times);
  EXPECT_TRUE(second_fired);
}

TEST(TimerWheelTest, CancelAfterFireReturnsFalse) {
  TimerWheel wheel;
  TimerHandle handle = wheel.Add(1.0, 1, []() {});
  wheel.ExpireUpTo(2.0);
  std::vector<double> times;
  DrainReady(&wheel, &times);
  EXPECT_FALSE(wheel.Cancel(handle));
}

TEST(TimerWheelTest, RandomizedAgainstSortedReference) {
  // 20k timers at random times with random cancellations; surviving timers
  // must drain in exact (time, sequence) order.
  TimerWheel wheel(0.5);
  Rng rng(99);
  struct Expected {
    double time;
    uint64_t sequence;
  };
  std::vector<Expected> expected;
  std::vector<TimerHandle> handles;
  std::vector<double> times_by_id;
  for (uint64_t s = 0; s < 20000; ++s) {
    const double t = rng.NextDouble() * 5e4;
    handles.push_back(wheel.Add(t, s, []() {}));
    times_by_id.push_back(t);
  }
  std::vector<bool> cancelled(handles.size(), false);
  for (size_t i = 0; i < handles.size(); ++i) {
    if (rng.NextDouble() < 0.6) {  // most timers are cancelled, like prod
      EXPECT_TRUE(wheel.Cancel(handles[i]));
      cancelled[i] = true;
    } else {
      expected.push_back({times_by_id[i], i});
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const Expected& a, const Expected& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.sequence < b.sequence;
            });
  EXPECT_EQ(wheel.pending(), expected.size());

  wheel.ExpireUpTo(std::numeric_limits<double>::infinity());
  size_t i = 0;
  double time;
  uint64_t sequence;
  while (wheel.PeekReady(&time, &sequence)) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(time, expected[i].time);
    EXPECT_EQ(sequence, expected[i].sequence);
    wheel.PopReady();
    ++i;
  }
  EXPECT_EQ(i, expected.size());
}

TEST(SimulatorTimerTest, ScheduleTimerIsBitwiseEquivalentToSchedule) {
  // The conversion guarantee, end to end: an interleaved Schedule /
  // ScheduleTimer program produces exactly the firing order of the same
  // program written with Schedule only — including same-time FIFO ties.
  const auto run = [](bool use_wheel) {
    Simulator sim;
    std::vector<std::string> order;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      // Quantized delays so cross-surface ties actually happen.
      const double delay = 1.0 * rng.NextBounded(20);
      const std::string label = std::to_string(i);
      if (use_wheel && i % 2 == 0) {
        (void)sim.ScheduleTimer(delay, [label, &order]() {
          order.push_back(label);
        });
      } else {
        sim.Schedule(delay, [label, &order]() { order.push_back(label); });
      }
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(SimulatorTimerTest, CancelledTimerNeverFiresNotEvenAsNoop) {
  Simulator sim;
  int fired = 0;
  TimerHandle handle = sim.ScheduleTimer(5.0, [&]() { ++fired; });
  sim.Schedule(1.0, [&]() { EXPECT_TRUE(sim.CancelTimer(handle)); });
  const size_t events = sim.Run();
  EXPECT_EQ(fired, 0);
  // Only the cancelling event fired; the dead timer did not consume an
  // event slot (the old Schedule-based no-op pattern would have).
  EXPECT_EQ(events, 1u);
  EXPECT_EQ(sim.pending_timers(), 0u);
}

}  // namespace
}  // namespace pbs
