#include "kvs/version.h"

#include <gtest/gtest.h>

namespace pbs {
namespace kvs {
namespace {

TEST(VectorClockTest, FreshClocksAreEqual) {
  VectorClock a;
  VectorClock b;
  EXPECT_EQ(a.Compare(b), CausalOrder::kEqual);
  EXPECT_TRUE(a == b);
}

TEST(VectorClockTest, IncrementCreatesHappensBefore) {
  VectorClock a;
  VectorClock b;
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), CausalOrder::kBefore);
  EXPECT_EQ(b.Compare(a), CausalOrder::kAfter);
}

TEST(VectorClockTest, ConcurrentUpdatesDetected) {
  VectorClock a;
  VectorClock b;
  a.Increment(1);
  b.Increment(2);
  EXPECT_EQ(a.Compare(b), CausalOrder::kConcurrent);
  EXPECT_EQ(b.Compare(a), CausalOrder::kConcurrent);
}

TEST(VectorClockTest, ChainedHistoryOrdersCorrectly) {
  VectorClock a;
  a.Increment(1);
  VectorClock b = a;
  b.Increment(2);
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), CausalOrder::kBefore);
  EXPECT_EQ(b.Compare(b), CausalOrder::kEqual);
}

TEST(VectorClockTest, MergeIsPointwiseMaxAndCommutative) {
  VectorClock a;
  a.Increment(1);
  a.Increment(1);
  VectorClock b;
  b.Increment(2);
  const VectorClock m1 = VectorClock::Merge(a, b);
  const VectorClock m2 = VectorClock::Merge(b, a);
  EXPECT_TRUE(m1 == m2);
  EXPECT_EQ(m1.EntryFor(1), 2);
  EXPECT_EQ(m1.EntryFor(2), 1);
  // The merge dominates both inputs.
  EXPECT_EQ(a.Compare(m1), CausalOrder::kBefore);
  EXPECT_EQ(b.Compare(m1), CausalOrder::kBefore);
}

TEST(VectorClockTest, MergeIdempotent) {
  VectorClock a;
  a.Increment(3);
  EXPECT_TRUE(VectorClock::Merge(a, a) == a);
}

TEST(VectorClockTest, EntryForMissingNodeIsZero) {
  VectorClock a;
  EXPECT_EQ(a.EntryFor(42), 0);
  a.Increment(42);
  EXPECT_EQ(a.EntryFor(42), 1);
  EXPECT_EQ(a.size(), 1u);
}

TEST(VectorClockTest, ToStringListsEntries) {
  VectorClock a;
  a.Increment(1);
  a.Increment(2);
  EXPECT_EQ(a.ToString(), "{1:1, 2:1}");
}

TEST(VersionStampTest, TotalOrderByTimestampThenWriter) {
  const VersionStamp early{1.0, 5};
  const VersionStamp late{2.0, 1};
  const VersionStamp tie_low{2.0, 0};
  EXPECT_LT(early, late);
  EXPECT_LT(tie_low, late);
  EXPECT_FALSE(late < late);
  EXPECT_TRUE(late == late);
}

TEST(VersionedValueTest, NewerThanUsesStampOrder) {
  VersionedValue a;
  a.stamp = {1.0, 0};
  VersionedValue b;
  b.stamp = {2.0, 0};
  EXPECT_TRUE(b.NewerThan(a));
  EXPECT_FALSE(a.NewerThan(b));
  EXPECT_FALSE(a.NewerThan(a));
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
