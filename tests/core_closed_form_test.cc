#include "core/closed_form.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(SingleQuorumMissTest, PaperRunningExample) {
  // N=3, R=W=1: miss probability C(2,1)/C(3,1) = 2/3.
  EXPECT_NEAR(SingleQuorumMissProbability({3, 1, 1}), 2.0 / 3.0, 1e-12);
  // N=3, R=1, W=2 (or R=2, W=1): 1/3.
  EXPECT_NEAR(SingleQuorumMissProbability({3, 1, 2}), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(SingleQuorumMissProbability({3, 2, 1}), 1.0 / 3.0, 1e-12);
}

TEST(SingleQuorumMissTest, PaperLargeSystemExample) {
  // Section 2.1: N=100, R=W=30 -> ps = 1.88e-6.
  EXPECT_NEAR(SingleQuorumMissProbability({100, 30, 30}), 1.88e-6, 0.02e-6);
}

TEST(SingleQuorumMissTest, StrictQuorumsNeverMiss) {
  for (int n = 1; n <= 10; ++n) {
    for (int r = 1; r <= n; ++r) {
      for (int w = 1; w <= n; ++w) {
        const QuorumConfig config{n, r, w};
        if (config.IsStrict()) {
          EXPECT_EQ(SingleQuorumMissProbability(config), 0.0)
              << config.ToString();
        } else {
          EXPECT_GT(SingleQuorumMissProbability(config), 0.0)
              << config.ToString();
        }
      }
    }
  }
}

TEST(KStalenessTest, PaperSection31Numbers) {
  // N=3, R=W=1: P(within k versions) = 1 - (2/3)^k.
  const QuorumConfig config{3, 1, 1};
  EXPECT_NEAR(KFreshnessProbability(config, 3), 0.703, 0.001);
  EXPECT_GT(KFreshnessProbability(config, 5), 0.868);
  EXPECT_GT(KFreshnessProbability(config, 10), 0.98);
  // N=3, R=1, W=2: k=5 -> > 0.995.
  EXPECT_GT(KFreshnessProbability({3, 1, 2}, 5), 0.995);
}

TEST(KStalenessTest, ExponentialDecayInK) {
  const QuorumConfig config{3, 1, 1};
  const double ps = SingleQuorumMissProbability(config);
  for (int k = 1; k <= 20; ++k) {
    EXPECT_NEAR(KStalenessProbability(config, k), std::pow(ps, k), 1e-12);
  }
}

TEST(KStalenessTest, MonotoneDecreasingInK) {
  const QuorumConfig config{5, 1, 1};
  double prev = 1.0;
  for (int k = 1; k <= 30; ++k) {
    const double psk = KStalenessProbability(config, k);
    EXPECT_LT(psk, prev);
    prev = psk;
  }
}

TEST(MinVersionsForToleranceTest, InvertsTheExponent) {
  const QuorumConfig config{3, 1, 1};  // ps = 2/3
  // (2/3)^k <= 0.01  =>  k >= 11.36  =>  k = 12.
  EXPECT_EQ(MinVersionsForTolerance(config, 0.01), 12);
  // Strict quorum: one version suffices.
  EXPECT_EQ(MinVersionsForTolerance({3, 2, 2}, 0.01), 1);
  // ps == 1 is impossible with valid configs (W >= 1 so ps < 1 whenever
  // R >= 1 ... except R=0 which is invalid), so check a tolerance >= ps.
  EXPECT_EQ(MinVersionsForTolerance(config, 0.7), 1);
}

TEST(MonotonicReadsTest, MatchesKStalenessWithRateExponent) {
  const QuorumConfig config{3, 1, 1};
  const double ps = SingleQuorumMissProbability(config);
  // gamma_gw / gamma_cr = 2 writes per client read -> k = 3.
  EXPECT_NEAR(MonotonicReadsViolationProbability(config, 2.0, 1.0),
              std::pow(ps, 3.0), 1e-12);
  // Strict variant drops the +1.
  EXPECT_NEAR(
      MonotonicReadsViolationProbability(config, 2.0, 1.0, /*strict=*/true),
      std::pow(ps, 2.0), 1e-12);
}

TEST(MonotonicReadsTest, MoreWritesBetweenReadsImproveGuarantee) {
  // Higher write rate relative to the client's read rate raises the
  // exponent k = 1 + gw/cr, shrinking the violation probability: a client
  // that reads rarely has an older "last seen" version, which is easier to
  // dominate. (Conversely, rapid re-reads are the hard case.)
  const QuorumConfig config{3, 1, 1};
  double prev = 1.0;
  for (double gw : {0.1, 0.5, 1.0, 10.0, 100.0}) {
    const double p = MonotonicReadsViolationProbability(config, gw, 1.0);
    EXPECT_LT(p, prev) << "gw=" << gw;
    prev = p;
  }
}

TEST(MonotonicReadsTest, StrictQuorumsNeverViolateWhateverTheExponent) {
  // Regression: the exponent == 0 edge ("strict monotonicity, no new
  // writes") was checked before the ps == 0 short-circuit, returning a
  // certain violation (1.0) for exactly the R + W > N configurations that
  // are provably safe. Cover the full ps {0, >0} x strict {false, true}
  // matrix, including the gamma_gw == 0 corner in every cell.
  const QuorumConfig safe{3, 2, 2};    // ps == 0
  const QuorumConfig leaky{3, 1, 1};   // ps == 2/3
  const double ps = SingleQuorumMissProbability(leaky);

  // ps == 0: never a violation, in either session mode, with or without
  // interleaved writes.
  for (bool strict : {false, true}) {
    EXPECT_DOUBLE_EQ(
        MonotonicReadsViolationProbability(safe, 0.0, 1.0, strict), 0.0);
    EXPECT_DOUBLE_EQ(
        MonotonicReadsViolationProbability(safe, 2.0, 1.0, strict), 0.0);
  }

  // ps > 0, relaxed sessions: k = 1 + gw/cr.
  EXPECT_NEAR(MonotonicReadsViolationProbability(leaky, 0.0, 1.0, false), ps,
              1e-12);
  EXPECT_NEAR(MonotonicReadsViolationProbability(leaky, 2.0, 1.0, false),
              std::pow(ps, 3.0), 1e-12);

  // ps > 0, strict sessions: k = gw/cr; no writes between reads means the
  // same stale quorum can be re-drawn — a certain violation.
  EXPECT_DOUBLE_EQ(
      MonotonicReadsViolationProbability(leaky, 0.0, 1.0, true), 1.0);
  EXPECT_NEAR(MonotonicReadsViolationProbability(leaky, 2.0, 1.0, true),
              std::pow(ps, 2.0), 1e-12);
}

TEST(LoadBoundTest, EpsilonIntersectingFormula) {
  // load >= (1 - sqrt(eps)) / sqrt(N).
  EXPECT_NEAR(EpsilonIntersectingLoadLowerBound(100, 0.01), 0.9 / 10.0,
              1e-12);
  EXPECT_NEAR(EpsilonIntersectingLoadLowerBound(4, 0.25), 0.5 / 2.0, 1e-12);
}

TEST(LoadBoundTest, StalenessToleranceLowersLoad) {
  // Section 3.3: tolerating more versions strictly lowers the bound.
  double prev = 1.0;
  for (double k = 1.0; k <= 32.0; k *= 2.0) {
    const double load = KStalenessLoadLowerBound(9, 0.01, k);
    EXPECT_LT(load, prev) << "k=" << k;
    prev = load;
  }
}

TEST(LoadBoundTest, KEqualsOneRecoversEpsilonIntersectingBound) {
  // k = 1: eps = p, so the bound is (1 - sqrt(p)) / sqrt(N).
  EXPECT_NEAR(KStalenessLoadLowerBound(16, 0.25, 1.0),
              EpsilonIntersectingLoadLowerBound(16, 0.25), 1e-12);
  EXPECT_NEAR(KStalenessLoadLowerBound(16, 0.25, 1.0), 0.5 / 4.0, 1e-12);
}

TEST(TVisibilityBoundTest, AtCommitTimeEqualsClosedFormPs) {
  // At t=0 exactly W replicas hold the version, so Equation 4 degenerates
  // to Equation 1.
  const QuorumConfig config{3, 1, 1};
  std::vector<double> pw(config.n + 1, 0.0);
  // P(Wr <= c): all mass at Wr = W = 1.
  pw[0] = 0.0;
  pw[1] = 1.0;
  pw[2] = 1.0;
  pw[3] = 1.0;
  EXPECT_NEAR(TVisibilityStalenessBound(config, pw),
              SingleQuorumMissProbability(config), 1e-12);
}

TEST(TVisibilityBoundTest, FullPropagationMeansNoStaleness) {
  const QuorumConfig config{3, 1, 1};
  // All mass at Wr = N.
  std::vector<double> pw = {0.0, 0.0, 0.0, 1.0};
  EXPECT_EQ(TVisibilityStalenessBound(config, pw), 0.0);
}

TEST(TVisibilityBoundTest, InterpolatesBetweenExtremes) {
  const QuorumConfig config{3, 1, 1};
  // Half the trials still at W=1, half fully propagated.
  std::vector<double> pw = {0.0, 0.5, 0.5, 1.0};
  const double expected = 0.5 * (2.0 / 3.0) + 0.5 * 0.0;
  EXPECT_NEAR(TVisibilityStalenessBound(config, pw), expected, 1e-12);
}

TEST(TVisibilityBoundTest, MorePropagationNeverHurts) {
  const QuorumConfig config{5, 2, 1};
  std::vector<double> slow = {0.0, 0.8, 0.9, 0.95, 1.0, 1.0};
  std::vector<double> fast = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  EXPECT_GT(TVisibilityStalenessBound(config, slow),
            TVisibilityStalenessBound(config, fast));
}

TEST(KTStalenessBoundTest, ExponentiatesTheTimeBound) {
  const QuorumConfig config{3, 1, 1};
  std::vector<double> pw = {0.0, 1.0, 1.0, 1.0};
  const double p1 = KTStalenessBound(config, pw, 1);
  const double p3 = KTStalenessBound(config, pw, 3);
  EXPECT_NEAR(p3, std::pow(p1, 3.0), 1e-12);
  EXPECT_LT(p3, p1);
}

TEST(QuorumConfigTest, Predicates) {
  EXPECT_TRUE(QuorumConfig({3, 2, 2}).IsStrict());
  EXPECT_TRUE(QuorumConfig({3, 1, 1}).IsPartial());
  EXPECT_TRUE(QuorumConfig({3, 1, 3}).IsStrict());
  EXPECT_TRUE(QuorumConfig({3, 1, 2}).HasMajorityWrites());
  EXPECT_FALSE(QuorumConfig({3, 1, 1}).HasMajorityWrites());
  EXPECT_FALSE(QuorumConfig({3, 4, 1}).IsValid());
  EXPECT_FALSE(QuorumConfig({0, 1, 1}).IsValid());
  EXPECT_FALSE(ValidateQuorumConfig({3, 0, 1}).ok());
  EXPECT_TRUE(ValidateQuorumConfig({3, 1, 1}).ok());
  EXPECT_EQ(QuorumConfig({3, 2, 1}).ToString(), "N=3 R=2 W=1");
}

}  // namespace
}  // namespace pbs
