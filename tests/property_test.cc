// Cross-cutting invariants swept over the configuration space with TEST_P.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/closed_form.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/production.h"

namespace pbs {
namespace {

std::vector<QuorumConfig> AllConfigsUpToN(int max_n) {
  std::vector<QuorumConfig> configs;
  for (int n = 1; n <= max_n; ++n) {
    for (int r = 1; r <= n; ++r) {
      for (int w = 1; w <= n; ++w) configs.push_back({n, r, w});
    }
  }
  return configs;
}

std::string ConfigName(const ::testing::TestParamInfo<QuorumConfig>& info) {
  return "N" + std::to_string(info.param.n) + "R" +
         std::to_string(info.param.r) + "W" + std::to_string(info.param.w);
}

class ClosedFormInvariantTest : public ::testing::TestWithParam<QuorumConfig> {
};

TEST_P(ClosedFormInvariantTest, MissProbabilityIsAProbability) {
  const double ps = SingleQuorumMissProbability(GetParam());
  EXPECT_GE(ps, 0.0);
  EXPECT_LE(ps, 1.0);
}

TEST_P(ClosedFormInvariantTest, StrictnessIffZeroMiss) {
  const double ps = SingleQuorumMissProbability(GetParam());
  EXPECT_EQ(GetParam().IsStrict(), ps == 0.0);
}

TEST_P(ClosedFormInvariantTest, FreshnessNonDecreasingInK) {
  double prev = 0.0;
  for (int k = 1; k <= 10; ++k) {
    const double fresh = KFreshnessProbability(GetParam(), k);
    EXPECT_GE(fresh + 1e-12, prev);
    prev = fresh;
  }
}

TEST_P(ClosedFormInvariantTest, BiggerReadQuorumNeverHurts) {
  const QuorumConfig config = GetParam();
  if (config.r >= config.n) GTEST_SKIP();
  QuorumConfig bigger = config;
  bigger.r = config.r + 1;
  EXPECT_LE(SingleQuorumMissProbability(bigger),
            SingleQuorumMissProbability(config) + 1e-12);
}

TEST_P(ClosedFormInvariantTest, BiggerWriteQuorumNeverHurts) {
  const QuorumConfig config = GetParam();
  if (config.w >= config.n) GTEST_SKIP();
  QuorumConfig bigger = config;
  bigger.w = config.w + 1;
  EXPECT_LE(SingleQuorumMissProbability(bigger),
            SingleQuorumMissProbability(config) + 1e-12);
}

TEST_P(ClosedFormInvariantTest, MoreReplicasWithSameQuorumsHurt) {
  // Growing N while holding R and W fixed dilutes intersection (Figure 7's
  // "probability of consistency immediately after write commit decreases as
  // N increases").
  const QuorumConfig config = GetParam();
  QuorumConfig bigger = config;
  bigger.n = config.n + 1;
  EXPECT_GE(SingleQuorumMissProbability(bigger) + 1e-12,
            SingleQuorumMissProbability(config));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosedFormInvariantTest,
                         ::testing::ValuesIn(AllConfigsUpToN(6)),
                         ConfigName);

class WarsInvariantTest : public ::testing::TestWithParam<QuorumConfig> {};

TEST_P(WarsInvariantTest, ThresholdsNonNegativeAndFiniteUnderYmmr) {
  const QuorumConfig config = GetParam();
  const auto model = MakeIidModel(Ymmr(), config.n);
  WarsSimulator sim(config, model, /*seed=*/1);
  for (int i = 0; i < 3000; ++i) {
    const WarsTrial trial = sim.RunTrial();
    EXPECT_GE(trial.staleness_threshold, 0.0);
    EXPECT_TRUE(std::isfinite(trial.staleness_threshold));
    EXPECT_GT(trial.write_latency, 0.0);
    EXPECT_GT(trial.read_latency, 0.0);
  }
}

TEST_P(WarsInvariantTest, StrictConfigsHaveZeroThresholds) {
  const QuorumConfig config = GetParam();
  if (!config.IsStrict()) GTEST_SKIP();
  const auto model = MakeIidModel(LnkdDisk(), config.n);
  WarsSimulator sim(config, model, /*seed=*/2);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_DOUBLE_EQ(sim.RunTrial().staleness_threshold, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WarsInvariantTest,
                         ::testing::ValuesIn(AllConfigsUpToN(4)),
                         ConfigName);

TEST(WarsStochasticDominanceTest, LargerRShiftsThresholdsDown) {
  // For fixed N and W, increasing R cannot make staleness worse: mean
  // threshold decreases (Table 4's R-vs-t trade-off).
  const auto model = MakeIidModel(LnkdDisk(), 3);
  double prev_mean = 1e18;
  for (int r = 1; r <= 3; ++r) {
    const auto set = RunWarsTrials({3, r, 1}, model, 60000, /*seed=*/3);
    const double mean =
        std::accumulate(set.staleness_thresholds.begin(),
                        set.staleness_thresholds.end(), 0.0) /
        set.staleness_thresholds.size();
    EXPECT_LT(mean, prev_mean + 1e-12) << "R=" << r;
    prev_mean = mean;
  }
}

TEST(WarsStochasticDominanceTest, LargerWShiftsThresholdsDown) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  double prev_mean = 1e18;
  for (int w = 1; w <= 3; ++w) {
    const auto set = RunWarsTrials({3, 1, w}, model, 60000, /*seed=*/4);
    const double mean =
        std::accumulate(set.staleness_thresholds.begin(),
                        set.staleness_thresholds.end(), 0.0) /
        set.staleness_thresholds.size();
    EXPECT_LT(mean, prev_mean + 1e-12) << "W=" << w;
    prev_mean = mean;
  }
}

TEST(DeterminismTest, WholePipelineReproducible) {
  const auto model = MakeIidModel(Ymmr(), 3);
  const auto a = RunWarsTrials({3, 1, 1}, model, 5000, /*seed=*/42,
                               /*want_propagation=*/true);
  const auto b = RunWarsTrials({3, 1, 1}, model, 5000, /*seed=*/42,
                               /*want_propagation=*/true);
  EXPECT_EQ(a.write_latencies, b.write_latencies);
  EXPECT_EQ(a.read_latencies, b.read_latencies);
  EXPECT_EQ(a.staleness_thresholds, b.staleness_thresholds);
  EXPECT_EQ(a.propagation, b.propagation);
}

}  // namespace
}  // namespace pbs
