#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "kvs/ring.h"
#include "util/rng.h"

namespace pbs {
namespace kvs {
namespace {

// Property-based churn suite for the elastic ring: random membership
// sequences, checked against the consistent-hashing invariants (minimal
// movement, preference-list continuity, balance, deterministic rebuild).

std::vector<int> MustList(const ConsistentHashRing& ring, Key key, int n) {
  StatusOr<std::vector<int>> list = ring.PreferenceList(key, n);
  EXPECT_TRUE(list.ok()) << list.status().message();
  return list.ok() ? list.value() : std::vector<int>{};
}

TEST(RingChurnTest, AddMovesKeysOnlyToTheNewNode) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ConsistentHashRing ring(6, 32, seed);
    std::vector<std::vector<int>> old_lists;
    for (Key key = 0; key < 400; ++key) {
      old_lists.push_back(MustList(ring, key, 3));
    }
    ASSERT_TRUE(ring.AddNode(6).ok());
    for (Key key = 0; key < 400; ++key) {
      const std::vector<int> now = MustList(ring, key, 3);
      for (int node : now) {
        const auto& before = old_lists[key];
        const bool was_there =
            std::find(before.begin(), before.end(), node) != before.end();
        // Minimal movement: any replica slot that changed hands moved to
        // the joining node, never between pre-existing members.
        if (!was_there) {
          EXPECT_EQ(node, 6) << "key " << key << " seed " << seed;
        }
      }
    }
  }
}

TEST(RingChurnTest, RemoveOnlyAffectsListsContainingTheVictim) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ConsistentHashRing ring(8, 32, seed);
    const int victim = 3;
    std::vector<std::vector<int>> old_lists;
    for (Key key = 0; key < 400; ++key) {
      old_lists.push_back(MustList(ring, key, 3));
    }
    ASSERT_TRUE(ring.RemoveNode(victim).ok());
    for (Key key = 0; key < 400; ++key) {
      const auto& before = old_lists[key];
      const std::vector<int> now = MustList(ring, key, 3);
      const bool had_victim =
          std::find(before.begin(), before.end(), victim) != before.end();
      if (!had_victim) {
        EXPECT_EQ(now, before) << "key " << key << " seed " << seed;
      } else {
        EXPECT_EQ(std::find(now.begin(), now.end(), victim), now.end());
      }
    }
  }
}

TEST(RingChurnTest, SurvivorsKeepTheirRelativeOrder) {
  // Preference-list continuity: churn may insert or delete members, but the
  // clockwise walk never *reorders* the survivors of a list.
  Rng rng(77);
  ConsistentHashRing ring(10, 16, /*seed=*/9);
  for (int round = 0; round < 6; ++round) {
    std::vector<std::vector<int>> old_lists;
    for (Key key = 0; key < 200; ++key) {
      old_lists.push_back(MustList(ring, key, 4));
    }
    const bool add = (round % 2 == 0);
    if (add) {
      ASSERT_TRUE(ring.AddNode(100 + round).ok());
    } else {
      ASSERT_TRUE(ring.RemoveNode(ring.members()[rng.NextBounded(
                                      ring.members().size())])
                      .ok());
    }
    for (Key key = 0; key < 200; ++key) {
      const std::vector<int> now = MustList(ring, key, 4);
      // Project both lists onto the common survivors; projections must be
      // equal prefixes of one another (the shorter bounds the comparison).
      std::vector<int> old_common;
      for (int node : old_lists[key]) {
        if (std::find(now.begin(), now.end(), node) != now.end()) {
          old_common.push_back(node);
        }
      }
      std::vector<int> new_common;
      for (int node : now) {
        if (std::find(old_lists[key].begin(), old_lists[key].end(), node) !=
            old_lists[key].end()) {
          new_common.push_back(node);
        }
      }
      const size_t common = std::min(old_common.size(), new_common.size());
      for (size_t i = 0; i < common; ++i) {
        EXPECT_EQ(old_common[i], new_common[i]) << "key " << key;
      }
    }
  }
}

TEST(RingChurnTest, OwnershipStaysBalancedThroughChurn) {
  ConsistentHashRing ring(4, 256, /*seed=*/11);
  ASSERT_TRUE(ring.AddNode(4).ok());
  ASSERT_TRUE(ring.AddNode(5).ok());
  ASSERT_TRUE(ring.RemoveNode(0).ok());
  // 5 members remain; each should own roughly 1/5 of the key space.
  const StatusOr<std::vector<double>> fractions =
      ring.OwnershipFractions(100000, /*seed=*/12);
  ASSERT_TRUE(fractions.ok());
  double total = 0.0;
  for (double f : fractions.value()) {
    EXPECT_NEAR(f, 0.2, 0.08);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RingChurnTest, ChurnedRingMatchesFreshRingFromSameMembers) {
  // Migration equivalence at the placement layer: any add/remove sequence
  // ends bit-identical to a fresh ring built from the final membership.
  Rng rng(123);
  ConsistentHashRing ring(5, 32, /*seed=*/21);
  int next_id = 5;
  for (int round = 0; round < 12; ++round) {
    if (ring.num_nodes() <= 3 || rng.NextBounded(2) == 0) {
      ASSERT_TRUE(ring.AddNode(next_id++).ok());
    } else {
      const int victim =
          ring.members()[rng.NextBounded(ring.members().size())];
      ASSERT_TRUE(ring.RemoveNode(victim).ok());
    }
  }
  const StatusOr<ConsistentHashRing> fresh =
      ConsistentHashRing::CreateFromMembers(ring.members(),
                                            ring.vnodes_per_node(),
                                            ring.seed());
  ASSERT_TRUE(fresh.ok());
  for (Key key = 0; key < 500; ++key) {
    EXPECT_EQ(MustList(ring, key, 3), MustList(fresh.value(), key, 3));
  }
}

TEST(RingChurnTest, VersionCountsEveryMembershipChange) {
  ConsistentHashRing ring(3, 8, /*seed=*/1);
  EXPECT_EQ(ring.version(), 1u);  // 1-based: 0 means "version never seen"
  ASSERT_TRUE(ring.AddNode(3).ok());
  EXPECT_EQ(ring.version(), 2u);
  ASSERT_TRUE(ring.RemoveNode(0).ok());
  EXPECT_EQ(ring.version(), 3u);
  // Failed operations do not bump the version.
  EXPECT_FALSE(ring.AddNode(3).ok());
  EXPECT_EQ(ring.version(), 3u);
}

TEST(RingChurnTest, ErrorPathsAreStatusTypedInEveryBuildMode) {
  ConsistentHashRing ring(3, 8, /*seed=*/2);

  EXPECT_EQ(ring.AddNode(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ring.AddNode(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ring.RemoveNode(9).code(), StatusCode::kNotFound);

  // Shrink to one member: removing the last member must fail, and asking
  // for more replicas than members must return an error (not a short or
  // garbage list) — this is the Release-build regression the assert-only
  // validation used to hide.
  ASSERT_TRUE(ring.RemoveNode(0).ok());
  ASSERT_TRUE(ring.RemoveNode(1).ok());
  EXPECT_EQ(ring.RemoveNode(2).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ring.PreferenceList(7, 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ring.PreferenceList(7, 0).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<int> out = {42};
  EXPECT_FALSE(ring.AppendPreferenceList(7, 2, &out).ok());
  EXPECT_TRUE(out.empty());  // error path clears, never leaves stale routing

  EXPECT_EQ(ConsistentHashRing::Create(0, 8, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ConsistentHashRing::CreateFromMembers({}, 8, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ConsistentHashRing::CreateFromMembers({1, 1}, 8, 1).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ConsistentHashRing::CreateFromMembers({1, -2}, 8, 1).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
