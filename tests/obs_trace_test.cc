// Causal op tracing: sampling, ring retention, trace-id propagation through
// the full coordinator/replica path (hedges, retries, timeouts), and the
// RNG-neutrality guarantee that a traced run replays an untraced one.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/experiment.h"
#include "obs/trace.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig TracedConfig(QuorumConfig quorum) {
  KvsConfig config;
  config.quorum = quorum;
  config.legs = FastLegs();
  config.request_timeout_ms = 100.0;
  config.seed = 808;
  config.obs.trace_enabled = true;
  return config;
}

std::map<uint64_t, std::vector<obs::TraceEvent>> GroupByTrace(
    const std::vector<obs::TraceEvent>& events) {
  std::map<uint64_t, std::vector<obs::TraceEvent>> by_trace;
  for (const obs::TraceEvent& event : events) {
    by_trace[event.trace_id].push_back(event);
  }
  return by_trace;
}

bool HasKind(const std::vector<obs::TraceEvent>& trace,
             obs::TraceEventKind kind) {
  return std::any_of(trace.begin(), trace.end(),
                     [kind](const obs::TraceEvent& e) {
                       return e.kind == kind;
                     });
}

TEST(TracerTest, CounterBasedSamplingNeverDrawsRandomness) {
  obs::Tracer tracer;
  ObsOptions options;
  options.trace_enabled = true;
  options.trace_sample_every = 3;
  tracer.Configure(options);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (tracer.StartOp(/*is_write=*/false, /*key=*/1, /*coordinator=*/0,
                       /*now=*/0.0) != 0) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 3);
  EXPECT_EQ(tracer.ops_seen(), 9u);
  EXPECT_EQ(tracer.ops_sampled(), 3u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;  // default: disabled
  EXPECT_EQ(tracer.StartOp(true, 1, 0, 0.0), 0u);
  tracer.Record(obs::TraceEvent{.trace_id = 1});
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, RingOverwriteIsAccounted) {
  obs::Tracer tracer;
  ObsOptions options;
  options.trace_enabled = true;
  options.trace_ring_capacity = 4;
  tracer.Configure(options);
  const uint64_t id = tracer.StartOp(true, 1, 0, 0.0);  // records kOpBegin
  ASSERT_NE(id, 0u);
  for (int i = 0; i < 6; ++i) {
    tracer.Record(obs::TraceEvent{.trace_id = id, .a = i});
  }
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.events_overwritten(), 3u);  // 7 recorded, 4 retained
}

TEST(TraceePropagationTest, HedgedReadCarriesOneTraceIdEndToEnd) {
  KvsConfig config = TracedConfig({3, 2, 2});
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.hedge.enabled = true;
  config.hedge.delay_ms = 5.0;
  Cluster cluster(config);
  FaultProfile slow;
  slow.delay_mult = 50.0;
  cluster.network().SetNodeFault(0, slow);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(1, "v", nullptr);
  std::vector<uint64_t> read_trace_ids;
  for (int i = 0; i < 40; ++i) {
    cluster.sim().At(100.0 + i * 100.0, [&]() {
      client.Read(1, [&](const ReadResult& r) {
        ASSERT_TRUE(r.ok);
        EXPECT_TRUE(r.status.ok());
        read_trace_ids.push_back(r.trace_id);
      });
    });
  }
  cluster.sim().Run();
  ASSERT_EQ(read_trace_ids.size(), 40u);
  // Every sampled op returned its trace id (sample_every=1: all of them).
  for (uint64_t id : read_trace_ids) EXPECT_NE(id, 0u);

  const auto by_trace = GroupByTrace(cluster.tracer().Snapshot());
  int hedged_traces = 0;
  for (uint64_t id : read_trace_ids) {
    const auto it = by_trace.find(id);
    ASSERT_NE(it, by_trace.end()) << "trace " << id << " not retained";
    const auto& trace = it->second;
    EXPECT_TRUE(HasKind(trace, obs::TraceEventKind::kOpBegin));
    EXPECT_TRUE(HasKind(trace, obs::TraceEventKind::kAttempt));
    EXPECT_TRUE(HasKind(trace, obs::TraceEventKind::kReturn));
    EXPECT_TRUE(HasKind(trace, obs::TraceEventKind::kOpEnd));
    if (!HasKind(trace, obs::TraceEventKind::kHedge)) continue;
    ++hedged_traces;
    // The hedge re-issued an R leg: at least R+1 read-request sends, the
    // re-issue marked b=1, and the replica service + response all under the
    // same trace id.
    int r_sends = 0;
    int hedge_marked = 0;
    for (const obs::TraceEvent& event : trace) {
      if (event.kind == obs::TraceEventKind::kLegSend &&
          event.leg == obs::WarsLeg::kR) {
        ++r_sends;
        if (event.b == 1) ++hedge_marked;
      }
    }
    EXPECT_GE(r_sends, 3);
    EXPECT_GE(hedge_marked, 1);
    EXPECT_TRUE(HasKind(trace, obs::TraceEventKind::kResponse));
  }
  EXPECT_GT(hedged_traces, 0) << "slow replica never triggered a hedge";
  EXPECT_GT(cluster.metrics().hedged_reads_won, 0);
}

TEST(TraceePropagationTest, RetriedReadRecordsTimeoutBackoffAndNewAttempt) {
  KvsConfig config = TracedConfig({3, 2, 2});
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.request_timeout_ms = 20.0;  // node 0's 50 ms responses time out
  config.retry.max_attempts = 5;
  config.retry.backoff_base_ms = 5.0;
  Cluster cluster(config);
  FaultProfile slow;
  slow.delay_mult = 50.0;
  cluster.network().SetNodeFault(0, slow);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(1, "v", nullptr);
  int ok_reads = 0;
  for (int i = 0; i < 40; ++i) {
    cluster.sim().At(200.0 + i * 200.0, [&]() {
      client.Read(1, [&](const ReadResult& r) {
        if (r.ok) ++ok_reads;
      });
    });
  }
  cluster.sim().Run();
  EXPECT_GT(ok_reads, 0);
  ASSERT_GT(cluster.metrics().client_read_retries, 0)
      << "scenario produced no retries";

  bool found_retried_trace = false;
  for (const auto& [id, trace] : GroupByTrace(cluster.tracer().Snapshot())) {
    if (id == 0) continue;
    if (!HasKind(trace, obs::TraceEventKind::kTimeout)) continue;
    if (!HasKind(trace, obs::TraceEventKind::kBackoff)) continue;
    int64_t max_attempt = 0;
    for (const obs::TraceEvent& event : trace) {
      if (event.kind == obs::TraceEventKind::kAttempt) {
        max_attempt = std::max(max_attempt, event.a);
      }
    }
    if (max_attempt < 2) continue;
    found_retried_trace = true;
    break;
  }
  EXPECT_TRUE(found_retried_trace)
      << "no trace shows timeout -> backoff -> second attempt";
}

TEST(RngNeutralityTest, TracedExperimentReplaysUntracedBitwise) {
  StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs = LnkdSsd();
  options.cluster.request_timeout_ms = 200.0;
  options.writes = 300;
  options.write_spacing_ms = 20.0;
  options.read_offsets_ms = {1.0, 10.0};
  options.seed = 606;

  const StalenessExperimentResult untraced = RunStalenessExperiment(options);
  options.cluster.obs.trace_enabled = true;
  const StalenessExperimentResult traced = RunStalenessExperiment(options);

  // Tracing draws zero randomness, so the workload replays exactly.
  EXPECT_EQ(untraced.read_latencies, traced.read_latencies);
  EXPECT_EQ(untraced.write_latencies, traced.write_latencies);
  ASSERT_EQ(untraced.t_visibility.size(), traced.t_visibility.size());
  for (size_t i = 0; i < untraced.t_visibility.size(); ++i) {
    EXPECT_EQ(untraced.t_visibility[i].consistent,
              traced.t_visibility[i].consistent);
    EXPECT_EQ(untraced.t_visibility[i].trials,
              traced.t_visibility[i].trials);
  }
  EXPECT_TRUE(untraced.trace.empty());
  EXPECT_FALSE(traced.trace.empty());
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
