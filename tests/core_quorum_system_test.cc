#include "core/quorum_system.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/closed_form.h"

namespace pbs {
namespace {

bool Intersect(const std::vector<int>& a, const std::vector<int>& b) {
  const std::set<int> sa(a.begin(), a.end());
  for (int id : b) {
    if (sa.count(id)) return true;
  }
  return false;
}

TEST(SubsetQuorumSystemTest, MatchesClosedFormMissProbability) {
  const auto system = MakeSubsetQuorumSystem(3, 1, 1);
  const auto stats = AnalyzeQuorumSystem(*system, 200000, /*seed=*/1);
  EXPECT_NEAR(stats.miss_probability,
              SingleQuorumMissProbability({3, 1, 1}), 0.005);
  EXPECT_NEAR(stats.k2_miss_probability,
              KStalenessProbability({3, 1, 1}, 2), 0.005);
  EXPECT_DOUBLE_EQ(stats.mean_read_quorum_size, 1.0);
  EXPECT_FALSE(system->IsStrict());
}

TEST(SubsetQuorumSystemTest, StrictConfigNeverMisses) {
  const auto system = MakeSubsetQuorumSystem(3, 2, 2);
  EXPECT_TRUE(system->IsStrict());
  const auto stats = AnalyzeQuorumSystem(*system, 50000, /*seed=*/2);
  EXPECT_EQ(stats.miss_probability, 0.0);
}

TEST(GridQuorumSystemTest, RowAndColumnAlwaysIntersect) {
  const auto system = MakeGridQuorumSystem(4, 5);
  EXPECT_TRUE(system->IsStrict());
  EXPECT_EQ(system->num_replicas(), 20);
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto read = system->SampleReadQuorum(rng);
    const auto write = system->SampleWriteQuorum(rng);
    EXPECT_EQ(read.size(), 5u);   // a full row
    EXPECT_EQ(write.size(), 4u);  // a full column
    EXPECT_TRUE(Intersect(read, write));
  }
  const auto stats = AnalyzeQuorumSystem(*system, 50000, /*seed=*/4);
  EXPECT_EQ(stats.miss_probability, 0.0);
}

TEST(GridQuorumSystemTest, MemberOmissionBreaksTheSingleCellIntersection) {
  // The row/column intersection is exactly one cell; dropping each member
  // with probability f loses the last write iff either side dropped it:
  // miss = 1 - (1-f)^2.
  const double f = 0.2;
  const auto system = MakeGridQuorumSystem(6, 6, f);
  EXPECT_FALSE(system->IsStrict());
  const auto stats = AnalyzeQuorumSystem(*system, 300000, /*seed=*/5);
  const double expected = 1.0 - (1.0 - f) * (1.0 - f);
  EXPECT_NEAR(stats.miss_probability, expected, 0.005);
}

TEST(GridQuorumSystemTest, LoadMatchesTheoryForSquareGrids) {
  // For a c x c grid, each operation touches c of c^2 replicas uniformly:
  // load -> 1/c = 1/sqrt(N), the optimal order [Naor & Wool].
  const auto system = MakeGridQuorumSystem(6, 6);
  const auto stats = AnalyzeQuorumSystem(*system, 200000, /*seed=*/6);
  EXPECT_NEAR(stats.load, 1.0 / 6.0, 0.01);
}

TEST(TreeQuorumSystemTest, AnyTwoQuorumsIntersect) {
  for (double pref : {0.3, 0.7, 1.0}) {
    const auto system = MakeTreeQuorumSystem(4, pref);
    EXPECT_TRUE(system->IsStrict());
    EXPECT_EQ(system->num_replicas(), 15);
    Rng rng(7);
    for (int trial = 0; trial < 3000; ++trial) {
      const auto a = system->SampleReadQuorum(rng);
      const auto b = system->SampleWriteQuorum(rng);
      EXPECT_TRUE(Intersect(a, b)) << "pref=" << pref;
    }
  }
}

TEST(TreeQuorumSystemTest, FullRootPreferenceYieldsRootPaths) {
  // With root always available the quorum is a root-to-leaf path: size =
  // number of levels.
  const auto system = MakeTreeQuorumSystem(4, 1.0);
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const auto quorum = system->SampleReadQuorum(rng);
    EXPECT_EQ(quorum.size(), 4u);
    EXPECT_EQ(quorum.front(), 0);  // starts at the root
  }
}

TEST(TreeQuorumSystemTest, MonteCarloConfirmsStrictness) {
  const auto system = MakeTreeQuorumSystem(3, 0.6);
  const auto stats = AnalyzeQuorumSystem(*system, 100000, /*seed=*/9);
  EXPECT_EQ(stats.miss_probability, 0.0);
  EXPECT_EQ(stats.k2_miss_probability, 0.0);
}

TEST(TreeQuorumSystemTest, QuorumsAreSmallerThanMajority) {
  // The selling point of tree quorums: quorum size ~ log N or smaller
  // vs ceil((N+1)/2) for the majority system.
  const auto system = MakeTreeQuorumSystem(5, 0.8);  // N = 31
  const auto stats = AnalyzeQuorumSystem(*system, 50000, /*seed=*/10);
  EXPECT_LT(stats.mean_read_quorum_size, 16.0);
  EXPECT_LT(stats.mean_read_quorum_size, 10.0);
}

TEST(TreeQuorumSystemTest, RootIsTheLoadBottleneck) {
  // Root-heavy construction concentrates load at the root: load is much
  // higher than the grid's 1/sqrt(N).
  const auto tree = MakeTreeQuorumSystem(4, 0.9);
  const auto stats = AnalyzeQuorumSystem(*tree, 100000, /*seed=*/11);
  EXPECT_GT(stats.load, 0.5);  // the root appears in ~90% of quorums
}

TEST(AnalyzeQuorumSystemTest, DescribeMentionsShape) {
  EXPECT_NE(MakeGridQuorumSystem(3, 4)->Describe().find("3x4"),
            std::string::npos);
  EXPECT_NE(MakeTreeQuorumSystem(3, 0.5)->Describe().find("levels=3"),
            std::string::npos);
  EXPECT_NE(MakeSubsetQuorumSystem(5, 2, 3)->Describe().find("R=2"),
            std::string::npos);
}

}  // namespace
}  // namespace pbs
