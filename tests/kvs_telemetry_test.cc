// Streaming telemetry through the kvs cluster (DESIGN.md §13): the
// telemetry tick's RNG neutrality, window deltas reconciling with final
// totals, the monitor catching an injected mid-run slow replica within
// three windows (and staying silent fault-free), artifact provenance, the
// audit/window join, and the capped leg-profiler ring.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "dist/production.h"
#include "kvs/cluster.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "kvs/options.h"
#include "kvs/profiler.h"
#include "obs/exporters.h"
#include "obs/monitor.h"
#include "obs/timeseries.h"

namespace pbs {
namespace kvs {
namespace {

// A small R=1 cluster under kQuorumOnly: the fan-out policy that actually
// exposes a slow replica (kAllN masks it behind the fastest responders).
StalenessExperimentOptions TelemetryExperiment() {
  StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs = LnkdSsd();
  options.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.cluster.request_timeout_ms = 200.0;
  options.cluster.sla = SlaTarget::Parse("p=0.99,t=10,p99<=5").value();
  options.cluster.obs.telemetry_window_ms = 500.0;
  options.cluster.obs.monitor_enabled = true;
  options.writes = 400;
  options.write_spacing_ms = 50.0;
  options.seed = 7;
  return options;
}

TEST(KvsTelemetryTest, OffByDefaultAndArtifactsStayEmpty) {
  StalenessExperimentOptions options = TelemetryExperiment();
  options.cluster.obs.telemetry_window_ms = 0.0;
  options.cluster.obs.monitor_enabled = false;
  options.writes = 50;
  const StalenessExperimentResult result = RunStalenessExperiment(options);
  EXPECT_TRUE(result.timeseries.windows().empty());
  EXPECT_EQ(result.timeseries.windows_cut(), 0);
  EXPECT_TRUE(result.monitor_samples.empty());
  EXPECT_TRUE(result.monitor_alerts.empty());
  EXPECT_TRUE(result.telemetry_jsonl.empty());
}

TEST(KvsTelemetryTest, MonitorRequiresAnSla) {
  KvsConfig config;
  config.legs = LnkdSsd();
  config.obs.telemetry_window_ms = 500.0;
  config.obs.monitor_enabled = true;
  EXPECT_FALSE(config.Validate().ok());
  config.sla = SlaTarget::Parse("p=0.99,t=10,p99<=5").value();
  EXPECT_TRUE(config.Validate().ok());
}

TEST(KvsTelemetryTest, TelemetryIsRngNeutral) {
  // Enabling the whole telemetry stack (windows + monitor) must not
  // perturb a seeded run: the tick is timer-wheel driven and the monitor
  // fit uses the RNG-free analytic backend.
  StalenessExperimentOptions on = TelemetryExperiment();
  on.writes = 120;
  StalenessExperimentOptions off = on;
  off.cluster.obs.telemetry_window_ms = 0.0;
  off.cluster.obs.monitor_enabled = false;

  const StalenessExperimentResult with_telemetry = RunStalenessExperiment(on);
  const StalenessExperimentResult without = RunStalenessExperiment(off);

  EXPECT_EQ(with_telemetry.read_latencies, without.read_latencies);
  EXPECT_EQ(with_telemetry.write_latencies, without.write_latencies);
  EXPECT_EQ(with_telemetry.network_messages, without.network_messages);
  ASSERT_EQ(with_telemetry.t_visibility.size(), without.t_visibility.size());
  for (size_t i = 0; i < without.t_visibility.size(); ++i) {
    EXPECT_EQ(with_telemetry.t_visibility[i].consistent,
              without.t_visibility[i].consistent)
        << "offset index " << i;
  }
  EXPECT_FALSE(with_telemetry.timeseries.windows().empty());
}

TEST(KvsTelemetryTest, WindowDeltasReconcileWithFinalTotals) {
  StalenessExperimentOptions options = TelemetryExperiment();
  options.writes = 120;
  const StalenessExperimentResult result = RunStalenessExperiment(options);

  // No rollover at this run length, so summing every window's delta of a
  // counter must reproduce the cumulative total in the final registry.
  ASSERT_EQ(result.timeseries.windows_dropped(), 0);
  int64_t windowed_reads = 0;
  for (const obs::WindowSnapshot& window : result.timeseries.windows()) {
    const obs::Counter* moved = window.delta.FindCounter("kvs/reads_started");
    if (moved != nullptr) windowed_reads += moved->value;
  }
  const obs::Counter* total =
      result.registry.FindCounter("kvs/reads_started");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(windowed_reads, total->value);
  EXPECT_GT(windowed_reads, 0);
}

TEST(KvsTelemetryTest, DriftAlertWithinThreeWindowsOfSlowReplica) {
  // The CI-gated chaos acceptance (ISSUE 10): a replica turns 10x slow
  // mid-run at t=10s (window 20 at the 500 ms cadence); the monitor must
  // raise prediction_drift within three windows of the onset.
  const StalenessExperimentOptions options = TelemetryExperiment();
  FaultSchedule faults;
  faults.AddSlowNode(/*start=*/10000.0, /*end=*/21000.0, /*node=*/2,
                     /*delay_mult=*/10.0);
  const StalenessExperimentResult faulted =
      RunStalenessExperimentWithFaults(options, faults);

  const int64_t fault_window = static_cast<int64_t>(10000.0 / 500.0);
  int64_t first_drift = -1;
  for (const obs::Alert& alert : faulted.monitor_alerts) {
    if (alert.kind == obs::AlertKind::kPredictionDrift) {
      first_drift = alert.window_id;
      break;
    }
  }
  ASSERT_NE(first_drift, -1) << "no prediction_drift alert raised";
  EXPECT_GE(first_drift, fault_window);
  EXPECT_LE(first_drift, fault_window + 3);

  // The same run without the fault raises nothing at all.
  const StalenessExperimentResult control = RunStalenessExperiment(options);
  EXPECT_TRUE(control.monitor_alerts.empty());
  EXPECT_FALSE(control.monitor_samples.empty());
}

TEST(KvsTelemetryTest, ArtifactCarriesMetaSamplesAndProvenance) {
  StalenessExperimentOptions options = TelemetryExperiment();
  options.writes = 120;
  const StalenessExperimentResult result = RunStalenessExperiment(options);

  // Composed JSONL: time-series meta + windows, then monitor samples.
  EXPECT_NE(result.telemetry_jsonl.find("\"type\":\"meta\""),
            std::string::npos);
  EXPECT_NE(result.telemetry_jsonl.find("\"type\":\"window\""),
            std::string::npos);
  EXPECT_NE(result.telemetry_jsonl.find("\"type\":\"sample\""),
            std::string::npos);

  // No controller ran, so the monitor's analytic fit is the predictor of
  // record and no decision is active.
  EXPECT_EQ(result.metrics_header.predictor_backend, "analytic");
  EXPECT_EQ(result.metrics_header.active_decision_id, -1);
  EXPECT_GT(result.metrics_header.snapshot_time_ms, 0.0);

  // The scored stream made it out of the cluster before teardown.
  EXPECT_EQ(result.monitor_samples.size(),
            static_cast<size_t>(result.timeseries.windows_cut()));
}

TEST(KvsTelemetryTest, AuditRowsJoinTimeseriesWindowsById) {
  StalenessExperimentOptions options = TelemetryExperiment();
  options.writes = 120;
  options.cluster.obs.trace_enabled = true;
  const StalenessExperimentResult result = RunStalenessExperiment(options);
  ASSERT_FALSE(result.trace.empty());

  const std::string audit = obs::StalenessAuditJsonl(
      result.trace, result.controller_history, /*stale_only=*/false,
      /*window_id_ms=*/options.cluster.obs.telemetry_window_ms);
  // Every audit row carries the window id of the telemetry cadence, so
  // offline joins against the window lines need no side channel.
  EXPECT_NE(audit.find("\"window_id\":"), std::string::npos);
  const std::string unwindowed = obs::StalenessAuditJsonl(
      result.trace, result.controller_history, /*stale_only=*/false);
  EXPECT_EQ(unwindowed.find("\"window_id\":"), std::string::npos);
}

TEST(KvsTelemetryTest, LegProfilerRingCapBoundsStorageNotCounts) {
  LegProfiler capped(/*max_samples_per_leg=*/4);
  for (int i = 0; i < 10; ++i) {
    capped.Record(LegProfiler::Leg::kReadResponse, static_cast<double>(i));
  }
  EXPECT_EQ(capped.count(LegProfiler::Leg::kReadResponse), 10u);
  ASSERT_EQ(capped.samples(LegProfiler::Leg::kReadResponse).size(), 4u);
  // The ring keeps the newest samples (order rotated, consumers sort).
  double newest_sum = 0.0;
  for (double s : capped.samples(LegProfiler::Leg::kReadResponse)) {
    newest_sum += s;
  }
  EXPECT_DOUBLE_EQ(newest_sum, 6.0 + 7.0 + 8.0 + 9.0);

  LegProfiler unbounded;
  for (int i = 0; i < 10; ++i) {
    unbounded.Record(LegProfiler::Leg::kWriteAck, 1.0);
  }
  EXPECT_EQ(unbounded.samples(LegProfiler::Leg::kWriteAck).size(), 10u);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
