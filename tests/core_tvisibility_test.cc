#include "core/tvisibility.h"

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/closed_form.h"
#include "dist/primitives.h"
#include "dist/production.h"

namespace pbs {
namespace {

TEST(TVisibilityCurveTest, EcdfOfThresholds) {
  TVisibilityCurve curve({0.0, 0.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(0.0), 0.4);
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(1.0), 0.6);
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(3.0), 0.8);
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(4.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(100.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.ProbStale(1.0), 0.4);
  EXPECT_DOUBLE_EQ(curve.ProbImmediatelyConsistent(), 0.4);
}

TEST(TVisibilityCurveTest, TimeForConsistencyInvertsTheCurve) {
  TVisibilityCurve curve({0.0, 0.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(0.4), 0.0);
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(0.6), 1.0);
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(0.8), 2.0);
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(1.0), 4.0);
  // Just above a step requires the next threshold.
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(0.61), 2.0);
}

TEST(TVisibilityCurveTest, TimeForConsistencyBoundaryRanks) {
  // p = 1/n selects the first threshold, p = 1.0 the last — exactly, with
  // no epsilon in sight.
  TVisibilityCurve small({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(small.TimeForConsistency(1.0 / 5.0), 1.0);
  EXPECT_DOUBLE_EQ(small.TimeForConsistency(1.0), 5.0);
  // p = 0.2 covers exactly the first of five thresholds (coverage 1/5 as a
  // double IS 0.2); the old epsilon dance answered this by luck.
  EXPECT_DOUBLE_EQ(small.TimeForConsistency(0.2), 1.0);

  // n = 10^6: thresholds[i] = i, so the rank is directly readable from the
  // returned value. p = 0.999 must pick rank 999000, p = 1/n rank 1.
  std::vector<double> big(1000000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
  TVisibilityCurve curve(std::move(big));
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(0.999), 998999.0);
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(1e-6), 0.0);
  EXPECT_DOUBLE_EQ(curve.TimeForConsistency(1.0), 999999.0);
  // Round trip at the boundary: the chosen t really does cover p.
  EXPECT_GE(curve.ProbConsistent(curve.TimeForConsistency(0.999)), 0.999);
}

TEST(TVisibilityCurveTest, InverseRoundTripProperty) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const TVisibilityCurve curve =
      EstimateTVisibility({3, 1, 1}, model, 50000, /*seed=*/21);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const double t = curve.TimeForConsistency(p);
    EXPECT_GE(curve.ProbConsistent(t), p) << "p=" << p;
  }
}

TEST(TVisibilityCurveTest, CurveIsMonotoneInT) {
  const auto model = MakeIidModel(Ymmr(), 3);
  const TVisibilityCurve curve =
      EstimateTVisibility({3, 1, 1}, model, 20000, /*seed=*/22);
  double prev = 0.0;
  for (double t = 0.0; t <= 2000.0; t += 10.0) {
    const double p = curve.ProbConsistent(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(TVisibilityCurveTest, ConfidenceIntervalBracketsTheEstimate) {
  TVisibilityCurve curve({0.0, 0.0, 0.0, 1.0, 2.0});
  const auto interval = curve.ProbConsistentInterval(0.5, 0.95);
  EXPECT_LE(interval.lower, 0.6);
  EXPECT_GE(interval.upper, 0.6);
  EXPECT_GT(interval.upper - interval.lower, 0.0);
  // More trials tighten the interval around the same proportion.
  std::vector<double> many;
  for (int i = 0; i < 6000; ++i) many.push_back(i % 5 < 3 ? 0.0 : 2.0);
  TVisibilityCurve big(std::move(many));
  const auto tight = big.ProbConsistentInterval(0.5, 0.95);
  EXPECT_LT(tight.upper - tight.lower, interval.upper - interval.lower);
}

TEST(EmpiricalPwTest, CdfStructure) {
  // Hand-built propagation columns for N=3, 4 trials. Column c holds the
  // time until (c+1) replicas have the version.
  WarsTrialSet set;
  set.propagation = {{0.0, 0.0, 0.0, 0.0},
                     {0.0, 1.0, 2.0, 3.0},
                     {5.0, 5.0, 5.0, 9.0}};
  // At t=2: Wr<=0 iff prop[0] > 2 (never) -> 0.
  //         Wr<=1 iff prop[1] > 2 (one trial: 3.0) -> 0.25.
  //         Wr<=2 iff prop[2] > 2 (all) -> 1.0.
  const auto pw = EmpiricalPwAt(set, 3, 2.0);
  ASSERT_EQ(pw.size(), 4u);
  EXPECT_DOUBLE_EQ(pw[0], 0.0);
  EXPECT_DOUBLE_EQ(pw[1], 0.25);
  EXPECT_DOUBLE_EQ(pw[2], 1.0);
  EXPECT_DOUBLE_EQ(pw[3], 1.0);
}

TEST(EmpiricalPwTest, FullPropagationAtLargeT) {
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const auto set = RunWarsTrials({3, 1, 1}, model, 20000, /*seed=*/23,
                                 /*want_propagation=*/true);
  const auto pw = EmpiricalPwAt(set, 3, 1e6);
  EXPECT_DOUBLE_EQ(pw[0], 0.0);
  EXPECT_DOUBLE_EQ(pw[1], 0.0);
  EXPECT_DOUBLE_EQ(pw[2], 0.0);
  EXPECT_DOUBLE_EQ(pw[3], 1.0);
}

TEST(EmpiricalPwTest, Equation4BoundsObservedStaleness) {
  // Equation 4 is a conservative upper bound on pst (it ignores the time
  // reads spend in flight). Verify bound >= Monte Carlo staleness.
  const QuorumConfig config{3, 1, 1};
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const auto set = RunWarsTrials(config, model, 100000, /*seed=*/24,
                                 /*want_propagation=*/true);
  const TVisibilityCurve curve{
      std::vector<double>(set.staleness_thresholds)};
  for (double t : {0.0, 1.0, 5.0, 10.0, 50.0}) {
    const auto pw = EmpiricalPwAt(set, 3, t);
    const double bound = TVisibilityStalenessBound(config, pw);
    const double actual = curve.ProbStale(t);
    // Both sides are estimates from the same finite sample; deep in the
    // tail (p ~ 1e-3) their difference carries a binomial standard error of
    // ~sqrt(p/n) ~ 1e-4, so allow a few standard errors rather than exact
    // dominance.
    EXPECT_GE(bound + 5e-4, actual) << "t=" << t;
  }
}

TEST(KTStalenessTest, LongSpacingMeansFresh) {
  // Writes 1000ms apart with millisecond-scale legs: by read time all
  // versions are everywhere; staleness 0 dominates.
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const auto result =
      EstimateKTStaleness({3, 1, 1}, model, PointMass(1000.0), /*t=*/10.0,
                          /*history=*/5, /*trials=*/4000, /*seed=*/25);
  EXPECT_GT(result.histogram[0], 3900);
  EXPECT_LT(result.MeanStaleness(), 0.05);
}

TEST(KTStalenessTest, RapidWritesIncreaseVersionStaleness) {
  // Writes every 1ms under a slow-write distribution: reads observe old
  // versions several writes back.
  const auto dists = MakeWars("slow", Exponential(0.05), Exponential(1.0));
  const auto model = MakeIidModel(dists, 3);
  const auto slow = EstimateKTStaleness({3, 1, 1}, model, PointMass(1.0),
                                        /*t=*/0.0, /*history=*/30,
                                        /*trials=*/4000, /*seed=*/26);
  const auto spaced = EstimateKTStaleness({3, 1, 1}, model, PointMass(100.0),
                                          /*t=*/0.0, /*history=*/30,
                                          /*trials=*/4000, /*seed=*/26);
  EXPECT_GT(slow.MeanStaleness(), spaced.MeanStaleness());
  // P(staler than k) decreases in k.
  double prev = 1.1;
  for (int k = 0; k <= 5; ++k) {
    const double p = slow.ProbStalerThan(k);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(KTStalenessTest, StrictQuorumIsNeverStaleEvenUnderChurn) {
  const auto dists = MakeWars("slow", Exponential(0.05), Exponential(1.0));
  const auto model = MakeIidModel(dists, 3);
  const auto result = EstimateKTStaleness({3, 2, 2}, model, PointMass(1.0),
                                          /*t=*/0.0, /*history=*/10,
                                          /*trials=*/3000, /*seed=*/27);
  // In-flight (uncommitted) newer versions do not count as staleness; a
  // strict quorum always returns at least the newest *committed* version.
  EXPECT_DOUBLE_EQ(result.ProbStalerThan(1), 0.0);
}

}  // namespace
}  // namespace pbs
