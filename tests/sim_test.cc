#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbs {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(3.0, [&]() { order.push_back(3); });
  queue.Push(1.0, [&]() { order.push_back(1); });
  queue.Push(2.0, [&]() { order.push_back(2); });
  while (!queue.empty()) queue.Pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5.0, [&order, i]() { order.push_back(i); });
  }
  while (!queue.empty()) queue.Pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ReportsNextTime) {
  EventQueue queue;
  queue.Push(7.5, []() {});
  queue.Push(2.5, []() {});
  EXPECT_DOUBLE_EQ(queue.NextTime(), 2.5);
  double time = 0.0;
  queue.Pop(&time);
  EXPECT_DOUBLE_EQ(time, 2.5);
  EXPECT_DOUBLE_EQ(queue.NextTime(), 7.5);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(5.0, [&]() { times.push_back(sim.now()); });
  sim.Schedule(1.0, [&]() { times.push_back(sim.now()); });
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<std::string> log;
  sim.Schedule(1.0, [&]() {
    log.push_back("outer@" + std::to_string(static_cast<int>(sim.now())));
    sim.Schedule(2.0, [&]() {
      log.push_back("inner@" + std::to_string(static_cast<int>(sim.now())));
    });
  });
  sim.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "outer@1");
  EXPECT_EQ(log[1], "inner@3");
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&]() { ++fired; });
  sim.Schedule(10.0, [&]() { ++fired; });
  const size_t processed = sim.RunUntil(5.0);
  EXPECT_EQ(processed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_TRUE(sim.HasPendingEvents());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SelfReschedulingBoundedByMaxEvents) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&]() {
    ++ticks;
    sim.Schedule(1.0, tick);
  };
  sim.Schedule(1.0, tick);
  sim.Run(/*max_events=*/100);
  EXPECT_EQ(ticks, 100);
}

TEST(NetworkTest, DeliversWithExplicitDelay) {
  Simulator sim;
  Network net(&sim, /*seed=*/1);
  double delivered_at = -1.0;
  EXPECT_TRUE(net.SendWithDelay(0, 1, 4.5, [&]() {
    delivered_at = sim.now();
  }));
  sim.Run();
  EXPECT_DOUBLE_EQ(delivered_at, 4.5);
  EXPECT_EQ(net.messages_sent(), 1);
}

TEST(NetworkTest, DefaultAndPerLinkLatency) {
  Simulator sim;
  Network net(&sim, /*seed=*/2);
  net.set_default_latency(PointMass(1.0));
  net.SetLinkLatency(0, 2, PointMass(9.0));
  std::vector<double> deliveries;
  net.Send(0, 1, [&]() { deliveries.push_back(sim.now()); });
  net.Send(0, 2, [&]() { deliveries.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0], 1.0);
  EXPECT_DOUBLE_EQ(deliveries[1], 9.0);
}

TEST(NetworkTest, PartitionBlocksBothDirections) {
  Simulator sim;
  Network net(&sim, /*seed=*/3);
  net.SetPartitioned(0, 1, true);
  EXPECT_TRUE(net.IsPartitioned(1, 0));
  int delivered = 0;
  EXPECT_FALSE(net.SendWithDelay(0, 1, 1.0, [&]() { ++delivered; }));
  EXPECT_FALSE(net.SendWithDelay(1, 0, 1.0, [&]() { ++delivered; }));
  EXPECT_TRUE(net.SendWithDelay(0, 2, 1.0, [&]() { ++delivered; }));
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_dropped(), 2);
  // Heal and retry.
  net.SetPartitioned(0, 1, false);
  EXPECT_TRUE(net.SendWithDelay(0, 1, 1.0, [&]() { ++delivered; }));
  sim.Run();
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, DropProbabilityIsRespected) {
  Simulator sim;
  Network net(&sim, /*seed=*/4);
  net.set_drop_probability(0.25);
  int delivered = 0;
  const int messages = 40000;
  for (int i = 0; i < messages; ++i) {
    (void)net.SendWithDelay(0, 1, 0.0, [&]() { ++delivered; });
  }
  sim.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / messages, 0.75, 0.01);
  EXPECT_EQ(net.messages_sent() + net.messages_dropped(), messages);
}

}  // namespace
}  // namespace pbs
