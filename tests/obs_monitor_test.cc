// Live predictor-drift monitor (DESIGN.md §13): drift scoring, the
// streak state machines (onset-only alerts, thin/warmup freezing), burn
// rate and mitigation storms, registry export, and the JSONL bytes.

#include <string>

#include <gtest/gtest.h>

#include "obs/monitor.h"
#include "obs/registry.h"

namespace pbs {
namespace obs {
namespace {

// A thick, healthy window: measured matches prediction exactly.
WindowSample Healthy(int64_t id) {
  WindowSample s;
  s.window_id = id;
  s.start_ms = static_cast<double>(id) * 500.0;
  s.end_ms = s.start_ms + 500.0;
  s.reads = 100;
  s.fresh = 100;
  s.read_p50_ms = 1.0;
  s.read_p99_ms = 2.0;
  s.predicted_valid = true;
  s.predicted_fresh = 1.0;
  s.predicted_p99_ms = 4.0;
  return s;
}

// Same window, but half the reads went stale: with the default 0.15
// freshness tolerance the gap of 0.5 scores well past 1.0.
WindowSample Drifting(int64_t id) {
  WindowSample s = Healthy(id);
  s.fresh = 50;
  s.stale = 50;
  return s;
}

MonitorOptions FastOptions() {
  MonitorOptions options;
  options.warmup_windows = 0;
  options.min_reads_per_window = 1;
  options.drift_windows = 2;
  return options;
}

TEST(MonitorOptionsTest, ValidateRejectsOutOfRangeFields) {
  EXPECT_TRUE(MonitorOptions{}.Validate().ok());
  {
    MonitorOptions o;
    o.warmup_windows = -1;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.min_reads_per_window = -1;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.drift_fresh_tolerance = 0.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.drift_p99_relative_tolerance = -0.5;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.drift_windows = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.burn_rate_factor = 0.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.storm_fraction = 0.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.sla_fresh_probability = 1.0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    MonitorOptions o;
    o.min_leg_samples = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
}

TEST(MonitorTest, AlertKindNamesAreStable) {
  EXPECT_STREQ(AlertKindName(AlertKind::kPredictionDrift),
               "prediction_drift");
  EXPECT_STREQ(AlertKindName(AlertKind::kSlaBurnRate), "sla_burn_rate");
  EXPECT_STREQ(AlertKindName(AlertKind::kHedgeStorm), "hedge_storm");
  EXPECT_STREQ(AlertKindName(AlertKind::kRetryStorm), "retry_storm");
}

TEST(MonitorTest, DriftAlertFiresOnceAtStreakOnset) {
  ConsistencyMonitor monitor(FastOptions());
  monitor.ObserveWindow(Healthy(0));
  EXPECT_TRUE(monitor.alerts().empty());

  monitor.ObserveWindow(Drifting(1));  // streak 1
  EXPECT_TRUE(monitor.alerts().empty());
  monitor.ObserveWindow(Drifting(2));  // streak 2 == drift_windows: onset
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].kind, AlertKind::kPredictionDrift);
  EXPECT_EQ(monitor.alerts()[0].window_id, 2);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].threshold, 1.0);

  // Continued drift does not re-alert...
  monitor.ObserveWindow(Drifting(3));
  monitor.ObserveWindow(Drifting(4));
  EXPECT_EQ(monitor.alerts().size(), 1u);

  // ...but recovery resets the streak, and a new streak alerts again.
  monitor.ObserveWindow(Healthy(5));
  monitor.ObserveWindow(Drifting(6));
  monitor.ObserveWindow(Drifting(7));
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[1].window_id, 7);
}

TEST(MonitorTest, DriftScoreExportedEvenWhenNoAlertFires) {
  ConsistencyMonitor monitor(FastOptions());
  const WindowSample& scored = monitor.ObserveWindow(Drifting(0));
  // Gap 0.5 over the default 0.15 tolerance.
  EXPECT_NEAR(scored.drift_score, 0.5 / 0.15, 1e-12);
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(MonitorTest, ThinWindowsFreezeStreaksInsteadOfResetting) {
  MonitorOptions options = FastOptions();
  options.min_reads_per_window = 50;
  ConsistencyMonitor monitor(options);

  monitor.ObserveWindow(Drifting(0));  // streak 1
  WindowSample thin = Drifting(1);
  thin.reads = 10;  // below min_reads_per_window: no signal
  thin.fresh = 5;
  thin.stale = 5;
  monitor.ObserveWindow(thin);
  EXPECT_TRUE(monitor.alerts().empty());
  // The thin window neither advanced nor reset the streak: the next
  // drifting window completes it.
  monitor.ObserveWindow(Drifting(2));
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].window_id, 2);
}

TEST(MonitorTest, WarmupWindowsAreScoredButNeverAlert) {
  MonitorOptions options = FastOptions();
  options.warmup_windows = 2;
  options.drift_windows = 1;
  ConsistencyMonitor monitor(options);

  monitor.ObserveWindow(Drifting(0));
  monitor.ObserveWindow(Drifting(1));
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_GT(monitor.samples()[0].drift_score, 1.0);  // scored regardless
  monitor.ObserveWindow(Drifting(2));  // first post-warmup window
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].window_id, 2);
}

TEST(MonitorTest, LatencyDriftAlertsThroughTheP99Leg) {
  MonitorOptions options = FastOptions();
  options.drift_windows = 1;
  ConsistencyMonitor monitor(options);

  WindowSample slow = Healthy(0);  // freshness matches prediction exactly
  slow.read_p99_ms = 2.0 * slow.predicted_p99_ms;
  const WindowSample& scored = monitor.ObserveWindow(slow);
  // p99 overshoot of 1.0 against the default 0.75 relative tolerance.
  EXPECT_NEAR(scored.drift_score, 1.0 / 0.75, 1e-12);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].kind, AlertKind::kPredictionDrift);
}

TEST(MonitorTest, InvalidPredictionNeverCountsAsDrift) {
  MonitorOptions options = FastOptions();
  options.drift_windows = 1;
  ConsistencyMonitor monitor(options);

  WindowSample s = Drifting(0);
  s.predicted_valid = false;
  const WindowSample& scored = monitor.ObserveWindow(s);
  EXPECT_DOUBLE_EQ(scored.drift_score, 0.0);
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(MonitorTest, BurnRateAlertMeasuresAgainstErrorBudget) {
  MonitorOptions options = FastOptions();
  options.sla_fresh_probability = 0.9;  // error budget 0.1
  options.burn_windows = 2;
  ConsistencyMonitor monitor(options);

  // 25% stale = burn rate 2.5 against the default factor 2.0. Predictions
  // invalid so the drift machine stays out of the way.
  WindowSample burning = Healthy(0);
  burning.predicted_valid = false;
  burning.fresh = 75;
  burning.stale = 25;
  monitor.ObserveWindow(burning);
  EXPECT_TRUE(monitor.alerts().empty());
  burning.window_id = 1;
  monitor.ObserveWindow(burning);
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].kind, AlertKind::kSlaBurnRate);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].value, 2.5);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].threshold, 2.0);
}

TEST(MonitorTest, BurnRateDisabledWithoutSlaClause) {
  MonitorOptions options = FastOptions();  // sla_fresh_probability == 0
  ConsistencyMonitor monitor(options);
  WindowSample all_stale = Healthy(0);
  all_stale.predicted_valid = false;
  all_stale.fresh = 0;
  all_stale.stale = 100;
  for (int64_t id = 0; id < 4; ++id) {
    all_stale.window_id = id;
    monitor.ObserveWindow(all_stale);
  }
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(MonitorTest, HedgeAndRetryStormsFireIndependently) {
  MonitorOptions options = FastOptions();
  options.storm_windows = 1;
  ConsistencyMonitor monitor(options);

  WindowSample stormy = Healthy(0);
  stormy.hedges = 60;   // 0.6 of reads >= default 0.5 fraction
  stormy.retries = 50;  // exactly at the fraction: inclusive crossing
  monitor.ObserveWindow(stormy);
  ASSERT_EQ(monitor.alerts().size(), 2u);
  EXPECT_EQ(monitor.alerts()[0].kind, AlertKind::kHedgeStorm);
  EXPECT_DOUBLE_EQ(monitor.alerts()[0].value, 0.6);
  EXPECT_EQ(monitor.alerts()[1].kind, AlertKind::kRetryStorm);
  EXPECT_DOUBLE_EQ(monitor.alerts()[1].value, 0.5);
}

TEST(MonitorTest, ExportToEmitsWindowAlertAndPerKindCounters) {
  MonitorOptions options = FastOptions();
  ConsistencyMonitor monitor(options);
  monitor.ObserveWindow(Healthy(0));
  monitor.ObserveWindow(Drifting(1));
  monitor.ObserveWindow(Drifting(2));

  Registry registry;
  monitor.ExportTo(&registry);
  ASSERT_NE(registry.FindCounter("obs/monitor_windows"), nullptr);
  EXPECT_EQ(registry.FindCounter("obs/monitor_windows")->value, 3);
  ASSERT_NE(registry.FindCounter("obs/monitor_alerts"), nullptr);
  EXPECT_EQ(registry.FindCounter("obs/monitor_alerts")->value, 1);
  ASSERT_NE(registry.FindCounter("obs/alerts/prediction_drift"), nullptr);
  EXPECT_EQ(registry.FindCounter("obs/alerts/prediction_drift")->value, 1);
  EXPECT_EQ(registry.FindCounter("obs/alerts/hedge_storm"), nullptr);
}

TEST(MonitorJsonlTest, GoldenBytes) {
  MonitorOptions options;
  options.warmup_windows = 0;
  options.min_reads_per_window = 1;
  options.drift_windows = 1;
  options.drift_fresh_tolerance = 0.25;
  ConsistencyMonitor monitor(options);

  WindowSample plain;  // no prediction yet: predicted fields omitted
  plain.window_id = 0;
  plain.end_ms = 500.0;
  plain.reads = 4;
  plain.fresh = 4;
  plain.read_p50_ms = 1.0;
  plain.read_p99_ms = 2.0;
  monitor.ObserveWindow(plain);

  WindowSample drifted;
  drifted.window_id = 1;
  drifted.start_ms = 500.0;
  drifted.end_ms = 1000.0;
  drifted.reads = 4;
  drifted.fresh = 2;
  drifted.stale = 2;
  drifted.read_p50_ms = 1.0;
  drifted.read_p99_ms = 2.0;
  drifted.predicted_valid = true;
  drifted.predicted_fresh = 1.0;
  drifted.predicted_p99_ms = 4.0;
  monitor.ObserveWindow(drifted);  // gap 0.5 / tolerance 0.25 = drift 2

  const std::string expected =
      "{\"type\":\"sample\",\"window_id\":0,\"start_ms\":0,\"end_ms\":500,"
      "\"reads\":4,\"fresh\":4,\"stale\":0,\"failed\":0,\"hedges\":0,"
      "\"retries\":0,\"measured_fresh\":1,\"read_p50_ms\":1,"
      "\"read_p99_ms\":2,\"drift_score\":0}\n"
      "{\"type\":\"sample\",\"window_id\":1,\"start_ms\":500,"
      "\"end_ms\":1000,\"reads\":4,\"fresh\":2,\"stale\":2,\"failed\":0,"
      "\"hedges\":0,\"retries\":0,\"measured_fresh\":0.5,"
      "\"read_p50_ms\":1,\"read_p99_ms\":2,\"predicted_fresh\":1,"
      "\"predicted_p99_ms\":4,\"drift_score\":2}\n"
      "{\"type\":\"alert\",\"kind\":\"prediction_drift\",\"window_id\":1,"
      "\"time_ms\":1000,\"value\":2,\"threshold\":1,\"detail\":\"measured "
      "freshness/latency left the predicted band\"}\n";
  EXPECT_EQ(MonitorJsonl(monitor), expected);
}

}  // namespace
}  // namespace obs
}  // namespace pbs
