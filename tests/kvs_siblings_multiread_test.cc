#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/siblings.h"

namespace pbs {
namespace kvs {
namespace {

VersionedValue Versioned(const std::string& value, int32_t writer,
                         double timestamp,
                         const std::vector<int>& clock_entries) {
  VersionedValue v;
  v.value = value;
  v.stamp = {timestamp, writer};
  for (int node : clock_entries) v.clock.Increment(node);
  return v;
}

TEST(SiblingSetTest, LinearHistoryKeepsOnlyNewest) {
  SiblingSet set;
  EXPECT_TRUE(set.Add(Versioned("v1", 1, 1.0, {1})));
  EXPECT_TRUE(set.Add(Versioned("v2", 1, 2.0, {1, 1})));
  EXPECT_EQ(set.versions().size(), 1u);
  EXPECT_EQ(set.versions()[0].value, "v2");
  EXPECT_FALSE(set.HasConflict());
}

TEST(SiblingSetTest, DominatedIncomingRejected) {
  SiblingSet set;
  set.Add(Versioned("v2", 1, 2.0, {1, 1}));
  EXPECT_FALSE(set.Add(Versioned("v1", 1, 1.0, {1})));
  EXPECT_EQ(set.versions().size(), 1u);
  // Re-adding the identical clock is also a no-op.
  EXPECT_FALSE(set.Add(Versioned("v2", 1, 2.0, {1, 1})));
}

TEST(SiblingSetTest, ConcurrentWritesBecomeSiblings) {
  SiblingSet set;
  set.Add(Versioned("alice", 1, 1.0, {1}));
  EXPECT_TRUE(set.Add(Versioned("bob", 2, 1.5, {2})));
  EXPECT_TRUE(set.HasConflict());
  EXPECT_EQ(set.versions().size(), 2u);
}

TEST(SiblingSetTest, ReconciliationDominatesAllSiblings) {
  SiblingSet set;
  set.Add(Versioned("alice", 1, 1.0, {1}));
  set.Add(Versioned("bob", 2, 1.5, {2}));
  const VersionedValue merged = set.Reconcile(/*writer=*/3, /*timestamp=*/2.0);
  for (const VersionedValue& sibling : set.versions()) {
    EXPECT_EQ(sibling.clock.Compare(merged.clock), CausalOrder::kBefore);
  }
  // LWW payload among siblings: bob's (newer stamp).
  EXPECT_EQ(merged.value, "bob");
  // Writing the reconciliation back collapses the conflict.
  SiblingSet after;
  after.MergeFrom(set);
  EXPECT_TRUE(after.Add(merged));
  EXPECT_FALSE(after.HasConflict());
  EXPECT_EQ(after.versions()[0].value, "bob");
}

TEST(SiblingSetTest, MergeFromIsIdempotentAndCommutative) {
  SiblingSet a;
  a.Add(Versioned("x", 1, 1.0, {1}));
  SiblingSet b;
  b.Add(Versioned("y", 2, 2.0, {2}));
  SiblingSet ab = a;
  ab.MergeFrom(b);
  SiblingSet ba = b;
  ba.MergeFrom(a);
  EXPECT_EQ(ab.versions().size(), 2u);
  EXPECT_EQ(ba.versions().size(), 2u);
  EXPECT_FALSE(ab.MergeFrom(b));  // idempotent
}

TEST(SiblingSetTest, ThreeWayConcurrencyPrunedByOneDominator) {
  SiblingSet set;
  set.Add(Versioned("a", 1, 1.0, {1}));
  set.Add(Versioned("b", 2, 1.0, {2}));
  set.Add(Versioned("c", 3, 1.0, {3}));
  EXPECT_EQ(set.versions().size(), 3u);
  // A version that saw a and b (but not c) prunes exactly those two.
  VersionedValue ab = Versioned("ab", 1, 2.0, {1, 2});
  ab.clock.Increment(1);
  EXPECT_TRUE(set.Add(ab));
  EXPECT_EQ(set.versions().size(), 2u);  // {ab, c}
}

TEST(SiblingStorageTest, TracksConflictedKeys) {
  SiblingStorage storage;
  storage.Put(1, Versioned("a", 1, 1.0, {1}));
  storage.Put(1, Versioned("b", 2, 1.0, {2}));
  storage.Put(2, Versioned("x", 1, 1.0, {1}));
  EXPECT_EQ(storage.num_keys(), 2u);
  EXPECT_EQ(storage.num_conflicted_keys(), 1);
  ASSERT_NE(storage.Get(1), nullptr);
  EXPECT_TRUE(storage.Get(1)->HasConflict());
  EXPECT_EQ(storage.Get(99), nullptr);
}

// ---------------------------------------------------------------------------
// Multi-key reads

WarsDistributions PointMassLegs() {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

TEST(MultiReadTest, ReturnsPerKeyResultsAligned) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs();
  config.request_timeout_ms = 50.0;
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(10, "ten", nullptr);
  client.Write(20, "twenty", nullptr);
  cluster.sim().Run();

  std::optional<ClientSession::MultiReadResult> result;
  client.MultiRead({10, 20, 30}, [&](const auto& r) { result = r; });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  ASSERT_EQ(result->results.size(), 3u);
  EXPECT_EQ(result->results[0].value->value, "ten");
  EXPECT_EQ(result->results[1].value->value, "twenty");
  EXPECT_FALSE(result->results[2].value.has_value());  // never written
  EXPECT_DOUBLE_EQ(result->latency_ms, 2.0);  // parallel, not serial
}

TEST(MultiReadTest, EmptyKeyListCompletesImmediately) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs();
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  bool called = false;
  client.MultiRead({}, [&](const auto& r) {
    called = true;
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.results.empty());
  });
  EXPECT_TRUE(called);
}

TEST(MultiReadTest, AllFreshProbabilityDecaysWithWidth) {
  // The Section 6 product rule, observed end-to-end: the probability that
  // EVERY key of a multi-key probe is fresh decays with the key count.
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = MakeWars("slow", Exponential(0.1), Exponential(1.0));
  config.request_timeout_ms = 1000.0;
  config.seed = 77;
  Cluster cluster(config);
  ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  ClientSession reader(&cluster, cluster.coordinator(0).id(), 2);

  auto measure = [&](const std::vector<Key>& keys) {
    int64_t probes = 0;
    int64_t all_fresh = 0;
    const double start = cluster.sim().now();
    struct Round {
      std::vector<int64_t> expected;
      size_t written = 0;
    };
    for (int i = 0; i < 2500; ++i) {
      cluster.sim().At(start + i * 300.0, [&, keys]() {
        auto round = std::make_shared<Round>();
        round->expected.resize(keys.size());
        for (size_t k = 0; k < keys.size(); ++k) {
          round->expected[k] = cluster.LatestSequenceFor(keys[k]) + 1;
          writer.Write(keys[k], "v", [&, keys, round](const WriteResult& w) {
            if (!w.ok) return;
            if (++round->written < keys.size()) return;
            // All writes committed: probe immediately.
            reader.MultiRead(keys, [&, keys, round](const auto& r) {
              if (!r.ok) return;
              ++probes;
              bool fresh = true;
              for (size_t j = 0; j < keys.size(); ++j) {
                const auto& value = r.results[j].value;
                fresh = fresh && value.has_value() &&
                        value->sequence >= round->expected[j];
              }
              if (fresh) ++all_fresh;
            });
          });
        }
      });
    }
    cluster.sim().Run();
    return static_cast<double>(all_fresh) / static_cast<double>(probes);
  };

  const double one_key = measure({101});
  const double four_keys = measure({201, 202, 203, 204});
  EXPECT_LT(four_keys, one_key - 0.1);
  EXPECT_GT(one_key, 0.2);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
