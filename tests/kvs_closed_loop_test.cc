// End-to-end closed control loop (the paper's Section 6 vision): profile
// WARS legs online from the running cluster, feed them to the adaptive
// controller, and apply its recommendation back to the live cluster —
// measure online, predict, reconfigure.

#include <optional>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/profiler.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions PointMassLegs(double ms) {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(ms);
  legs.a = PointMass(ms);
  legs.r = PointMass(ms);
  legs.s = PointMass(ms);
  return legs;
}

TEST(LiveReconfigurationTest, UpdateQuorumValidates) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs(1.0);
  Cluster cluster(config);
  EXPECT_TRUE(cluster.UpdateQuorum(2, 2).ok());
  EXPECT_EQ(cluster.config().quorum, (QuorumConfig{3, 2, 2}));
  EXPECT_FALSE(cluster.UpdateQuorum(4, 1).ok());  // R > N
  EXPECT_FALSE(cluster.UpdateQuorum(1, 0).ok());  // W < 1
  EXPECT_EQ(cluster.config().quorum, (QuorumConfig{3, 2, 2}));
}

TEST(LiveReconfigurationTest, InFlightOperationsKeepTheirQuorum) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs(1.0);
  config.request_timeout_ms = 50.0;
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);

  // Read launched under R=1 (responses land at t=2), reconfigured to R=3
  // at t=0.5: the in-flight read must still return after one response.
  std::optional<ReadResult> result;
  client.Read(1, [&](const ReadResult& r) { result = r; });
  cluster.sim().Schedule(0.5, [&]() {
    ASSERT_TRUE(cluster.UpdateQuorum(3, 3).ok());
  });
  cluster.sim().Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_DOUBLE_EQ(result->latency_ms, 2.0);

  // The next read runs under the new R=3 (same point-mass legs: latency
  // still 2.0 but it now waits for all three responses — verify via a
  // crashed replica, which must now stall the read into the timeout).
  cluster.replica(0).Crash();
  std::optional<ReadResult> strict_read;
  client.Read(1, [&](const ReadResult& r) { strict_read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(strict_read.has_value());
  EXPECT_FALSE(strict_read->ok);  // R=3 unreachable with a dead replica
}

TEST(LiveReconfigurationTest, UpdateLegsTakesEffectImmediately) {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = PointMassLegs(1.0);
  Cluster cluster(config);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);

  std::optional<WriteResult> fast;
  client.Write(1, "a", [&](const WriteResult& r) { fast = r; });
  cluster.sim().Run();
  EXPECT_DOUBLE_EQ(fast->latency_ms, 2.0);

  cluster.UpdateLegs(PointMassLegs(5.0));
  std::optional<WriteResult> slow;
  client.Write(1, "b", [&](const WriteResult& r) { slow = r; });
  cluster.sim().Run();
  EXPECT_DOUBLE_EQ(slow->latency_ms, 10.0);
}

TEST(ClosedLoopTest, ProfileRecommendApplyAcrossRegimeShift) {
  // Phase 1: SSD-era legs; the profiled model keeps R=W=1 under a
  // 10 ms @ 99.9% SLA. Phase 2: the environment degrades to slow
  // heavy-tailed writes; profiling again, the controller reconfigures the
  // live cluster, restoring the SLA (verified by probing staleness).
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = LnkdSsd();
  config.request_timeout_ms = 5000.0;
  config.num_coordinators = 2;
  config.seed = 4242;
  Cluster cluster(config);
  ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  ClientSession reader(&cluster, cluster.coordinator(1).id(), 2);

  AdaptiveControllerOptions controller_options;
  controller_options.consistency_probability = 0.999;
  controller_options.max_t_visibility_ms = 10.0;
  controller_options.trials_per_eval = 20000;
  AdaptiveConfigController controller(config.quorum, controller_options);

  auto run_phase = [&](int ops, double spacing) {
    LegProfiler profiler;
    cluster.set_leg_profiler(&profiler);
    const double start = cluster.sim().now();
    for (int i = 0; i < ops; ++i) {
      cluster.sim().At(start + i * spacing, [&]() {
        writer.Write(1, "v", nullptr);
        reader.Read(1, nullptr);
      });
    }
    cluster.sim().RunUntil(start + ops * spacing + 10000.0);
    cluster.set_leg_profiler(nullptr);
    return profiler.ToWarsDistributions("profiled");
  };

  // Phase 1 (SSD): profile, recommend, apply.
  const auto ssd_profile = run_phase(3000, 20.0);
  ASSERT_TRUE(ssd_profile.ok());
  QuorumConfig chosen =
      controller.Update(MakeIidModel(ssd_profile.value(), 3));
  ASSERT_TRUE(cluster.UpdateQuorum(chosen.r, chosen.w).ok());
  EXPECT_EQ(chosen, (QuorumConfig{3, 1, 1}));
  EXPECT_TRUE(controller.history().back().feasible);

  // Regime shift: writes now heavy-tailed (mean 20 ms).
  cluster.UpdateLegs(
      MakeWars("slow", Exponential(0.05), Exponential(1.0)));

  // Phase 2: profile the degraded legs, recommend, apply.
  const auto slow_profile = run_phase(3000, 100.0);
  ASSERT_TRUE(slow_profile.ok());
  chosen = controller.Update(MakeIidModel(slow_profile.value(), 3));
  ASSERT_TRUE(cluster.UpdateQuorum(chosen.r, chosen.w).ok());
  EXPECT_TRUE(controller.history().back().switched);
  EXPECT_TRUE(controller.history().back().feasible)
      << "controller failed to restore the SLA from profiled legs";

  // Verify on the live cluster: probe reads immediately after each commit
  // under the new configuration are (nearly) always fresh.
  int64_t probes = 0;
  int64_t fresh = 0;
  const double start = cluster.sim().now();
  for (int i = 0; i < 800; ++i) {
    cluster.sim().At(start + i * 200.0, [&]() {
      const int64_t expected = cluster.LatestSequenceFor(1) + 1;
      writer.Write(1, "p", [&, expected](const WriteResult& w) {
        if (!w.ok) return;
        reader.Read(1, [&, expected](const ReadResult& r) {
          if (!r.ok) return;
          ++probes;
          if (r.value.has_value() && r.value->sequence >= expected) ++fresh;
        });
      });
    });
  }
  cluster.sim().RunUntil(start + 800 * 200.0 + 20000.0);
  ASSERT_GT(probes, 700);
  const double p_fresh =
      static_cast<double>(fresh) / static_cast<double>(probes);
  EXPECT_GT(p_fresh, 0.99) << "post-reconfiguration staleness too high";
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
