#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "dist/trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pbs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/pbs_trace_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  std::string dir_;
};

TEST_F(TraceTest, SaveLoadRoundTrip) {
  const std::vector<double> samples = {1.5, 0.25, 100.0, 3.75};
  const std::string path = dir_ + "/trace.txt";
  ASSERT_TRUE(SaveLatencyTrace(path, samples).ok());
  const auto loaded = LoadLatencyTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), samples);
}

TEST_F(TraceTest, SkipsCommentsAndBlankLines) {
  const std::string path = dir_ + "/trace.txt";
  std::ofstream(path) << "# header\n\n 1.0\n\t2.0\n# tail\n3.0\n";
  const auto loaded = LoadLatencyTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST_F(TraceTest, RejectsGarbageWithLineNumber) {
  const std::string path = dir_ + "/trace.txt";
  std::ofstream(path) << "1.0\nnot-a-number\n";
  const auto loaded = LoadLatencyTrace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2"), std::string::npos);
}

TEST_F(TraceTest, RejectsNegativeLatencies) {
  const std::string path = dir_ + "/trace.txt";
  std::ofstream(path) << "1.0\n-3.0\n";
  EXPECT_FALSE(LoadLatencyTrace(path).ok());
}

TEST_F(TraceTest, MissingFileIsNotFound) {
  EXPECT_FALSE(LoadLatencyTrace(dir_ + "/nope.txt").ok());
}

TEST_F(TraceTest, EmptyFileRejected) {
  const std::string path = dir_ + "/trace.txt";
  std::ofstream(path) << "# only comments\n";
  EXPECT_FALSE(LoadLatencyTrace(path).ok());
}

TEST_F(TraceTest, LoadTraceDistributionIsEmpirical) {
  const std::string path = dir_ + "/trace.txt";
  ASSERT_TRUE(SaveLatencyTrace(path, {1.0, 2.0, 3.0, 4.0}).ok());
  const auto dist = LoadTraceDistribution(path);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(dist.value()->Mean(), 2.5);
  EXPECT_DOUBLE_EQ(dist.value()->Quantile(1.0), 4.0);
}

// ---------------------------------------------------------------------------
// Wilson confidence intervals

TEST(WilsonIntervalTest, ContainsThePointEstimate) {
  for (int64_t successes : {0, 1, 500, 999, 1000}) {
    const auto interval = WilsonInterval(successes, 1000);
    const double p = static_cast<double>(successes) / 1000.0;
    EXPECT_LE(interval.lower, p + 1e-12);
    EXPECT_GE(interval.upper, p - 1e-12);
    EXPECT_GE(interval.lower, 0.0);
    EXPECT_LE(interval.upper, 1.0);
  }
}

TEST(WilsonIntervalTest, KnownValue) {
  // 95% Wilson interval for 8/10: approx [0.49, 0.94].
  const auto interval = WilsonInterval(8, 10, 0.95);
  EXPECT_NEAR(interval.lower, 0.49, 0.02);
  EXPECT_NEAR(interval.upper, 0.94, 0.02);
}

TEST(WilsonIntervalTest, ShrinksWithMoreTrials) {
  const auto small = WilsonInterval(90, 100);
  const auto large = WilsonInterval(9000, 10000);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
}

TEST(WilsonIntervalTest, WidensWithMoreConfidence) {
  const auto c90 = WilsonInterval(500, 1000, 0.90);
  const auto c99 = WilsonInterval(500, 1000, 0.99);
  EXPECT_GT(c99.upper - c99.lower, c90.upper - c90.lower);
}

TEST(WilsonIntervalTest, ExtremeProportionsStayInBounds) {
  const auto zero = WilsonInterval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  const auto all = WilsonInterval(50, 50);
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
  EXPECT_LT(all.lower, 1.0);
}

TEST(WilsonIntervalTest, CoverageIsApproximatelyNominal) {
  // Simulate binomial experiments and check the 95% interval covers the
  // true p about 95% of the time.
  Rng rng(42);
  const double p = 0.999;  // the regime t-visibility estimates live in
  const int experiments = 2000;
  const int n = 5000;
  int covered = 0;
  for (int e = 0; e < experiments; ++e) {
    int successes = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.NextDouble() < p) ++successes;
    }
    const auto interval = WilsonInterval(successes, n);
    if (interval.lower <= p && p <= interval.upper) ++covered;
  }
  const double coverage = static_cast<double>(covered) / experiments;
  EXPECT_GT(coverage, 0.92);
  EXPECT_LE(coverage, 1.0);
}

}  // namespace
}  // namespace pbs
