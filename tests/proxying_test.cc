// Section 4.2 "Proxying operations": a coordinator that is itself a replica
// serves its own leg locally. Covers the WARS LocalCoordinator model and
// the KVS local fast path.

#include <optional>

#include <gtest/gtest.h>

#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/client.h"
#include "kvs/cluster.h"

namespace pbs {
namespace {

TEST(LocalCoordinatorModelTest, LocalReplicaHasZeroLegs) {
  WarsDistributions base;
  base.name = "pm";
  base.w = PointMass(5.0);
  base.a = PointMass(5.0);
  base.r = PointMass(5.0);
  base.s = PointMass(5.0);
  const auto model =
      MakeLocalCoordinatorModel(base, 3, /*same_coordinator=*/true);
  Rng rng(1);
  std::vector<ReplicaLegSample> legs;
  for (int trial = 0; trial < 500; ++trial) {
    model->SampleTrial(rng, &legs);
    int local = 0;
    for (const auto& leg : legs) {
      if (leg.w == 0.0) {
        ++local;
        // Same coordinator: the local replica is local for all four legs.
        EXPECT_EQ(leg.a, 0.0);
        EXPECT_EQ(leg.r, 0.0);
        EXPECT_EQ(leg.s, 0.0);
      } else {
        EXPECT_EQ(leg.w, 5.0);
      }
    }
    EXPECT_EQ(local, 1);
  }
}

TEST(LocalCoordinatorModelTest, SameCoordinatorGivesReadYourWrites) {
  // W=1 commits via the coordinator's own replica instantly; a same-
  // coordinator read's first responder is that same replica: R=W=1 becomes
  // always-consistent (the session-locality effect the paper's client-side
  // discussion hints at).
  const auto model = MakeLocalCoordinatorModel(LnkdDisk(), 3,
                                               /*same_coordinator=*/true);
  const auto curve =
      EstimateTVisibility({3, 1, 1}, model, 100000, /*seed=*/2);
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(0.0), 1.0);
}

TEST(LocalCoordinatorModelTest, IndependentCoordinatorWorseThanProxying) {
  // With R=W=1 and zero-cost local legs, the write commits instantly
  // (wt = 0: no ack round trip to shelter propagation) and the read's
  // first responder is always the read coordinator's own replica (zero
  // round trip). So P(consistent, t=0) collapses to exactly 1/N — the
  // probability the reader IS the writer's replica. Proxying through a
  // front-end does better (43.9% for LNKD-DISK): the coordinator round
  // trips are propagation headstart. This is the quantitative form of
  // Section 4.2's "a read or write to R nodes behaves like R-1".
  const auto model = MakeLocalCoordinatorModel(LnkdDisk(), 3,
                                               /*same_coordinator=*/false);
  const auto curve =
      EstimateTVisibility({3, 1, 1}, model, 200000, /*seed=*/3);
  const double p0 = curve.ProbConsistent(0.0);
  EXPECT_NEAR(p0, 1.0 / 3.0, 0.01);
  const auto proxied = EstimateTVisibility(
      {3, 1, 1}, MakeIidModel(LnkdDisk(), 3), 200000, /*seed=*/4);
  EXPECT_LT(p0, proxied.ProbConsistent(0.0));
}

TEST(KvsProxyingTest, ReplicaCoordinatorServesItselfInstantly) {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(5.0);
  legs.a = PointMass(5.0);
  legs.r = PointMass(5.0);
  legs.s = PointMass(5.0);
  kvs::KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = legs;
  config.request_timeout_ms = 100.0;
  kvs::Cluster cluster(config);
  // Session coordinated by replica 0 itself (not a dedicated proxy).
  kvs::ClientSession client(&cluster, cluster.replica(0).id(), 1);

  std::optional<kvs::WriteResult> write;
  client.Write(1, "v", [&](const kvs::WriteResult& r) { write = r; });
  cluster.sim().Run();
  ASSERT_TRUE(write.has_value());
  // W=1 satisfied by the local replica: latency 0, not 10.
  EXPECT_DOUBLE_EQ(write->latency_ms, 0.0);
  EXPECT_TRUE(cluster.replica(0).storage().Get(1).has_value());

  std::optional<kvs::ReadResult> read;
  client.Read(1, [&](const kvs::ReadResult& r) { read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_DOUBLE_EQ(read->latency_ms, 0.0);  // local read-your-write
  ASSERT_TRUE(read->value.has_value());
  EXPECT_EQ(read->value->value, "v");
}

TEST(KvsProxyingTest, DedicatedProxyStillPaysFullLegs) {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(5.0);
  legs.a = PointMass(5.0);
  legs.r = PointMass(5.0);
  legs.s = PointMass(5.0);
  kvs::KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = legs;
  config.request_timeout_ms = 100.0;
  kvs::Cluster cluster(config);
  kvs::ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  std::optional<kvs::WriteResult> write;
  client.Write(1, "v", [&](const kvs::WriteResult& r) { write = r; });
  cluster.sim().Run();
  EXPECT_DOUBLE_EQ(write->latency_ms, 10.0);  // w + a
}

}  // namespace
}  // namespace pbs
