#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/rebalance_experiment.h"
#include "obs/exporters.h"
#include "obs/registry.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions PointMassLegs(double ms) {
  WarsDistributions legs;
  legs.name = "pm";
  legs.w = PointMass(ms);
  legs.a = PointMass(ms);
  legs.r = PointMass(ms);
  legs.s = PointMass(ms);
  return legs;
}

KvsConfig ShardedConfig(int storage_nodes) {
  KvsConfig config;
  config.quorum = {3, 2, 2};
  config.legs = PointMassLegs(1.0);
  config.num_coordinators = 1;
  config.num_storage_nodes = storage_nodes;
  config.vnodes_per_node = 16;
  config.request_timeout_ms = 100.0;
  config.seed = 7;
  return config;
}

RebalanceRunOptions SmallRun() {
  RebalanceRunOptions options;
  options.cluster = ShardedConfig(8);
  options.keys = 48;
  options.writes = 240;
  options.write_spacing_ms = 4.0;
  options.read_offset_ms = 6.0;
  options.join_nodes = 1;
  options.remove_nodes = 1;
  options.seed = 11;
  return options;
}

TEST(ClusterMembershipTest, AddStorageNodeJoinsRingAndEventuallyActivates) {
  Cluster cluster(ShardedConfig(6));
  EXPECT_EQ(cluster.num_storage_members(), 6);
  EXPECT_EQ(cluster.ring_version(), 1u);  // 1-based (0 = "never observed")

  const StatusOr<NodeId> added = cluster.AddStorageNode();
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(cluster.num_storage_members(), 7);
  EXPECT_EQ(cluster.ring_version(), 2u);
  EXPECT_TRUE(cluster.ring().IsMember(added.value()));

  // An empty cluster has nothing to migrate: the rebalance drains on the
  // migrator's immediate pass and the joiner activates synchronously.
  EXPECT_FALSE(cluster.rebalance_active());
  ASSERT_EQ(cluster.membership_log().size(), 2u);
  EXPECT_EQ(cluster.membership_log()[0].state, Cluster::NodeState::kJoining);
  EXPECT_EQ(cluster.membership_log()[1].node, added.value());
  EXPECT_EQ(cluster.membership_log()[1].state, Cluster::NodeState::kActive);
  EXPECT_EQ(cluster.metrics().rebalances_started, 1);
  EXPECT_EQ(cluster.metrics().rebalances_completed, 1);
}

TEST(ClusterMembershipTest, RebalanceStaysActiveWhileDataDrains) {
  Cluster cluster(ShardedConfig(6));
  ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  for (int i = 1; i <= 30; ++i) {
    cluster.sim().At(static_cast<double>(i) * 5.0, [&, i]() {
      writer.Write(static_cast<Key>(i), "v" + std::to_string(i));
    });
  }
  cluster.sim().RunUntil(500.0);

  ASSERT_TRUE(cluster.AddStorageNode().ok());
  EXPECT_TRUE(cluster.rebalance_active());  // data to move: drain is async
  EXPECT_EQ(cluster.membership_log().back().state,
            Cluster::NodeState::kJoining);
  cluster.sim().RunUntil(5000.0);
  EXPECT_FALSE(cluster.rebalance_active());
  EXPECT_EQ(cluster.membership_log().back().state,
            Cluster::NodeState::kActive);
  EXPECT_GT(cluster.metrics().migration_transfers_delivered, 0);
}

TEST(ClusterMembershipTest, RemoveErrorsAreStatusTyped) {
  Cluster cluster(ShardedConfig(0));  // minimal deployment: exactly N = 3
  // A coordinator is not a ring member.
  EXPECT_EQ(cluster.RemoveStorageNode(cluster.coordinator(0).id()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cluster.RemoveStorageNode(999).code(), StatusCode::kNotFound);
  // Removal below quorum.n is refused.
  EXPECT_EQ(cluster.RemoveStorageNode(0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.num_storage_members(), 3);
}

TEST(ClusterMembershipTest, MembershipHookSeesEveryTransition) {
  Cluster cluster(ShardedConfig(6));
  std::vector<Cluster::MembershipEvent> seen;
  cluster.set_membership_hook(
      [&](const Cluster::MembershipEvent& event) { seen.push_back(event); });

  ASSERT_TRUE(cluster.AddStorageNode().ok());
  ASSERT_TRUE(cluster.RemoveStorageNode(0).ok());
  cluster.sim().RunUntil(2000.0);

  // Both changes hit an empty cluster, so each drains synchronously:
  // joining->active, then leaving->removed.
  ASSERT_EQ(seen.size(), cluster.membership_log().size());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].state, Cluster::NodeState::kJoining);
  EXPECT_EQ(seen[1].state, Cluster::NodeState::kActive);
  EXPECT_EQ(seen[1].node, seen[0].node);
  EXPECT_EQ(seen[2].state, Cluster::NodeState::kLeaving);
  EXPECT_EQ(seen[2].node, 0);
  EXPECT_EQ(seen[3].state, Cluster::NodeState::kRemoved);
  EXPECT_EQ(seen[3].node, 0);
  // The ring version recorded with each event is monotone.
  EXPECT_LE(seen[0].ring_version, seen[2].ring_version);
}

TEST(ClusterMembershipTest, RemovedNodeIsDecommissionedAfterDrain) {
  KvsConfig config = ShardedConfig(6);
  Cluster cluster(config);
  // Seed some data so the removal actually migrates keys off the victim.
  ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  for (int i = 1; i <= 20; ++i) {
    cluster.sim().At(static_cast<double>(i) * 5.0, [&, i]() {
      writer.Write(static_cast<Key>(i), "v" + std::to_string(i));
    });
  }
  cluster.sim().RunUntil(500.0);

  ASSERT_TRUE(cluster.RemoveStorageNode(2).ok());
  EXPECT_TRUE(cluster.node(2).alive());  // keeps serving while draining
  cluster.sim().RunUntil(5000.0);
  EXPECT_FALSE(cluster.rebalance_active());
  EXPECT_FALSE(cluster.node(2).alive());  // decommissioned on drain
  EXPECT_EQ(cluster.metrics().nodes_removed, 1);
}

TEST(ClusterMembershipTest, DecommissionCanBeDisabled) {
  KvsConfig config = ShardedConfig(6);
  config.rebalance.decommission_removed = false;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.RemoveStorageNode(1).ok());
  cluster.sim().RunUntil(2000.0);
  EXPECT_FALSE(cluster.rebalance_active());
  EXPECT_TRUE(cluster.node(1).alive());
}

TEST(RebalanceExperimentTest, ConcurrentChurnLosesNoAcknowledgedWrites) {
  const RebalanceRunSummary summary = RunRebalanceExperiment(SmallRun());

  EXPECT_GT(summary.writes_acked, 0);
  EXPECT_EQ(summary.lost_acked_writes, 0);
  EXPECT_EQ(summary.nodes_joined, 1);
  EXPECT_EQ(summary.nodes_removed, 1);
  EXPECT_EQ(summary.rebalances_started, 2);
  EXPECT_EQ(summary.rebalances_completed, 2);
  EXPECT_GT(summary.migration_transfers_delivered, 0);
  EXPECT_EQ(summary.final_ring_version, 3u);  // 1 at construction + 2 changes
  EXPECT_EQ(summary.final_storage_members, 8);

  // Probes ran in every phase and per-shard attribution saw traffic.
  EXPECT_GT(summary.before.reads, 0);
  EXPECT_GT(summary.after.reads, 0);
  EXPECT_FALSE(summary.per_shard.empty());

  // Union routing keeps the client's stale ring version observable.
  EXPECT_GT(summary.stale_routes_forwarded, 0);

  // Key movement stays within 1.5x the consistent-hashing minimum, and the
  // mutated ring equals a fresh rebuild from the final membership.
  EXPECT_GT(summary.moved_fraction, 0.0);
  EXPECT_LE(summary.moved_fraction, 1.5 * summary.theoretical_min_fraction);
  EXPECT_TRUE(summary.placement_matches_fresh_ring);
}

TEST(RebalanceExperimentTest, RunsAreDeterministicAndSeedSensitive) {
  const RebalanceRunSummary a = RunRebalanceExperiment(SmallRun());
  const RebalanceRunSummary b = RunRebalanceExperiment(SmallRun());
  EXPECT_TRUE(a == b);

  RebalanceRunOptions other = SmallRun();
  other.seed = 12;
  const RebalanceRunSummary c = RunRebalanceExperiment(other);
  EXPECT_FALSE(a == c);
}

TEST(RebalanceExperimentTest, ExportsPerShardMetricsThroughRegistry) {
  obs::Registry registry;
  (void)RunRebalanceExperiment(SmallRun(), &registry);
  const std::string jsonl = obs::MetricsJsonl(registry);
  EXPECT_NE(jsonl.find("kvs/shard/"), std::string::npos);
  EXPECT_NE(jsonl.find("kvs/migration_transfers_delivered"),
            std::string::npos);
  EXPECT_NE(jsonl.find("kvs/ring_version"), std::string::npos);
}

TEST(RebalanceExperimentTest, OptionsValidate) {
  RebalanceRunOptions options = SmallRun();
  EXPECT_TRUE(options.Validate().ok());
  options.churn_at_fraction = 1.5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = SmallRun();
  options.keys = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options = SmallRun();
  options.cluster.rebalance.stream_interval_ms = -1.0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
