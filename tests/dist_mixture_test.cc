#include "dist/mixture.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "dist/production.h"
#include "util/stats.h"

namespace pbs {
namespace {

TEST(MixtureTest, CdfIsWeightedSumOfComponents) {
  auto a = Exponential(1.0);
  auto b = Uniform(0.0, 10.0);
  MixtureDistribution mix({{0.3, a}, {0.7, b}});
  for (double x : {0.5, 1.0, 3.0, 9.0}) {
    EXPECT_NEAR(mix.Cdf(x), 0.3 * a->Cdf(x) + 0.7 * b->Cdf(x), 1e-12);
  }
}

TEST(MixtureTest, WeightsAreNormalized) {
  auto a = Exponential(1.0);
  MixtureDistribution mix({{2.0, a}, {6.0, a}});
  EXPECT_NEAR(mix.components()[0].weight, 0.25, 1e-12);
  EXPECT_NEAR(mix.components()[1].weight, 0.75, 1e-12);
}

TEST(MixtureTest, QuantileInvertsCdf) {
  auto mix = ParetoExponentialMixture(0.9122, 0.235, 10.0, 1.66);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const double x = mix->Quantile(p);
    EXPECT_NEAR(mix->Cdf(x), p, 1e-7) << "p=" << p;
  }
}

TEST(MixtureTest, MeanIsWeightedSum) {
  auto mix = Mixture({{0.5, PointMass(2.0)}, {0.5, PointMass(4.0)}});
  EXPECT_DOUBLE_EQ(mix->Mean(), 3.0);
}

TEST(MixtureTest, SamplingRespectsComponentWeights) {
  // Components with disjoint supports let us count branch picks exactly.
  auto mix = Mixture({{0.2, Uniform(0.0, 1.0)}, {0.8, Uniform(10.0, 11.0)}});
  Rng rng(31);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (mix->Sample(rng) < 5.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.2, 0.006);
}

TEST(MixtureTest, SampledMomentsMatchAnalytic) {
  auto mix = ParetoExponentialMixture(0.38, 1.05, 1.51, 0.183);
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) stats.Add(mix->Sample(rng));
  // Pareto(1.05, 1.51) mean = 1.51*1.05/0.51 = 3.109; Exp(.183) mean = 5.46.
  const double expected = 0.38 * (1.51 * 1.05 / 0.51) + 0.62 * (1.0 / 0.183);
  EXPECT_NEAR(mix->Mean(), expected, 1e-9);
  // Heavy tail (alpha=1.51) converges slowly; allow 5%.
  EXPECT_NEAR(stats.mean(), expected, 0.05 * expected);
}

TEST(ProductionFitsTest, AllLegsPresent) {
  for (const auto& fit : AllIidProductionFits()) {
    EXPECT_FALSE(fit.name.empty());
    ASSERT_NE(fit.w, nullptr);
    ASSERT_NE(fit.a, nullptr);
    ASSERT_NE(fit.r, nullptr);
    ASSERT_NE(fit.s, nullptr);
  }
}

TEST(ProductionFitsTest, LnkdSsdLegsAreSymmetric) {
  const auto fit = LnkdSsd();
  // W = A = R = S: all four share one distribution object.
  EXPECT_EQ(fit.w, fit.a);
  EXPECT_EQ(fit.r, fit.s);
  EXPECT_EQ(fit.w, fit.r);
}

TEST(ProductionFitsTest, LnkdDiskWritesAreSlowerThanAcks) {
  const auto fit = LnkdDisk();
  EXPECT_NE(fit.w, fit.a);
  EXPECT_GT(fit.w->Mean(), fit.a->Mean());
  // Spinning-disk one-way writes: milliseconds-scale median with a tail an
  // order of magnitude longer (Section 5.6's "longer tail": the W=1
  // *operation* median the paper quotes is the min over N replicas, which
  // sits below this one-way median).
  EXPECT_GT(fit.w->Quantile(0.5), 1.0);
  EXPECT_LT(fit.w->Quantile(0.5), 5.0);
  EXPECT_GT(fit.w->Quantile(0.999), 5.0 * fit.w->Quantile(0.5));
}

TEST(ProductionFitsTest, LnkdSsdShortTail) {
  // Section 5.6: LNKD-SSD 99.9th percentile one-way ~0.66ms and writes
  // complete quickly across replicas.
  const auto fit = LnkdSsd();
  EXPECT_LT(fit.w->Quantile(0.999), 3.0);
}

TEST(ProductionFitsTest, YmmrWriteTailIsLong) {
  const auto fit = Ymmr();
  // The YMMR write fit has a fat exponential tail (lambda=.0028 ->
  // mean 357ms for 6.1% of writes).
  EXPECT_GT(fit.w->Quantile(0.999), 100.0);
  // The body is Pareto(xm=3): essentially no write faster than 3ms (only
  // the thin exponential tail component has sub-3ms mass).
  EXPECT_LT(fit.w->Cdf(2.9), 0.001);
}

TEST(ProductionPercentilesTest, TablesAreMonotone) {
  for (const auto& table :
       {LinkedInDiskPercentiles(), LinkedInSsdPercentiles(),
        YammerReadPercentiles(), YammerWritePercentiles()}) {
    ASSERT_GE(table.size(), 4u);
    for (size_t i = 1; i < table.size(); ++i) {
      EXPECT_GT(table[i].percentile, table[i - 1].percentile);
      EXPECT_GE(table[i].value, table[i - 1].value);
    }
  }
}

TEST(ProductionPercentilesTest, MatchPublishedAnchors) {
  const auto yammer_writes = YammerWritePercentiles();
  // Table 2: 99.9th percentile write latency = 435.83 ms.
  EXPECT_DOUBLE_EQ(yammer_writes.back().percentile, 99.9);
  EXPECT_DOUBLE_EQ(yammer_writes.back().value, 435.83);
  const auto ssd = LinkedInSsdPercentiles();
  EXPECT_DOUBLE_EQ(ssd[1].value, 1.0);  // 95th = 1 ms
}

}  // namespace
}  // namespace pbs
