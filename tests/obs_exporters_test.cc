// Exporters: golden-string tests. The JSON emitters promise byte-exact
// deterministic output for equal inputs — these tests pin the exact bytes
// for small hand-built registries/traces, so any format drift is loud.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporters.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace pbs {
namespace obs {
namespace {

using Kind = TraceEventKind;

TEST(MetricsJsonlTest, GoldenCountersThenHistogramsSortedByName) {
  Registry registry;
  registry.counter("ops").Add(7);
  registry.histogram("lat").Record(2.0);
  // 2.0 sits at the bottom of its octave: bucket [2, 2 * (1 + 1/64)).
  // A single-sample histogram clamps every quantile to the one value.
  const std::string expected =
      "{\"instrument\":\"counter\",\"name\":\"ops\",\"value\":7}\n"
      "{\"instrument\":\"histogram\",\"name\":\"lat\",\"count\":1,"
      "\"min\":2,\"max\":2,\"mean\":2,\"p50\":2,\"p90\":2,\"p99\":2,"
      "\"p999\":2,\"buckets\":[[2,2.03125,1]]}\n";
  EXPECT_EQ(MetricsJsonl(registry), expected);
}

TEST(MetricsJsonlTest, EmptyHistogramOmitsMomentsAndBuckets) {
  Registry registry;
  registry.histogram("empty");
  EXPECT_EQ(MetricsJsonl(registry),
            "{\"instrument\":\"histogram\",\"name\":\"empty\",\"count\":0}\n");
}

TEST(MetricsJsonlTest, SerializationIsDeterministic) {
  Registry registry;
  registry.counter("b").Add(1);
  registry.counter("a").Add(2);
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("h").Record(0.37 * i);
  }
  const std::string once = MetricsJsonl(registry);
  EXPECT_EQ(once, MetricsJsonl(registry));
  // Names iterate sorted: "a" precedes "b" regardless of creation order.
  EXPECT_LT(once.find("\"name\":\"a\""), once.find("\"name\":\"b\""));
}

/// One complete single-attempt read trace: begin, R leg, response, return,
/// end. Returned seq 3, latest committed 5 -> version gap 2 (stale).
std::vector<TraceEvent> StaleReadTrace() {
  return {
      {.trace_id = 1, .kind = Kind::kOpBegin, .src = 4, .t_start = 10.0,
       .t_end = 10.0, .a = 0, .b = 7},
      {.trace_id = 1, .kind = Kind::kLegSend, .leg = WarsLeg::kR, .src = 4,
       .dst = 0, .t_start = 10.0, .t_end = 11.5},
      {.trace_id = 1, .kind = Kind::kResponse, .leg = WarsLeg::kS, .src = 0,
       .dst = 4, .t_start = 11.5, .t_end = 11.5, .a = 3, .b = 1},
      {.trace_id = 1, .kind = Kind::kReturn, .leg = WarsLeg::kS, .src = 0,
       .t_start = 11.5, .t_end = 11.5, .a = 3, .b = 1},
      {.trace_id = 1, .kind = Kind::kOpEnd, .src = 4, .t_start = 10.0,
       .t_end = 11.5, .a = 0, .b = 5},
  };
}

TEST(ChromeTraceTest, GoldenReadSpan) {
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"read key=7\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":10000,"
      "\"pid\":1,\"tid\":4,\"dur\":1500,"
      "\"args\":{\"trace_id\":1,\"status\":\"ok\"}},\n"
      "{\"name\":\"R leg\",\"cat\":\"leg\",\"ph\":\"X\",\"ts\":10000,"
      "\"pid\":1,\"tid\":0,\"dur\":1500,\"args\":{\"from\":4,\"to\":0}},\n"
      "{\"name\":\"response\",\"cat\":\"coord\",\"ph\":\"i\",\"ts\":11500,"
      "\"pid\":1,\"tid\":4,\"s\":\"p\",\"args\":{\"replica\":0,\"seq\":3}},\n"
      "{\"name\":\"return\",\"cat\":\"coord\",\"ph\":\"i\",\"ts\":11500,"
      "\"pid\":1,\"tid\":0,\"s\":\"p\","
      "\"args\":{\"replica\":0,\"seq\":3,\"required\":1}}\n"
      "]}\n";
  EXPECT_EQ(ChromeTraceJson(StaleReadTrace()), expected);
}

TEST(StalenessAuditTest, GoldenStaleReadLine) {
  const std::string expected =
      "{\"trace_id\":1,\"key\":7,\"t_start\":10,\"t_end\":11.5,"
      "\"status\":\"ok\",\"stale\":true,\"returned_seq\":3,\"latest_seq\":5,"
      "\"version_gap\":2,\"responding_replica\":0,\"required\":1,"
      "\"attempts\":1,\"hedges\":0,\"timeouts\":0,"
      "\"legs\":[{\"leg\":\"R\",\"from\":4,\"to\":0,\"t_send\":10,"
      "\"t_arrive\":11.5}],"
      "\"responses\":[{\"replica\":0,\"t\":11.5,\"seq\":3}]}\n";
  EXPECT_EQ(StalenessAuditJsonl(StaleReadTrace(), /*stale_only=*/true),
            expected);
  EXPECT_EQ(StalenessAuditJsonl(StaleReadTrace(), /*stale_only=*/false),
            expected);
}

TEST(StalenessAuditTest, FreshReadsAndWritesAreFilteredOut) {
  std::vector<TraceEvent> events = StaleReadTrace();
  // Trace 2: a fresh read (returned == latest committed).
  events.push_back({.trace_id = 2, .kind = Kind::kOpBegin, .src = 4,
                    .t_start = 20.0, .t_end = 20.0, .a = 0, .b = 7});
  events.push_back({.trace_id = 2, .kind = Kind::kReturn, .src = 1,
                    .t_start = 21.0, .t_end = 21.0, .a = 5, .b = 1});
  events.push_back({.trace_id = 2, .kind = Kind::kOpEnd, .src = 4,
                    .t_start = 20.0, .t_end = 21.0, .a = 0, .b = 5});
  // Trace 3: a write (audit covers reads only).
  events.push_back({.trace_id = 3, .kind = Kind::kOpBegin, .src = 3,
                    .t_start = 30.0, .t_end = 30.0, .a = 1, .b = 7});
  events.push_back({.trace_id = 3, .kind = Kind::kOpEnd, .src = 3,
                    .t_start = 30.0, .t_end = 31.0, .a = 0, .b = 6});

  const std::string stale_only = StalenessAuditJsonl(events, true);
  EXPECT_NE(stale_only.find("\"trace_id\":1"), std::string::npos);
  EXPECT_EQ(stale_only.find("\"trace_id\":2"), std::string::npos);
  EXPECT_EQ(stale_only.find("\"trace_id\":3"), std::string::npos);

  const std::string all_reads = StalenessAuditJsonl(events, false);
  EXPECT_NE(all_reads.find("\"trace_id\":2"), std::string::npos);
  EXPECT_NE(all_reads.find("\"stale\":false"), std::string::npos);
  EXPECT_EQ(all_reads.find("\"trace_id\":3"), std::string::npos);
}

TEST(StalenessAuditTest, TimedOutReadsAreNotCalledStale) {
  // A read that timed out returned nothing; gap > 0 but status != ok, so
  // the audit reports it (stale_only=false) as not-stale.
  std::vector<TraceEvent> events = {
      {.trace_id = 9, .kind = Kind::kOpBegin, .src = 4, .t_start = 1.0,
       .t_end = 1.0, .a = 0, .b = 7},
      {.trace_id = 9, .kind = Kind::kTimeout, .leg = WarsLeg::kS, .src = 4,
       .t_start = 2.0, .t_end = 2.0},
      {.trace_id = 9, .kind = Kind::kOpEnd, .src = 4, .t_start = 1.0,
       .t_end = 2.0, .a = 4 /* kTimedOut */, .b = 5},
  };
  EXPECT_EQ(StalenessAuditJsonl(events, true), "");
  const std::string line = StalenessAuditJsonl(events, false);
  EXPECT_NE(line.find("\"status\":\"timed_out\""), std::string::npos);
  EXPECT_NE(line.find("\"stale\":false"), std::string::npos);
  EXPECT_NE(line.find("\"timeouts\":1"), std::string::npos);
}

TEST(StalenessAuditTest, EmptyHistoryIsByteIdenticalToTheThreeArgForm) {
  // The 4-argument controller-join overload with no history must not
  // perturb the audit output at all — existing golden consumers keep
  // working whether or not a run carried a controller.
  const std::vector<TraceEvent> events = StaleReadTrace();
  EXPECT_EQ(StalenessAuditJsonl(events, /*history=*/{}, /*stale_only=*/true),
            StalenessAuditJsonl(events, /*stale_only=*/true));
  EXPECT_EQ(StalenessAuditJsonl(events, /*history=*/{}, /*stale_only=*/false),
            StalenessAuditJsonl(events, /*stale_only=*/false));
}

AdaptationRecord Record(int64_t id, double valid_from, int r_lo, int r_hi,
                        double mix, int w) {
  AdaptationRecord record;
  record.decision_id = id;
  record.epoch = id;
  record.valid_from_ms = valid_from;
  record.r_lo = r_lo;
  record.r_hi = r_hi;
  record.mix = mix;
  record.w = w;
  record.hedge_enabled = id > 0;
  record.hedge_quantile = 0.95;
  record.retry_max_attempts = 2;
  record.retry_deadline_ms = 600.0;
  return record;
}

TEST(StalenessAuditTest, ControllerJoinPicksTheRecordActiveAtReadStart) {
  // History: initial config from t=0, then a decision at t=5 (before the
  // read starts at t=10) and another at t=100 (after it ends). The line
  // must join against decision 1 — active when the read *started* — and
  // carry its full knob state.
  const std::vector<AdaptationRecord> history = {
      Record(0, 0.0, 2, 2, 0.0, 2),
      Record(1, 5.0, 1, 2, 0.25, 2),
      Record(2, 100.0, 1, 1, 0.0, 3),
  };
  const std::string line =
      StalenessAuditJsonl(StaleReadTrace(), history, /*stale_only=*/true);
  EXPECT_NE(line.find("\"controller\":{\"decision_id\":1,\"epoch\":1,"
                      "\"r_lo\":1,\"r_hi\":2,\"mix\":0.25,\"w\":2,"
                      "\"hedge\":true,\"hedge_quantile\":0.95,"
                      "\"retry_attempts\":2,\"retry_deadline_ms\":600"),
            std::string::npos)
      << line;
  // No decision landed between t_start=10 and t_end=11.5.
  EXPECT_EQ(line.find("config_changed_midflight"), std::string::npos);
}

TEST(StalenessAuditTest, MidflightReconfigurationIsFlagged) {
  // A decision at t=11 lands inside the read's [10, 11.5] flight window:
  // the joined record is still the start-time one, and the line gains the
  // midflight flag so staleness analysis can exclude (or study) reads that
  // straddled an actuation.
  const std::vector<AdaptationRecord> history = {
      Record(0, 0.0, 2, 2, 0.0, 2),
      Record(1, 11.0, 1, 2, 0.5, 2),
  };
  const std::string line =
      StalenessAuditJsonl(StaleReadTrace(), history, /*stale_only=*/true);
  EXPECT_NE(line.find("\"controller\":{\"decision_id\":0"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"config_changed_midflight\":true"),
            std::string::npos);
}

TEST(StalenessAuditTest, ReadsBeforeAnyRecordCarryNoControllerObject) {
  // A history whose first record post-dates the read start: nothing was
  // "active" yet, so the line must stay controller-free (same shape as the
  // no-history form).
  const std::vector<AdaptationRecord> history = {Record(0, 50.0, 2, 2, 0.0, 2)};
  const std::string line =
      StalenessAuditJsonl(StaleReadTrace(), history, /*stale_only=*/true);
  EXPECT_EQ(line.find("\"controller\""), std::string::npos);
  EXPECT_EQ(line, StalenessAuditJsonl(StaleReadTrace(), /*stale_only=*/true));
}

}  // namespace
}  // namespace obs
}  // namespace pbs
