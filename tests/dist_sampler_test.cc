#include "dist/sampler.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "dist/mixture.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "util/fastmath.h"
#include "util/rng.h"

namespace pbs {
namespace {

constexpr double kTiny = 0x1.0p-53;  // smallest NextDouble spacing

// One-sample Kolmogorov-Smirnov statistic against the exact CDF.
double KsStatistic(std::vector<double> samples, const Distribution& dist) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double cdf = dist.Cdf(samples[i]);
    const double hi = static_cast<double>(i + 1) / n - cdf;
    const double lo = cdf - static_cast<double>(i) / n;
    d = std::max(d, std::max(hi, lo));
  }
  return d;
}

std::vector<std::pair<std::string, DistributionPtr>> EquivalenceCases() {
  return {
      {"exponential", Exponential(1.66)},
      {"pareto", Pareto(0.235, 10.0)},
      {"uniform", Uniform(2.0, 6.0)},
      {"lognormal", LogNormal(0.0, 0.5)},
      {"weibull", Weibull(2.0, 3.0)},
      {"trunc_normal", TruncatedNormal(0.5, 1.0)},
      {"affine_exp", Shifted(Scaled(Exponential(2.0), 3.0), 1.0)},
      {"lnkd_ssd_mixture", LnkdSsd().w},
      {"alias_mixture", Mixture({{0.5, Uniform(0.0, 1.0)},
                                 {0.3, Exponential(1.0)},
                                 {0.2, Pareto(1.0, 4.0)}})},
  };
}

// With m = 200k samples the KS critical value at alpha = 0.001 is
// 1.95/sqrt(m) ~= 0.00436; 0.005 adds headroom for the ~4e-6 fastmath
// tolerance without masking real distribution bugs.
constexpr int kKsSamples = 200000;
constexpr double kKsThreshold = 0.005;

TEST(SamplerEquivalenceTest, VirtualPathMatchesCdf) {
  for (const auto& [name, dist] : EquivalenceCases()) {
    Rng rng(101);
    std::vector<double> samples(kKsSamples);
    for (auto& x : samples) x = dist->Sample(rng);
    EXPECT_LT(KsStatistic(std::move(samples), *dist), kKsThreshold) << name;
  }
}

TEST(SamplerEquivalenceTest, BatchPathMatchesCdf) {
  for (const auto& [name, dist] : EquivalenceCases()) {
    Rng rng(102);
    std::vector<double> samples(kKsSamples);
    dist->SampleBatch(rng, samples);
    EXPECT_LT(KsStatistic(std::move(samples), *dist), kKsThreshold) << name;
  }
}

TEST(SamplerEquivalenceTest, CompiledPathMatchesCdf) {
  for (const auto& [name, dist] : EquivalenceCases()) {
    CompiledSampler sampler(dist);
    EXPECT_TRUE(sampler.is_compiled()) << name << ": " << sampler.Describe();
    Rng rng(103);
    std::vector<double> samples(kKsSamples);
    sampler.SampleBatch(rng, samples.data(), kKsSamples);
    EXPECT_LT(KsStatistic(std::move(samples), *dist), kKsThreshold)
        << name << ": " << sampler.Describe();
  }
}

// Chi-squared over 64 equiprobable bins (edges from the exact quantile
// function). 63 degrees of freedom: critical value at alpha = 0.001 is
// ~103.4; 110 adds headroom.
TEST(SamplerEquivalenceTest, CompiledSamplesPassChiSquared) {
  for (const auto& dist :
       {Exponential(1.66), LnkdSsd().w, Pareto(0.235, 10.0)}) {
    const int kBins = 64;
    std::vector<double> edges(kBins - 1);
    for (int k = 1; k < kBins; ++k) {
      edges[k - 1] = dist->Quantile(static_cast<double>(k) / kBins);
    }
    CompiledSampler sampler(dist);
    Rng rng(104);
    const int m = 1 << 18;
    std::vector<double> samples(m);
    sampler.SampleBatch(rng, samples.data(), m);
    std::vector<int> counts(kBins, 0);
    for (double x : samples) {
      const auto it = std::upper_bound(edges.begin(), edges.end(), x);
      ++counts[static_cast<size_t>(it - edges.begin())];
    }
    const double expected = static_cast<double>(m) / kBins;
    double chi2 = 0.0;
    for (int c : counts) {
      const double diff = static_cast<double>(c) - expected;
      chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 110.0) << dist->Describe();
  }
}

// RNG-consumption contract (v2): every compiled kind consumes exactly one
// NextDouble per sample — including point masses and mixtures.
TEST(CompiledSamplerTest, ConsumesExactlyOneDrawPerSample) {
  for (const auto& [name, dist] : EquivalenceCases()) {
    CompiledSampler sampler(dist);
    Rng used(55);
    Rng mirror(55);
    const int m = 257;  // odd size crosses batch-tile boundaries
    std::vector<double> buf(m);
    sampler.SampleBatch(used, buf.data(), m);
    for (int i = 0; i < m; ++i) mirror.NextDouble();
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(used.NextDouble(), mirror.NextDouble()) << name;
    }
  }
}

TEST(CompiledSamplerTest, PointMassBurnsDrawsAndEmitsConstant) {
  CompiledSampler sampler(PointMass(3.5));
  Rng used(9);
  Rng mirror(9);
  double buf[100];
  sampler.SampleBatch(used, buf, 100);
  for (double x : buf) EXPECT_EQ(x, 3.5);
  for (int i = 0; i < 100; ++i) mirror.NextDouble();
  EXPECT_EQ(used.NextDouble(), mirror.NextDouble());
}

TEST(SamplerPlanTest, LnkdSsdFusesAllFourLegs) {
  SamplerPlan plan(LnkdSsd());
  EXPECT_TRUE(plan.fully_compiled()) << plan.Describe();
  // All four legs share one mixture object, so the whole trial is one run.
  EXPECT_EQ(plan.num_runs(), 1) << plan.Describe();
}

TEST(SamplerPlanTest, LegsMatchTheirDistributions) {
  const auto wars = LnkdDisk();
  SamplerPlan plan(wars);
  const int n = 5;
  const int trials = 40000;
  std::vector<double> legs(4 * n);
  std::vector<double> w_leg, r_leg;
  Rng rng(105);
  for (int t = 0; t < trials; ++t) {
    plan.SampleLegs(rng, n, legs.data());
    for (int i = 0; i < n; ++i) {
      w_leg.push_back(legs[i]);
      r_leg.push_back(legs[2 * n + i]);
    }
  }
  EXPECT_LT(KsStatistic(std::move(w_leg), *wars.w), kKsThreshold);
  EXPECT_LT(KsStatistic(std::move(r_leg), *wars.r), kKsThreshold);
}

// Fast-math kernels: documented error bounds, checked against libm.
TEST(FastMathTest, FastLog2StaysWithinDocumentedBound) {
  Rng rng(106);
  for (int i = 0; i < 200000; ++i) {
    const double e = (rng.NextDouble() - 0.5) * 120.0;  // 2^-60 .. 2^60
    const double x = std::exp2(e) * (0.5 + rng.NextDouble());
    ASSERT_LT(std::abs(FastLog2(x) - std::log2(x)), 2e-6) << "x=" << x;
  }
}

TEST(FastMathTest, FastExp2StaysWithinDocumentedBound) {
  Rng rng(107);
  for (int i = 0; i < 200000; ++i) {
    const double x = (rng.NextDouble() - 0.5) * 2000.0;  // [-1000, 1000]
    const double exact = std::exp2(x);
    ASSERT_LT(std::abs(FastExp2(x) - exact), 4e-6 * exact) << "x=" << x;
  }
}

// Edge-draw guards: quantiles at the extreme representable uniforms must be
// finite — a NextDouble draw can be 0.0 or 1 - 2^-53, and inverse-transform
// sampling must not produce inf/NaN there.
TEST(BoundaryTest, QuantilesAreFiniteAtExtremeUniformDraws) {
  for (const auto& [name, dist] : EquivalenceCases()) {
    for (const double p : {0.0, kTiny, 0.5, 1.0 - kTiny}) {
      const double q = dist->Quantile(p);
      EXPECT_TRUE(std::isfinite(q)) << name << " p=" << p << " q=" << q;
    }
  }
}

TEST(BoundaryTest, CompiledSamplersNeverEmitNonFinite) {
  for (const auto& [name, dist] : EquivalenceCases()) {
    CompiledSampler sampler(dist);
    Rng rng(108);
    const int m = 1 << 16;
    std::vector<double> buf(m);
    sampler.SampleBatch(rng, buf.data(), m);
    for (double x : buf) {
      ASSERT_TRUE(std::isfinite(x)) << name << " x=" << x;
    }
  }
}

TEST(BoundaryTest, InverseNormalCdfFiniteJustInsideOpenInterval) {
  EXPECT_TRUE(std::isfinite(InverseNormalCdf(kTiny)));
  EXPECT_TRUE(std::isfinite(InverseNormalCdf(1.0 - kTiny)));
  EXPECT_LT(InverseNormalCdf(kTiny), -6.0);
  EXPECT_GT(InverseNormalCdf(1.0 - kTiny), 6.0);
}

}  // namespace
}  // namespace pbs
