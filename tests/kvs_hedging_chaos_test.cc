// Coordinator hedged reads, response deduplication, and the client-side
// retry/deadline/downgrade machinery — exercised under injected gray
// failures (slow nodes, duplicating links, partitions) rather than clean
// fail-stop crashes.

#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/failure.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig BaseConfig(QuorumConfig quorum) {
  KvsConfig config;
  config.quorum = quorum;
  config.legs = FastLegs();
  config.request_timeout_ms = 100.0;
  config.seed = 808;
  return config;
}

TEST(HedgedReadTest, HedgeRescuesReadsFromASlowReplica) {
  // Replica 0's responses take 50x as long. Under kQuorumOnly fan-out a
  // read whose R-subset includes replica 0 stalls on it — unless a hedge
  // re-issues to an untried preference-list replica.
  KvsConfig config = BaseConfig({3, 2, 2});
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.request_timeout_ms = 1000.0;
  config.hedge.enabled = true;
  config.hedge.delay_ms = 5.0;
  Cluster cluster(config);
  FaultProfile slow;
  slow.delay_mult = 50.0;
  cluster.network().SetNodeFault(0, slow);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(1, "v", nullptr);
  std::vector<double> latencies;
  for (int i = 0; i < 40; ++i) {
    cluster.sim().At(100.0 + i * 100.0, [&]() {
      client.Read(1, [&](const ReadResult& r) {
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(r.value->value, "v");
        latencies.push_back(r.latency_ms);
      });
    });
  }
  cluster.sim().Run();
  ASSERT_EQ(latencies.size(), 40u);
  // Every read finished fast: the hedge fires at 5ms and an untried fast
  // replica answers ~2ms later, well before replica 0's ~50ms response.
  for (double latency : latencies) EXPECT_LT(latency, 20.0);
  EXPECT_GT(cluster.metrics().hedged_reads_sent, 0);
  EXPECT_GT(cluster.metrics().hedged_reads_won, 0);
  EXPECT_EQ(client.monotonic_violations(), 0);
}

TEST(HedgedReadTest, WithoutHedgingSlowReplicaDominatesTheTail) {
  // Control for the test above: same fault, hedging off, some reads stall.
  KvsConfig config = BaseConfig({3, 2, 2});
  config.read_fanout = ReadFanout::kQuorumOnly;
  config.request_timeout_ms = 1000.0;
  Cluster cluster(config);
  FaultProfile slow;
  slow.delay_mult = 50.0;
  cluster.network().SetNodeFault(0, slow);

  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  client.Write(1, "v", nullptr);
  double worst = 0.0;
  for (int i = 0; i < 40; ++i) {
    cluster.sim().At(100.0 + i * 100.0, [&]() {
      client.Read(1, [&](const ReadResult& r) {
        ASSERT_TRUE(r.ok);
        worst = std::max(worst, r.latency_ms);
      });
    });
  }
  cluster.sim().Run();
  EXPECT_GT(worst, 40.0);  // some R-subset drew the slow replica
  EXPECT_EQ(cluster.metrics().hedged_reads_sent, 0);
}

TEST(DeduplicationTest, DuplicatedResponsesNeverDoubleCountTowardR) {
  // Replica 0's responses are always delivered twice, and replicas 1 and 2
  // are unreachable. If duplicates counted toward R, the read would
  // (wrongly) succeed off one replica heard twice; with dedup it times out.
  KvsConfig config = BaseConfig({3, 2, 2});
  Cluster cluster(config);
  const NodeId coordinator = cluster.coordinator(0).id();
  ClientSession client(&cluster, coordinator, 1);
  client.Write(1, "v", nullptr);
  cluster.sim().Run();

  FaultProfile dup;
  dup.duplicate_probability = 1.0;
  cluster.network().SetLinkFault(0, coordinator, dup);
  cluster.network().SetPartitioned(coordinator, 1, true);
  cluster.network().SetPartitioned(coordinator, 2, true);

  std::optional<ReadResult> read;
  client.Read(1, [&](const ReadResult& r) { read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_FALSE(read->ok);  // one distinct replica != R=2
  EXPECT_GT(cluster.metrics().duplicate_responses_suppressed, 0);
}

TEST(DeduplicationTest, DuplicatedAcksNeverDoubleCountTowardW) {
  KvsConfig config = BaseConfig({3, 2, 2});
  Cluster cluster(config);
  const NodeId coordinator = cluster.coordinator(0).id();
  FaultProfile dup;
  dup.duplicate_probability = 1.0;
  cluster.network().SetLinkFault(0, coordinator, dup);
  cluster.network().SetPartitioned(coordinator, 1, true);
  cluster.network().SetPartitioned(coordinator, 2, true);

  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> write;
  client.Write(1, "v", [&](const WriteResult& r) { write = r; });
  cluster.sim().Run();
  ASSERT_TRUE(write.has_value());
  EXPECT_FALSE(write->ok);  // one distinct ack != W=2
  EXPECT_GT(cluster.metrics().duplicate_acks_suppressed, 0);
}

TEST(ClientRetryTest, RetrySucceedsAfterTransientPartition) {
  KvsConfig config = BaseConfig({3, 1, 3});
  config.retry.max_attempts = 4;
  config.retry.backoff_base_ms = 100.0;
  config.retry.backoff_max_ms = 400.0;
  Cluster cluster(config);
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetPartitioned(coordinator, 1, true);
  // Heal after the first attempt's timeout (100ms) but before the earliest
  // possible retry (100 + backoff in [50, 100)).
  cluster.sim().At(140.0, [&]() {
    cluster.network().SetPartitioned(coordinator, 1, false);
  });

  ClientSession client(&cluster, coordinator, 1);
  std::optional<WriteResult> write;
  client.Write(1, "v", [&](const WriteResult& r) { write = r; });
  cluster.sim().Run();
  ASSERT_TRUE(write.has_value());
  EXPECT_TRUE(write->ok);
  EXPECT_EQ(write->attempts, 2);
  EXPECT_EQ(cluster.metrics().client_write_retries, 1);
  // Client-visible latency spans both attempts, not just the winner.
  EXPECT_GT(write->latency_ms, 100.0);
}

TEST(ClientRetryTest, DeadlineBudgetBoundsTheRetryLoop) {
  KvsConfig config = BaseConfig({3, 2, 2});
  config.retry.max_attempts = 10;
  config.retry.backoff_base_ms = 10.0;
  config.retry.deadline_ms = 120.0;
  Cluster cluster(config);
  const NodeId coordinator = cluster.coordinator(0).id();
  cluster.network().SetPartitioned(coordinator, 1, true);
  cluster.network().SetPartitioned(coordinator, 2, true);

  ClientSession client(&cluster, coordinator, 1);
  std::optional<ReadResult> read;
  client.Read(1, [&](const ReadResult& r) { read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_FALSE(read->ok);
  EXPECT_GE(read->attempts, 2);       // it did retry...
  EXPECT_LT(read->attempts, 10);      // ...but the deadline cut it short
  EXPECT_LE(read->latency_ms, 130.0); // spent roughly the budget, not 10x
  EXPECT_EQ(cluster.metrics().client_deadline_misses, 1);
  EXPECT_GT(cluster.metrics().client_read_retries, 0);
}

TEST(ClientRetryTest, DowngradeOnRetryTradesConsistencyForAvailability) {
  KvsConfig config = BaseConfig({3, 2, 2});
  config.retry.max_attempts = 3;
  config.retry.backoff_base_ms = 10.0;
  config.retry.downgrade_reads = true;
  Cluster cluster(config);
  const NodeId coordinator = cluster.coordinator(0).id();
  ClientSession client(&cluster, coordinator, 1);
  client.Write(1, "v", nullptr);
  cluster.sim().Run();

  // Only replica 0 stays reachable: R=2 cannot be met, R=1 can.
  cluster.network().SetPartitioned(coordinator, 1, true);
  cluster.network().SetPartitioned(coordinator, 2, true);
  std::optional<ReadResult> read;
  client.Read(1, [&](const ReadResult& r) { read = r; });
  cluster.sim().Run();
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok);
  EXPECT_TRUE(read->downgraded);
  EXPECT_EQ(read->required, 1);
  EXPECT_EQ(read->attempts, 2);
  EXPECT_EQ(read->value->value, "v");
  EXPECT_EQ(cluster.metrics().consistency_downgrades, 1);
  // Downgraded reads still count toward monotonic-reads accounting (none
  // violated here: replica 0 has the latest version).
  EXPECT_EQ(client.monotonic_violations(), 0);
}

TEST(FaultScheduleTest, InstallationActivatesAndDeactivatesFaults) {
  KvsConfig config = BaseConfig({3, 2, 2});
  Cluster cluster(config);
  FaultSchedule schedule;
  schedule.AddSlowNode(10.0, 100.0, 0, 10.0);
  schedule.AddLossyLink(10.0, 100.0, 1, 3, 0.1, 0.3, 0.8);
  schedule.AddFlappingNode(10.0, 100.0, 2, 20.0, 20.0);
  schedule.AddAsymmetricPartition(10.0, 100.0, 1, 3);
  schedule.InstallOn(&cluster);

  cluster.sim().RunUntil(50.0);
  EXPECT_EQ(cluster.metrics().fault_slow_node_activations, 1);
  EXPECT_EQ(cluster.metrics().fault_lossy_link_activations, 1);
  EXPECT_EQ(cluster.metrics().fault_flapping_activations, 1);
  EXPECT_EQ(cluster.metrics().fault_asymmetric_partition_activations, 1);
  EXPECT_TRUE(cluster.network().IsOneWayPartitioned(1, 3));

  cluster.sim().RunUntil(200.0);
  // Every fault cleans up at its end time.
  EXPECT_FALSE(cluster.network().IsOneWayPartitioned(1, 3));
  EXPECT_TRUE(cluster.replica(2).alive());  // flapping leaves the node up
}

TEST(FaultScheduleTest, RandomGrayFailuresAreSeedDeterministic) {
  const auto a = FaultSchedule::RandomGrayFailures(5, 60000.0, 2000.0, 800.0,
                                                  /*seed=*/77);
  const auto b = FaultSchedule::RandomGrayFailures(5, 60000.0, 2000.0, 800.0,
                                                  /*seed=*/77);
  ASSERT_EQ(a.faults().size(), b.faults().size());
  EXPECT_GT(a.faults().size(), 5u);  // ~30 arrivals over the horizon
  for (size_t i = 0; i < a.faults().size(); ++i) {
    const GrayFault& fa = a.faults()[i];
    const GrayFault& fb = b.faults()[i];
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_EQ(fa.start, fb.start);
    EXPECT_EQ(fa.end, fb.end);
    EXPECT_EQ(fa.node, fb.node);
    EXPECT_EQ(fa.src, fb.src);
    EXPECT_EQ(fa.dst, fb.dst);
    EXPECT_LT(fa.start, 60000.0);
    EXPECT_GT(fa.end, fa.start);
  }
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
