#include "core/wars.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "dist/production.h"
#include "util/stats.h"

namespace pbs {
namespace {

WarsDistributions Deterministic(double w, double a, double r, double s) {
  WarsDistributions dists;
  dists.name = "deterministic";
  dists.w = PointMass(w);
  dists.a = PointMass(a);
  dists.r = PointMass(r);
  dists.s = PointMass(s);
  return dists;
}

TEST(WarsTrialTest, DeterministicLegsGiveExactLatencies) {
  // w=3, a=2 per replica: every ack lands at 5, so commit (W-th smallest)
  // is 5 regardless of W. r=1, s=4: every read response at 5.
  const auto model = MakeIidModel(Deterministic(3.0, 2.0, 1.0, 4.0), 3);
  for (int w = 1; w <= 3; ++w) {
    WarsSimulator sim({3, 2, w}, model, /*seed=*/1);
    const WarsTrial trial = sim.RunTrial();
    EXPECT_DOUBLE_EQ(trial.write_latency, 5.0);
    EXPECT_DOUBLE_EQ(trial.read_latency, 5.0);
    // Write arrived (w=3) before any read could (commit 5 + r 1 = 6 > 3):
    // consistent immediately.
    EXPECT_DOUBLE_EQ(trial.staleness_threshold, 0.0);
  }
}

TEST(WarsTrialTest, SlowWritePropagationCreatesPositiveThreshold) {
  // Replica receives the write at w=10 but acks instantly... with W=1 and
  // one replica the commit is at w+a. Use N=2, W=1 with heterogeneous legs:
  // model replica 0 fast (w=0) and replica 1 slow (w=10) via a two-point
  // uniform? Simpler: point masses with N=1 degenerate to strictness, so
  // craft N=2 via heterogeneous model.
  WarsDistributions fast = Deterministic(0.0, 0.0, 0.0, 0.0);
  WarsDistributions slow = Deterministic(10.0, 0.0, 5.0, 5.0);
  const auto model = MakeHeterogeneousModel({fast, slow});
  // W=1: commit at 0 via replica 0. R=1: replica 0 responds at 0+0 and is
  // the first responder; it has the write (w=0 <= commit+t+r = 0) -> always
  // consistent.
  WarsSimulator sim_r_fast({2, 1, 1}, model, /*seed=*/2);
  EXPECT_DOUBLE_EQ(sim_r_fast.RunTrial().staleness_threshold, 0.0);

  // Force the read to use only the slow replica: R=2 means both respond and
  // the second (slow) or first... with R=2 the read waits for both, and
  // consistency needs ANY fresh responder; replica 0 is fresh -> 0.
  WarsSimulator sim_r2({2, 2, 1}, model, /*seed=*/3);
  EXPECT_DOUBLE_EQ(sim_r2.RunTrial().staleness_threshold, 0.0);
}

TEST(WarsTrialTest, ThresholdFormulaExactForCraftedCase) {
  // Two replicas; writes reach replica 0 at 0 and replica 1 at 10. Acks are
  // instant, so with W=1 commit time wt=0. Reads: replica 1 responds first
  // (r+s = 1), replica 0 at r+s = 8. With R=1 the only counted responder is
  // replica 1, which is fresh iff wt + t + r >= w  <=>  t >= 10 - 0 - 0.5.
  WarsDistributions fast = Deterministic(0.0, 0.0, 4.0, 4.0);
  WarsDistributions slow = Deterministic(10.0, 0.0, 0.5, 0.5);
  const auto model = MakeHeterogeneousModel({fast, slow});
  WarsSimulator sim({2, 1, 1}, model, /*seed=*/4);
  const WarsTrial trial = sim.RunTrial();
  EXPECT_DOUBLE_EQ(trial.write_latency, 0.0);
  EXPECT_DOUBLE_EQ(trial.read_latency, 1.0);
  EXPECT_DOUBLE_EQ(trial.staleness_threshold, 9.5);
}

TEST(WarsTrialTest, StrictQuorumsAlwaysImmediatelyConsistent) {
  // R + W > N guarantees overlap: the threshold must be 0 in every trial,
  // whatever the latency distributions (the paper: "When R+W>N, this is
  // impossible").
  const auto dists = LnkdDisk();
  for (const QuorumConfig config :
       {QuorumConfig{3, 2, 2}, QuorumConfig{3, 3, 1}, QuorumConfig{3, 1, 3},
        QuorumConfig{5, 3, 3}}) {
    const auto model = MakeIidModel(dists, config.n);
    WarsSimulator sim(config, model, /*seed=*/5);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_DOUBLE_EQ(sim.RunTrial().staleness_threshold, 0.0)
          << config.ToString();
    }
  }
}

TEST(WarsTrialTest, PropagationTimesSortedAndAnchoredAtCommit) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  WarsSimulator sim({3, 1, 2}, model, /*seed=*/6);
  for (int i = 0; i < 2000; ++i) {
    const WarsTrial trial = sim.RunTrial(/*want_propagation=*/true);
    ASSERT_EQ(trial.propagation_times.size(), 3u);
    EXPECT_TRUE(std::is_sorted(trial.propagation_times.begin(),
                               trial.propagation_times.end()));
    // At commit, at least W replicas already received the write (their
    // acks preceded commit), so the W-th propagation time is 0.
    EXPECT_DOUBLE_EQ(trial.propagation_times[1], 0.0);
  }
}

TEST(WarsTrialTest, DeterministicGivenSeed) {
  const auto model = MakeIidModel(Ymmr(), 3);
  WarsSimulator a({3, 1, 1}, model, 77);
  WarsSimulator b({3, 1, 1}, model, 77);
  for (int i = 0; i < 100; ++i) {
    const WarsTrial ta = a.RunTrial();
    const WarsTrial tb = b.RunTrial();
    EXPECT_DOUBLE_EQ(ta.write_latency, tb.write_latency);
    EXPECT_DOUBLE_EQ(ta.read_latency, tb.read_latency);
    EXPECT_DOUBLE_EQ(ta.staleness_threshold, tb.staleness_threshold);
  }
}

TEST(WarsTrialSetTest, ColumnsHaveRequestedLength) {
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const auto set = RunWarsTrials({3, 1, 1}, model, 1234, /*seed=*/8,
                                 /*want_propagation=*/true);
  EXPECT_EQ(set.write_latencies.size(), 1234u);
  EXPECT_EQ(set.read_latencies.size(), 1234u);
  EXPECT_EQ(set.staleness_thresholds.size(), 1234u);
  ASSERT_EQ(set.propagation.size(), 3u);
  EXPECT_EQ(set.propagation[0].size(), 1234u);
}

TEST(WarsLatencyTest, LargerQuorumsAreSlower) {
  // Waiting for more responses can only increase the order statistic.
  const auto model = MakeIidModel(LnkdDisk(), 3);
  double prev_write = 0.0;
  for (int w = 1; w <= 3; ++w) {
    const auto set = RunWarsTrials({3, 1, w}, model, 30000, /*seed=*/9);
    const double mean =
        std::accumulate(set.write_latencies.begin(),
                        set.write_latencies.end(), 0.0) /
        set.write_latencies.size();
    EXPECT_GT(mean, prev_write) << "W=" << w;
    prev_write = mean;
  }
}

TEST(WarsStalenessTest, LongerWriteTailsIncreaseStaleness) {
  // Section 5.3: higher W variance/mean => more reordering => staler.
  const QuorumConfig config{3, 1, 1};
  auto ars = Exponential(1.0);
  double prev_consistent_at_zero = 1.1;
  for (double lambda_w : {4.0, 1.0, 0.1}) {
    const auto model =
        MakeIidModel(MakeWars("sweep", Exponential(lambda_w), ars), 3);
    const auto set = RunWarsTrials(config, model, 50000, /*seed=*/10);
    const int64_t immediate = std::count(set.staleness_thresholds.begin(),
                                         set.staleness_thresholds.end(), 0.0);
    const double p0 =
        static_cast<double>(immediate) / set.staleness_thresholds.size();
    EXPECT_LT(p0, prev_consistent_at_zero) << "lambda_w=" << lambda_w;
    prev_consistent_at_zero = p0;
  }
}

TEST(WanModelTest, RemoteLegsCarryTheDelay) {
  // With point-mass base legs the WAN structure is fully predictable: one
  // replica is local (legs = base), the rest add 75ms per leg.
  const auto base = Deterministic(1.0, 1.0, 1.0, 1.0);
  const auto model = MakeWanModel(base, 3, 75.0);
  Rng rng(11);
  std::vector<ReplicaLegSample> legs;
  for (int trial = 0; trial < 500; ++trial) {
    model->SampleTrial(rng, &legs);
    ASSERT_EQ(legs.size(), 3u);
    int local_writes = 0;
    int local_reads = 0;
    for (const auto& leg : legs) {
      EXPECT_TRUE(leg.w == 1.0 || leg.w == 76.0);
      EXPECT_TRUE(leg.r == 1.0 || leg.r == 76.0);
      EXPECT_EQ(leg.w, leg.a);  // same locality for both write legs
      EXPECT_EQ(leg.r, leg.s);
      if (leg.w == 1.0) ++local_writes;
      if (leg.r == 1.0) ++local_reads;
    }
    EXPECT_EQ(local_writes, 1);
    EXPECT_EQ(local_reads, 1);
  }
}

TEST(WanModelTest, ReadAndWriteLocalityAreIndependent) {
  const auto base = Deterministic(1.0, 1.0, 1.0, 1.0);
  const auto model = MakeWanModel(base, 3, 75.0);
  Rng rng(12);
  std::vector<ReplicaLegSample> legs;
  int same_locality = 0;
  const int trials = 30000;
  for (int trial = 0; trial < trials; ++trial) {
    model->SampleTrial(rng, &legs);
    int write_local = -1;
    int read_local = -1;
    for (int i = 0; i < 3; ++i) {
      if (legs[i].w == 1.0) write_local = i;
      if (legs[i].r == 1.0) read_local = i;
    }
    if (write_local == read_local) ++same_locality;
  }
  // Independent uniform picks coincide 1/3 of the time.
  EXPECT_NEAR(static_cast<double>(same_locality) / trials, 1.0 / 3.0, 0.01);
}

TEST(ModelDescribeTest, NamesAreInformative) {
  EXPECT_NE(MakeIidModel(LnkdDisk(), 3)->Describe().find("LNKD-DISK"),
            std::string::npos);
  EXPECT_NE(MakeWanModel(WanLocalBase(), 3)->Describe().find("WAN"),
            std::string::npos);
}

}  // namespace
}  // namespace pbs
