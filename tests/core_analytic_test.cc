#include "core/analytic.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/closed_form.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "util/math.h"

namespace pbs {
namespace {

TEST(DiscretizedDistributionTest, RoundTripsExponentialCdf) {
  const auto exp = Exponential(0.5);
  const auto grid =
      DiscretizedDistribution::FromDistribution(*exp, 100.0, 4000);
  for (double x : {0.5, 1.0, 2.0, 5.0, 10.0, 30.0}) {
    EXPECT_NEAR(grid.Cdf(x), exp->Cdf(x), 0.002) << "x=" << x;
  }
  EXPECT_NEAR(grid.Mean(), 2.0, 0.02);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(grid.Quantile(p), exp->Quantile(p), 0.05) << "p=" << p;
  }
}

TEST(DiscretizedDistributionTest, TailMassLumpedIntoLastBin) {
  const auto exp = Exponential(0.01);  // mean 100 >> grid max 10
  const auto grid = DiscretizedDistribution::FromDistribution(*exp, 10.0, 100);
  EXPECT_NEAR(grid.Cdf(10.0), 1.0, 1e-12);  // all mass inside the grid
  EXPECT_GT(grid.mass(99), 0.85);           // most of it in the last bin
}

TEST(DiscretizedDistributionTest, ConvolutionOfPointMasses) {
  const auto a = DiscretizedDistribution::FromDistribution(
      *PointMass(2.0), 10.0, 1000);
  const auto b = DiscretizedDistribution::FromDistribution(
      *PointMass(3.0), 10.0, 1000);
  const auto sum = DiscretizedDistribution::Convolve(a, b);
  EXPECT_NEAR(sum.Quantile(0.5), 5.0, 0.02);
  EXPECT_NEAR(sum.Mean(), 5.0, 0.02);
}

TEST(DiscretizedDistributionTest, ConvolutionMatchesKnownSum) {
  // Sum of two Exp(1) is Gamma(2,1): CDF = 1 - e^-x (1 + x).
  const auto e = DiscretizedDistribution::FromDistribution(
      *Exponential(1.0), 60.0, 6000);
  const auto sum = DiscretizedDistribution::Convolve(e, e);
  for (double x : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double expected = 1.0 - std::exp(-x) * (1.0 + x);
    EXPECT_NEAR(sum.Cdf(x), expected, 0.003) << "x=" << x;
  }
}

TEST(DiscretizedDistributionTest, ConvolutionPreservesTheMean) {
  // Regression: bin centers sum to a bin *edge*; dumping that product mass
  // into the lower bin biased every convolution's mean low by step/2. On
  // this deliberately coarse grid (step = 0.5) the old bias was 0.25 —
  // an order of magnitude beyond the tolerance here.
  const auto a = DiscretizedDistribution::FromDistribution(
      *Exponential(1.0), 40.0, 80);
  const auto b = DiscretizedDistribution::FromDistribution(
      *Exponential(0.5), 40.0, 80);
  const auto sum = DiscretizedDistribution::Convolve(a, b);
  EXPECT_NEAR(sum.Mean(), a.Mean() + b.Mean(), 0.02);

  // Self-convolution chains must not accumulate the bias either: the old
  // placement lost k * step/2 after k convolutions.
  auto chain = a;
  for (int k = 0; k < 4; ++k) {
    chain = DiscretizedDistribution::Convolve(chain, a);
  }
  EXPECT_NEAR(chain.Mean(), 5.0 * a.Mean(), 0.05);
}

TEST(DiscretizedDistributionTest, OrderStatisticMinimumOfExponentials) {
  // Min of n iid Exp(lambda) is Exp(n * lambda).
  const auto e = DiscretizedDistribution::FromDistribution(
      *Exponential(0.5), 60.0, 6000);
  const auto minimum = DiscretizedDistribution::OrderStatistic(e, 3, 1);
  const auto expected = Exponential(1.5);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(minimum.Quantile(p), expected->Quantile(p),
                0.02 + 0.02 * expected->Quantile(p))
        << "p=" << p;
  }
}

TEST(DiscretizedDistributionTest, OrderStatisticMaximum) {
  // Max of n iid U(0,1): CDF = x^n.
  const auto u = DiscretizedDistribution::FromDistribution(
      *Uniform(0.0, 1.0), 1.0, 2000);
  const auto maximum = DiscretizedDistribution::OrderStatistic(u, 4, 4);
  for (double x : {0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(maximum.Cdf(x), std::pow(x, 4.0), 0.003) << "x=" << x;
  }
}

TEST(DiscretizedDistributionTest, SingleBinGridIsAPointMass) {
  // The documented degenerate grid: one bin carries all the mass at its
  // center, step/2.
  const auto grid =
      DiscretizedDistribution::FromDistribution(*Exponential(1.0), 10.0, 1);
  EXPECT_EQ(grid.bins(), 1);
  EXPECT_DOUBLE_EQ(grid.mass(0), 1.0);
  EXPECT_DOUBLE_EQ(grid.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(grid.CdfAtEdge(0), 1.0);
  EXPECT_GE(grid.Quantile(0.5), 0.0);
  EXPECT_LE(grid.Quantile(0.99), 10.0);
  // Order statistics of a point mass are the point mass.
  const auto order = DiscretizedDistribution::OrderStatistic(grid, 5, 3);
  EXPECT_DOUBLE_EQ(order.mass(0), 1.0);
}

TEST(DiscretizedDistributionTest, OrderStatisticExtremesBracketTheMiddle) {
  // k = 1 (min) and k = n (max) are the exact R = 1 / R = N arms of the
  // solver; any middle k must sit between them pointwise in the CDF.
  const auto e = DiscretizedDistribution::FromDistribution(
      *Exponential(0.5), 60.0, 3000);
  const auto lo = DiscretizedDistribution::OrderStatistic(e, 5, 1);
  const auto mid = DiscretizedDistribution::OrderStatistic(e, 5, 3);
  const auto hi = DiscretizedDistribution::OrderStatistic(e, 5, 5);
  for (double x : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_GE(lo.Cdf(x) + 1e-12, mid.Cdf(x)) << "x=" << x;
    EXPECT_GE(mid.Cdf(x) + 1e-12, hi.Cdf(x)) << "x=" << x;
    // Max of n iid: CDF = F^n exactly.
    EXPECT_NEAR(hi.Cdf(x), std::pow(e.Cdf(x), 5.0), 0.005) << "x=" << x;
  }
}

TEST(DiscretizedDistributionTest, MixtureIsTheWeightedCdf) {
  const auto a = DiscretizedDistribution::FromDistribution(
      *Exponential(1.0), 50.0, 2000);
  const auto b = DiscretizedDistribution::FromDistribution(
      *Exponential(0.2), 50.0, 2000);
  const auto mixed = DiscretizedDistribution::Mixture(a, 0.3, b, 0.7);
  for (double x : {0.5, 2.0, 5.0, 20.0}) {
    EXPECT_NEAR(mixed.Cdf(x), 0.3 * a.Cdf(x) + 0.7 * b.Cdf(x), 1e-12)
        << "x=" << x;
  }
  EXPECT_NEAR(mixed.Mean(), 0.3 * a.Mean() + 0.7 * b.Mean(), 1e-9);
}

TEST(AnalyticGridTest, AutoMaxTracksTheLegScaleUnderTheCap) {
  // LNKD-SSD's legs live at sub-millisecond scale with a Pareto tail: the
  // auto-scaled bound lands far below the 4000 ms default cap, buying a
  // proportionally finer step from the same bin budget.
  const AnalyticGridOptions defaults;
  ASSERT_TRUE(defaults.auto_max);
  const double resolved = ResolveGridMaxMs(LnkdSsd(), defaults);
  EXPECT_LT(resolved, defaults.max_ms);
  EXPECT_DOUBLE_EQ(resolved, AutoGridMaxMs(LnkdSsd()));
  EXPECT_GT(resolved, 0.0);

  // Explicit grids opt out: max_ms is literal.
  AnalyticGridOptions pinned = defaults;
  pinned.auto_max = false;
  EXPECT_DOUBLE_EQ(ResolveGridMaxMs(LnkdSsd(), pinned), pinned.max_ms);

  // Degenerate legs cannot collapse the grid below one step's width.
  WarsDistributions tiny;
  tiny.name = "tiny";
  tiny.w = PointMass(1e-6);
  tiny.a = PointMass(1e-6);
  tiny.r = PointMass(1e-6);
  tiny.s = PointMass(1e-6);
  EXPECT_DOUBLE_EQ(ResolveGridMaxMs(tiny, defaults),
                   defaults.max_ms / defaults.bins);
}

TEST(AnalyticGridTest, ScenarioConstructionHonorsTheResolvedBound) {
  const AnalyticGridOptions defaults;
  const auto scenario = MakeAnalyticScenario(LnkdSsd(), defaults);
  ASSERT_TRUE(scenario.ok());
  EXPECT_NEAR(scenario.value()->max_ms(),
              ResolveGridMaxMs(LnkdSsd(), defaults), 1e-9);
  EXPECT_EQ(scenario.value()->bins(), defaults.bins);
}

TEST(AnalyticWarsTest, LatencyQuantilesMatchMonteCarloExactly) {
  // Operation latencies are pure order statistics: the analytic solver and
  // the sampler must agree to grid + sampling resolution.
  const auto dists = LnkdDisk();
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 2}, QuorumConfig{3, 3, 1}}) {
    const AnalyticWars analytic(config, dists, 4000.0, 40000);
    const auto mc = EstimateLatencies(config, MakeIidModel(dists, config.n),
                                      300000, /*seed=*/1);
    // Tolerance tightened after the convolution mean-bias fix: with the
    // product mass split across the straddled bins the grid marginals no
    // longer drift low by step/2 per convolved leg.
    for (double pct : {50.0, 90.0, 99.0, 99.9}) {
      const double expected = mc.writes.Percentile(pct);
      EXPECT_NEAR(analytic.WriteLatencyQuantile(pct / 100.0), expected,
                  0.02 * expected + 0.15)
          << config.ToString() << " write pct=" << pct;
      const double read_expected = mc.reads.Percentile(pct);
      EXPECT_NEAR(analytic.ReadLatencyQuantile(pct / 100.0), read_expected,
                  0.02 * read_expected + 0.15)
          << config.ToString() << " read pct=" << pct;
    }
  }
}

TEST(AnalyticWarsTest, ApproxTVisibilityTracksMonteCarlo) {
  // The independence approximation should land within a few points of the
  // Monte Carlo truth for N=3 partial quorums and converge as t grows.
  const auto dists = LnkdDisk();
  const QuorumConfig config{3, 1, 1};
  const AnalyticWars analytic(config, dists, 2000.0, 20000);
  const auto mc = EstimateTVisibility(config, MakeIidModel(dists, 3), 300000,
                                      /*seed=*/2);
  for (double t : {0.0, 5.0, 20.0, 60.0}) {
    // The ignored correlations matter most immediately after commit
    // (~0.07 at t=0 for N=3; see bench/analytic_vs_mc) and wash out as t
    // grows.
    const double tolerance = t == 0.0 ? 0.10 : 0.05;
    EXPECT_NEAR(analytic.ApproxProbConsistent(t), mc.ProbConsistent(t),
                tolerance)
        << "t=" << t;
  }
  // Convergence at large t.
  EXPECT_NEAR(analytic.ApproxProbConsistent(500.0), 1.0, 0.005);
}

TEST(AnalyticWarsTest, ApproxCurveMonotoneInT) {
  const AnalyticWars analytic({3, 1, 1}, Ymmr(), 4000.0, 8000);
  double prev = 0.0;
  for (double t = 0.0; t <= 2000.0; t += 50.0) {
    const double p = analytic.ApproxProbConsistent(t);
    EXPECT_GE(p + 1e-9, prev);
    prev = p;
  }
}

TEST(AnalyticWarsTest, StrictQuorumsExactlyConsistent) {
  const AnalyticWars analytic({3, 2, 2}, LnkdDisk(), 1000.0, 2000);
  EXPECT_DOUBLE_EQ(analytic.ApproxProbConsistent(0.0), 1.0);
  EXPECT_DOUBLE_EQ(analytic.ApproxTimeForConsistency(0.9999), 0.0);
}

TEST(AnalyticWarsTest, TimeForConsistencyInvertsTheCurve) {
  const AnalyticWars analytic({3, 1, 1}, LnkdDisk(), 2000.0, 8000);
  const double t = analytic.ApproxTimeForConsistency(0.99);
  EXPECT_GE(analytic.ApproxProbConsistent(t), 0.99);
  EXPECT_GT(t, 0.0);
  // Binary search returns the *smallest* grid point meeting p: one step
  // earlier must miss it.
  const double step = analytic.scenario()->step();
  if (t >= step) {
    EXPECT_LT(analytic.ApproxProbConsistent(t - step), 0.99);
  }
}

TEST(AnalyticWarsTest, QuorumOnlyFanoutReadsTheMaxOfR) {
  // kQuorumOnly sends exactly R probes, so read latency is the max of R
  // iid (r + s) — the R-of-R order statistic on the shared grid.
  const auto scenario = MakeAnalyticScenario(LnkdDisk(), AnalyticGridOptions{});
  ASSERT_TRUE(scenario.ok());
  const QuorumConfig config{3, 2, 2};
  const AnalyticWars all_n(config, scenario.value(), ReadFanout::kAllN);
  const AnalyticWars quorum_only(config, scenario.value(),
                                 ReadFanout::kQuorumOnly);
  const auto expected = DiscretizedDistribution::OrderStatistic(
      scenario.value()->read_response(), 2, 2);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(quorum_only.ReadLatencyQuantile(p), expected.Quantile(p),
                1e-9)
        << "p=" << p;
    // R-of-N (N > R helpers racing) is never slower than R-of-R.
    EXPECT_LE(all_n.ReadLatencyQuantile(p),
              quorum_only.ReadLatencyQuantile(p) + 1e-9)
        << "p=" << p;
  }
  // Write latency does not depend on the read fan-out.
  EXPECT_DOUBLE_EQ(all_n.WriteLatencyQuantile(0.99),
                   quorum_only.WriteLatencyQuantile(0.99));
}

TEST(AnalyticWarsTest, HoistedCurveMatchesTheDirectFormula) {
  // Regression for the shifted-dot-product evaluation: stale(t) must equal
  // the direct per-commit-bin sum
  //   sum_i m_i * ps * (q(wt_i + t) / S_wa(wt_i))^R
  // evaluated straight off the scenario accessors.
  const auto scenario = MakeAnalyticScenario(LnkdDisk(), AnalyticGridOptions{});
  ASSERT_TRUE(scenario.ok());
  const QuorumConfig config{3, 1, 2};
  const AnalyticWars analytic(config, scenario.value());
  const double step = scenario.value()->step();
  const int bins = scenario.value()->bins();
  const double ps =
      BinomialRatio(config.n - config.w, config.n, config.r);
  const auto& commit = analytic.commit_time();
  const auto& wa = scenario.value()->write_ack();
  for (double t : {0.0, 3.0 * step, 17.0 * step, 100.0 * step}) {
    const int k = static_cast<int>(t / step + 0.5);
    double stale = 0.0;
    for (int i = 0; i + k < bins; ++i) {
      const double mass = commit.mass(i);
      if (mass == 0.0) continue;
      const double s_wa =
          std::max(1.0 - wa.Cdf(commit.value(i)), 1e-12);
      double term = 1.0;
      for (int j = 0; j < config.r; ++j) {
        term *= scenario.value()->q(i + k) / s_wa;
      }
      stale += ps * mass * term;
    }
    EXPECT_NEAR(analytic.ApproxProbConsistent(t), 1.0 - stale, 1e-12)
        << "t=" << t;
  }
}

TEST(AnalyticWarsTest, SlowPropagationDegeneratesToClosedFormPs) {
  // When writes propagate far slower than everything else, almost no
  // non-ack replica holds the version at t = 0 and P(stale | 0) collapses
  // to the Equation 1 combinatorial floor ps = C(N-W, R)/C(N, R) — which
  // is also KStalenessProbability(config, 1).
  WarsDistributions slow;
  slow.name = "slow-propagation";
  slow.w = Exponential(0.001);  // mean 1000 ms
  slow.a = PointMass(0.1);
  slow.r = PointMass(0.1);
  slow.s = PointMass(0.1);
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{5, 2, 2}}) {
    const AnalyticWars analytic(config, slow, 20000.0, 20000);
    const double ps = KStalenessProbability(config, 1);
    EXPECT_NEAR(1.0 - analytic.ApproxProbConsistent(0.0), ps, 0.01)
        << config.ToString();
  }
}

}  // namespace
}  // namespace pbs
