#include "core/analytic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/latency.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/primitives.h"
#include "dist/production.h"

namespace pbs {
namespace {

TEST(DiscretizedDistributionTest, RoundTripsExponentialCdf) {
  const auto exp = Exponential(0.5);
  const auto grid =
      DiscretizedDistribution::FromDistribution(*exp, 100.0, 4000);
  for (double x : {0.5, 1.0, 2.0, 5.0, 10.0, 30.0}) {
    EXPECT_NEAR(grid.Cdf(x), exp->Cdf(x), 0.002) << "x=" << x;
  }
  EXPECT_NEAR(grid.Mean(), 2.0, 0.02);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(grid.Quantile(p), exp->Quantile(p), 0.05) << "p=" << p;
  }
}

TEST(DiscretizedDistributionTest, TailMassLumpedIntoLastBin) {
  const auto exp = Exponential(0.01);  // mean 100 >> grid max 10
  const auto grid = DiscretizedDistribution::FromDistribution(*exp, 10.0, 100);
  EXPECT_NEAR(grid.Cdf(10.0), 1.0, 1e-12);  // all mass inside the grid
  EXPECT_GT(grid.mass(99), 0.85);           // most of it in the last bin
}

TEST(DiscretizedDistributionTest, ConvolutionOfPointMasses) {
  const auto a = DiscretizedDistribution::FromDistribution(
      *PointMass(2.0), 10.0, 1000);
  const auto b = DiscretizedDistribution::FromDistribution(
      *PointMass(3.0), 10.0, 1000);
  const auto sum = DiscretizedDistribution::Convolve(a, b);
  EXPECT_NEAR(sum.Quantile(0.5), 5.0, 0.02);
  EXPECT_NEAR(sum.Mean(), 5.0, 0.02);
}

TEST(DiscretizedDistributionTest, ConvolutionMatchesKnownSum) {
  // Sum of two Exp(1) is Gamma(2,1): CDF = 1 - e^-x (1 + x).
  const auto e = DiscretizedDistribution::FromDistribution(
      *Exponential(1.0), 60.0, 6000);
  const auto sum = DiscretizedDistribution::Convolve(e, e);
  for (double x : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double expected = 1.0 - std::exp(-x) * (1.0 + x);
    EXPECT_NEAR(sum.Cdf(x), expected, 0.003) << "x=" << x;
  }
}

TEST(DiscretizedDistributionTest, ConvolutionPreservesTheMean) {
  // Regression: bin centers sum to a bin *edge*; dumping that product mass
  // into the lower bin biased every convolution's mean low by step/2. On
  // this deliberately coarse grid (step = 0.5) the old bias was 0.25 —
  // an order of magnitude beyond the tolerance here.
  const auto a = DiscretizedDistribution::FromDistribution(
      *Exponential(1.0), 40.0, 80);
  const auto b = DiscretizedDistribution::FromDistribution(
      *Exponential(0.5), 40.0, 80);
  const auto sum = DiscretizedDistribution::Convolve(a, b);
  EXPECT_NEAR(sum.Mean(), a.Mean() + b.Mean(), 0.02);

  // Self-convolution chains must not accumulate the bias either: the old
  // placement lost k * step/2 after k convolutions.
  auto chain = a;
  for (int k = 0; k < 4; ++k) {
    chain = DiscretizedDistribution::Convolve(chain, a);
  }
  EXPECT_NEAR(chain.Mean(), 5.0 * a.Mean(), 0.05);
}

TEST(DiscretizedDistributionTest, OrderStatisticMinimumOfExponentials) {
  // Min of n iid Exp(lambda) is Exp(n * lambda).
  const auto e = DiscretizedDistribution::FromDistribution(
      *Exponential(0.5), 60.0, 6000);
  const auto minimum = DiscretizedDistribution::OrderStatistic(e, 3, 1);
  const auto expected = Exponential(1.5);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(minimum.Quantile(p), expected->Quantile(p),
                0.02 + 0.02 * expected->Quantile(p))
        << "p=" << p;
  }
}

TEST(DiscretizedDistributionTest, OrderStatisticMaximum) {
  // Max of n iid U(0,1): CDF = x^n.
  const auto u = DiscretizedDistribution::FromDistribution(
      *Uniform(0.0, 1.0), 1.0, 2000);
  const auto maximum = DiscretizedDistribution::OrderStatistic(u, 4, 4);
  for (double x : {0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(maximum.Cdf(x), std::pow(x, 4.0), 0.003) << "x=" << x;
  }
}

TEST(AnalyticWarsTest, LatencyQuantilesMatchMonteCarloExactly) {
  // Operation latencies are pure order statistics: the analytic solver and
  // the sampler must agree to grid + sampling resolution.
  const auto dists = LnkdDisk();
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 2}, QuorumConfig{3, 3, 1}}) {
    const AnalyticWars analytic(config, dists, 4000.0, 40000);
    const auto mc = EstimateLatencies(config, MakeIidModel(dists, config.n),
                                      300000, /*seed=*/1);
    // Tolerance tightened after the convolution mean-bias fix: with the
    // product mass split across the straddled bins the grid marginals no
    // longer drift low by step/2 per convolved leg.
    for (double pct : {50.0, 90.0, 99.0, 99.9}) {
      const double expected = mc.writes.Percentile(pct);
      EXPECT_NEAR(analytic.WriteLatencyQuantile(pct / 100.0), expected,
                  0.02 * expected + 0.15)
          << config.ToString() << " write pct=" << pct;
      const double read_expected = mc.reads.Percentile(pct);
      EXPECT_NEAR(analytic.ReadLatencyQuantile(pct / 100.0), read_expected,
                  0.02 * read_expected + 0.15)
          << config.ToString() << " read pct=" << pct;
    }
  }
}

TEST(AnalyticWarsTest, ApproxTVisibilityTracksMonteCarlo) {
  // The independence approximation should land within a few points of the
  // Monte Carlo truth for N=3 partial quorums and converge as t grows.
  const auto dists = LnkdDisk();
  const QuorumConfig config{3, 1, 1};
  const AnalyticWars analytic(config, dists, 2000.0, 20000);
  const auto mc = EstimateTVisibility(config, MakeIidModel(dists, 3), 300000,
                                      /*seed=*/2);
  for (double t : {0.0, 5.0, 20.0, 60.0}) {
    // The ignored correlations matter most immediately after commit
    // (~0.07 at t=0 for N=3; see bench/analytic_vs_mc) and wash out as t
    // grows.
    const double tolerance = t == 0.0 ? 0.10 : 0.05;
    EXPECT_NEAR(analytic.ApproxProbConsistent(t), mc.ProbConsistent(t),
                tolerance)
        << "t=" << t;
  }
  // Convergence at large t.
  EXPECT_NEAR(analytic.ApproxProbConsistent(500.0), 1.0, 0.005);
}

TEST(AnalyticWarsTest, ApproxCurveMonotoneInT) {
  const AnalyticWars analytic({3, 1, 1}, Ymmr(), 4000.0, 8000);
  double prev = 0.0;
  for (double t = 0.0; t <= 2000.0; t += 50.0) {
    const double p = analytic.ApproxProbConsistent(t);
    EXPECT_GE(p + 1e-9, prev);
    prev = p;
  }
}

TEST(AnalyticWarsTest, StrictQuorumsExactlyConsistent) {
  const AnalyticWars analytic({3, 2, 2}, LnkdDisk(), 1000.0, 2000);
  EXPECT_DOUBLE_EQ(analytic.ApproxProbConsistent(0.0), 1.0);
  EXPECT_DOUBLE_EQ(analytic.ApproxTimeForConsistency(0.9999), 0.0);
}

TEST(AnalyticWarsTest, TimeForConsistencyInvertsTheCurve) {
  const AnalyticWars analytic({3, 1, 1}, LnkdDisk(), 2000.0, 8000);
  const double t = analytic.ApproxTimeForConsistency(0.99);
  EXPECT_GE(analytic.ApproxProbConsistent(t), 0.99);
  EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace pbs
