// Instruments: HDR-style log-bucketed histogram semantics (quantiles vs the
// repo-standard QuantileSorted, bounded relative error), registry merges,
// and the thread-count determinism of the observed WARS entry point.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/wars.h"
#include "dist/production.h"
#include "obs/exporters.h"
#include "obs/instruments.h"
#include "obs/registry.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pbs {
namespace obs {
namespace {

TEST(CounterTest, AddsAndMerges) {
  Counter a;
  a.Add();
  a.Add(41);
  EXPECT_EQ(a.value, 42);
  Counter b;
  b.Add(8);
  a.Merge(b);
  EXPECT_EQ(a.value, 50);
}

TEST(LogHistogramTest, MomentsAreExact) {
  LogHistogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0 / 3.0);
}

TEST(LogHistogramTest, EmptyHistogramIsInert) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, BucketIndexIsMonotoneAndBoundsContainValues) {
  double previous = -1.0;
  for (double v = 1e-6; v < 1e6; v *= 1.37) {
    const int index = LogHistogram::BucketIndex(v);
    EXPECT_GE(index, static_cast<int>(previous));
    previous = index;
    EXPECT_GE(v, LogHistogram::BucketLow(index) * (1.0 - 1e-12));
    EXPECT_LE(v, LogHistogram::BucketHigh(index) * (1.0 + 1e-12));
  }
  // Bucket 0 absorbs zero and negatives.
  EXPECT_EQ(LogHistogram::BucketIndex(0.0), 0);
  EXPECT_EQ(LogHistogram::BucketIndex(-5.0), 0);
}

TEST(LogHistogramTest, QuantilesTrackQuantileSortedWithinBucketResolution) {
  // 64 sub-buckets per octave bound the relative error of any in-bucket
  // position at ~1/64; interpolation halves typical error. Assert 3%.
  Rng rng(7);
  LogHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = -10.0 * std::log(rng.NextDouble());  // Exp(mean 10)
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double exact = QuantileSorted(samples, q);
    const double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, 0.03 * exact) << "q=" << q;
  }
  // Quantiles never escape the observed range.
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(LogHistogramTest, ChunkOrderedMergeIsExactlyReproducible) {
  // Recording split across chunk-local histograms, merged in chunk order,
  // must give bit-identical state no matter how many "threads" filled the
  // chunks — the merge order, not the fill schedule, defines the result.
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 4096; ++i) values.push_back(rng.NextDouble() * 100.0);

  const auto merge_in_chunks = [&values](int chunks) {
    std::vector<LogHistogram> locals(chunks);
    for (size_t i = 0; i < values.size(); ++i) {
      locals[i * chunks / values.size()].Record(values[i]);
    }
    LogHistogram merged;
    for (const LogHistogram& local : locals) merged.Merge(local);
    return merged;
  };
  // Same chunking, computed twice: bitwise identical (defaulted ==).
  EXPECT_EQ(merge_in_chunks(8), merge_in_chunks(8));
  // Counts agree across chunkings even though FP sums may not be bitwise.
  EXPECT_EQ(merge_in_chunks(1).count(), merge_in_chunks(8).count());
}

TEST(RegistryTest, MergeCreatesMissingInstruments) {
  Registry a;
  a.counter("x").Add(1);
  Registry b;
  b.counter("x").Add(2);
  b.counter("y").Add(5);
  b.histogram("h").Record(3.0);
  a.Merge(b);
  EXPECT_EQ(a.FindCounter("x")->value, 3);
  EXPECT_EQ(a.FindCounter("y")->value, 5);
  ASSERT_NE(a.FindHistogram("h"), nullptr);
  EXPECT_EQ(a.FindHistogram("h")->count(), 1);
  EXPECT_EQ(a.FindCounter("absent"), nullptr);
}

TEST(ObservedWarsTest, NullRegistryMatchesPlainRunBitwise) {
  const QuorumConfig config{3, 1, 2};
  const auto model = MakeIidModel(LnkdSsd(), config.n);
  PbsExecutionOptions exec;
  exec.threads = 2;
  const WarsTrialSet plain =
      RunWarsTrials(config, model, 20000, /*seed=*/5, false,
                    ReadFanout::kAllN, exec);
  const WarsTrialSet observed = RunWarsTrialsObserved(
      config, model, 20000, /*seed=*/5, false, ReadFanout::kAllN, exec,
      /*registry=*/nullptr);
  EXPECT_EQ(plain.write_latencies, observed.write_latencies);
  EXPECT_EQ(plain.read_latencies, observed.read_latencies);
  EXPECT_EQ(plain.staleness_thresholds, observed.staleness_thresholds);
}

TEST(ObservedWarsTest, RegistryDoesNotPerturbTrialsAndCountsThem) {
  const QuorumConfig config{5, 2, 2};
  const auto model = MakeIidModel(LnkdDisk(), config.n);
  PbsExecutionOptions exec;
  Registry registry;
  const WarsTrialSet observed = RunWarsTrialsObserved(
      config, model, 30000, /*seed=*/9, false, ReadFanout::kAllN, exec,
      &registry);
  const WarsTrialSet plain = RunWarsTrials(config, model, 30000, /*seed=*/9,
                                           false, ReadFanout::kAllN, exec);
  EXPECT_EQ(plain.staleness_thresholds, observed.staleness_thresholds);
  EXPECT_EQ(registry.FindCounter("wars/trials")->value, 30000);
  const LogHistogram* reads = registry.FindHistogram("wars/read_latency_ms");
  ASSERT_NE(reads, nullptr);
  EXPECT_EQ(reads->count(), 30000);
  std::vector<double> sorted = plain.read_latencies;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(reads->Quantile(0.99), QuantileSorted(sorted, 0.99),
              0.03 * QuantileSorted(sorted, 0.99));
}

TEST(ObservedWarsTest, MergedRegistryIsThreadCountInvariant) {
  // The (seed, chunk_size) contract extended to instruments: chunk-local
  // registries merged in chunk order serialize bitwise identically at any
  // thread count.
  const QuorumConfig config{3, 1, 1};
  const auto model = MakeIidModel(LnkdSsd(), config.n);
  std::vector<std::string> exports;
  for (int threads : {1, 4, 8}) {
    PbsExecutionOptions exec;
    exec.threads = threads;
    Registry registry;
    RunWarsTrialsObserved(config, model, 60000, /*seed=*/3, false,
                          ReadFanout::kAllN, exec, &registry);
    exports.push_back(MetricsJsonl(registry));
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
}

}  // namespace
}  // namespace obs
}  // namespace pbs
