#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  // Sample variance: sum((x-mean)^2)/(n-1) = 37.2.
  EXPECT_NEAR(stats.variance(), 37.2, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(37.2), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  // An empty accumulator has no mean; NaN (matching min/max) rather than a
  // fabricated 0.0 that silently poisons downstream averages.
  EXPECT_TRUE(std::isnan(stats.mean()));
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
  EXPECT_TRUE(std::isnan(stats.max()));
}

TEST(QuantileSortedTest, EndpointsAndMidpoint) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 3.0);
  // Type-7 interpolation: q=0.25 -> position 1.0 exactly -> 2.0.
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.25), 2.0);
  // q=0.1 -> position 0.4 -> 1.4.
  EXPECT_NEAR(QuantileSorted(sorted, 0.1), 1.4, 1e-12);
}

TEST(QuantileSortedTest, SingleElement) {
  const std::vector<double> sorted = {7.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.73), 7.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 7.0);
}

TEST(QuantileSortedTest, EmptyInputIsNaNNotUndefinedBehavior) {
  // Quantiles of nothing used to index sorted[0] on an empty vector (UB in
  // release builds). Now: NaN, for every q including the endpoints.
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(QuantileSorted(empty, 0.0)));
  EXPECT_TRUE(std::isnan(QuantileSorted(empty, 0.5)));
  EXPECT_TRUE(std::isnan(QuantileSorted(empty, 1.0)));
}

TEST(QuantilesTest, EmptyInputYieldsNaNs) {
  const auto qs = Quantiles({}, {0.0, 0.5, 1.0});
  ASSERT_EQ(qs.size(), 3u);
  for (double q : qs) EXPECT_TRUE(std::isnan(q));
}

TEST(QuantilesTest, SortsInput) {
  const auto qs = Quantiles({5.0, 1.0, 3.0, 2.0, 4.0}, {0.0, 0.5, 1.0});
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_DOUBLE_EQ(qs[0], 1.0);
  EXPECT_DOUBLE_EQ(qs[1], 3.0);
  EXPECT_DOUBLE_EQ(qs[2], 5.0);
}

TEST(EcdfSortedTest, StepFunction) {
  const std::vector<double> sorted = {1.0, 2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(EcdfSorted(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(EcdfSorted(sorted, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(EcdfSorted(sorted, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(EcdfSorted(sorted, 2.5), 0.75);
  EXPECT_DOUBLE_EQ(EcdfSorted(sorted, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(EcdfSorted(sorted, 99.0), 1.0);
}

TEST(EcdfSortedTest, EmptyInputIsNaN) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(EcdfSorted(empty, 0.0)));
  EXPECT_TRUE(std::isnan(EcdfSorted(empty, 123.0)));
}

TEST(RmseTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(Rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(NormalizedRmseTest, DividesByReferenceRange) {
  // reference range = 10, rmse = 1 -> 0.1.
  const std::vector<double> ref = {0.0, 10.0};
  const std::vector<double> est = {1.0, 9.0};
  EXPECT_NEAR(NormalizedRmse(ref, est), 0.1, 1e-12);
}

TEST(NormalizedRmseTest, ZeroRangeFallsBackToRmse) {
  const std::vector<double> ref = {5.0, 5.0};
  const std::vector<double> est = {6.0, 6.0};
  EXPECT_DOUBLE_EQ(NormalizedRmse(ref, est), 1.0);
}

TEST(HistogramTest, BinBoundaries) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 9.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(HistogramTest, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);  // underflow
  h.Add(0.0);
  h.Add(0.5);
  h.Add(9.999);
  h.Add(10.0);  // overflow (half-open upper bound)
  h.Add(50.0);  // overflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(HistogramTest, CdfInterpolatesWithinBins) {
  Histogram h(0.0, 4.0, 4);
  for (int i = 0; i < 4; ++i) h.Add(i + 0.5);  // one per bin
  EXPECT_DOUBLE_EQ(h.CdfAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(4.0), 1.0);
  EXPECT_NEAR(h.CdfAt(2.0), 0.5, 1e-12);
  // Halfway through bin 0: 0.5 of that bin's single observation.
  EXPECT_NEAR(h.CdfAt(0.5), 0.125, 1e-12);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace pbs
