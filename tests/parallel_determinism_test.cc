// The parallel Monte Carlo engine's headline guarantee: results are a
// function of (seed, chunk_size) only, NEVER of the thread count. These
// tests pin that down by running every parallelized estimator at several
// thread counts and demanding bitwise-identical outputs. A small chunk_size
// is used throughout so even modest trial counts span many chunks (and so
// the serial run exercises the same chunked stream layout).

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/quorum_sampler.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "kvs/hotpath.h"
#include "kvs/rebalance_experiment.h"
#include "util/parallel.h"

namespace pbs {
namespace {

PbsExecutionOptions Exec(int threads) {
  PbsExecutionOptions exec;
  exec.threads = threads;
  exec.chunk_size = 512;
  return exec;
}

TEST(ParallelDeterminismTest, RunWarsTrialsIsBitwiseThreadCountInvariant) {
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const WarsTrialSet serial = RunWarsTrials(
      {3, 1, 2}, model, 20000, /*seed=*/9, /*want_propagation=*/false,
      ReadFanout::kAllN, Exec(1));
  for (int threads : {2, 4, 8}) {
    const WarsTrialSet parallel = RunWarsTrials(
        {3, 1, 2}, model, 20000, /*seed=*/9, /*want_propagation=*/false,
        ReadFanout::kAllN, Exec(threads));
    // Exact double equality on every column entry: the parallel runs must
    // reproduce the serial draw sequence, not merely agree statistically.
    EXPECT_EQ(parallel.write_latencies, serial.write_latencies);
    EXPECT_EQ(parallel.read_latencies, serial.read_latencies);
    EXPECT_EQ(parallel.staleness_thresholds, serial.staleness_thresholds);
  }
}

TEST(ParallelDeterminismTest, RunWarsTrialsPropagationColumnsInvariant) {
  const auto model = MakeIidModel(LnkdDisk(), 5);
  const WarsTrialSet serial = RunWarsTrials(
      {5, 2, 2}, model, 8000, /*seed=*/10, /*want_propagation=*/true,
      ReadFanout::kAllN, Exec(1));
  const WarsTrialSet parallel = RunWarsTrials(
      {5, 2, 2}, model, 8000, /*seed=*/10, /*want_propagation=*/true,
      ReadFanout::kAllN, Exec(8));
  ASSERT_EQ(serial.propagation.size(), 5u);
  EXPECT_EQ(parallel.propagation, serial.propagation);
}

TEST(ParallelDeterminismTest, QuorumOnlyFanoutInvariant) {
  // kQuorumOnly draws a random R-subset per trial, consuming a different
  // amount of randomness than kAllN — the chunked streams must keep that
  // deterministic too.
  const auto model = MakeIidModel(LnkdSsd(), 5);
  const WarsTrialSet serial = RunWarsTrials(
      {5, 2, 1}, model, 8000, /*seed=*/11, /*want_propagation=*/false,
      ReadFanout::kQuorumOnly, Exec(1));
  const WarsTrialSet parallel = RunWarsTrials(
      {5, 2, 1}, model, 8000, /*seed=*/11, /*want_propagation=*/false,
      ReadFanout::kQuorumOnly, Exec(4));
  EXPECT_EQ(parallel.read_latencies, serial.read_latencies);
  EXPECT_EQ(parallel.staleness_thresholds, serial.staleness_thresholds);
}

TEST(ParallelDeterminismTest, EstimateTVisibilityInvariant) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const TVisibilityCurve serial =
      EstimateTVisibility({3, 1, 1}, model, 20000, /*seed=*/12, Exec(1));
  const TVisibilityCurve parallel =
      EstimateTVisibility({3, 1, 1}, model, 20000, /*seed=*/12, Exec(8));
  for (double t : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_EQ(parallel.ProbConsistent(t), serial.ProbConsistent(t)) << t;
  }
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(parallel.TimeForConsistency(p), serial.TimeForConsistency(p))
        << p;
  }
}

TEST(ParallelDeterminismTest, QuorumSamplerEstimatesInvariant) {
  // Each estimator call consumes exactly one Split() from the sampler's
  // base RNG regardless of thread count, so a *sequence* of calls must
  // agree across thread counts call by call.
  QuorumSampler serial({5, 2, 2}, /*seed=*/13);
  QuorumSampler parallel({5, 2, 2}, /*seed=*/13);
  EXPECT_EQ(parallel.EstimateMissProbability(30000, Exec(8)),
            serial.EstimateMissProbability(30000, Exec(1)));
  EXPECT_EQ(parallel.EstimateKStaleness(3, 30000, Exec(4)),
            serial.EstimateKStaleness(3, 30000, Exec(1)));
  EXPECT_EQ(parallel.StalenessHistogram(
                8, 20000, QuorumSampler::WritePlacement::kUniformRandom,
                Exec(8)),
            serial.StalenessHistogram(
                8, 20000, QuorumSampler::WritePlacement::kUniformRandom,
                Exec(1)));
  EXPECT_EQ(parallel.StalenessHistogram(
                8, 20000, QuorumSampler::WritePlacement::kRoundRobin,
                Exec(2)),
            serial.StalenessHistogram(
                8, 20000, QuorumSampler::WritePlacement::kRoundRobin,
                Exec(1)));
}

TEST(ParallelDeterminismTest, EstimateKTStalenessInvariant) {
  const auto model = MakeIidModel(LnkdSsd(), 3);
  const KTStalenessResult serial = EstimateKTStaleness(
      {3, 1, 1}, model, Exponential(0.1), /*t=*/1.0, /*history=*/20,
      /*trials=*/10000, /*seed=*/14, Exec(1));
  for (int threads : {2, 8}) {
    const KTStalenessResult parallel = EstimateKTStaleness(
        {3, 1, 1}, model, Exponential(0.1), /*t=*/1.0, /*history=*/20,
        /*trials=*/10000, /*seed=*/14, Exec(threads));
    EXPECT_EQ(parallel.histogram, serial.histogram);
  }
}

TEST(ParallelDeterminismTest, ChunkSizeIsPartOfTheContract) {
  // Changing chunk_size legitimately changes the draws (different stream
  // layout); this documents that the determinism contract is (seed,
  // chunk_size), not seed alone. Both runs remain valid estimates.
  const auto model = MakeIidModel(LnkdSsd(), 3);
  PbsExecutionOptions coarse = Exec(1);
  coarse.chunk_size = 1 << 20;  // one chunk: the pre-parallel layout
  const WarsTrialSet a = RunWarsTrials({3, 1, 1}, model, 4096, /*seed=*/15,
                                       false, ReadFanout::kAllN, coarse);
  const WarsTrialSet b = RunWarsTrials({3, 1, 1}, model, 4096, /*seed=*/15,
                                       false, ReadFanout::kAllN, Exec(1));
  EXPECT_NE(a.staleness_thresholds, b.staleness_thresholds);
  // Statistically they still agree: medians within Monte Carlo noise.
  std::vector<double> sa = a.staleness_thresholds;
  std::vector<double> sb = b.staleness_thresholds;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_NEAR(sa[sa.size() / 2], sb[sb.size() / 2], 0.5);
}

TEST(ParallelDeterminismTest, ChaosTrialsInvariant) {
  // The chaos campaign is the stress case for the (seed, chunk_size)
  // contract: each trial builds its own cluster, injects a seeded random
  // gray-fault schedule, hedges reads and retries client operations — all
  // of that must be bitwise identical at 1 vs N threads, down to the exact
  // counter values and latency quantiles in every per-trial summary.
  kvs::ChaosTrialOptions options;
  options.trials = 4;
  options.seed = 404;
  options.experiment.writes = 300;
  options.experiment.write_spacing_ms = 50.0;
  options.experiment.read_offsets_ms = {1.0, 10.0};
  options.experiment.cluster.quorum = {3, 2, 2};
  options.experiment.cluster.legs = LnkdSsd();
  options.experiment.cluster.request_timeout_ms = 200.0;
  options.experiment.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.experiment.cluster.hedge.enabled = true;
  options.experiment.cluster.hedge.quantile = 0.99;
  options.experiment.cluster.retry.max_attempts = 3;
  options.experiment.cluster.retry.backoff_base_ms = 5.0;
  options.experiment.cluster.retry.deadline_ms = 150.0;
  options.fault_mean_interarrival_ms = 2000.0;
  options.fault_mean_duration_ms = 800.0;

  const kvs::ChaosCampaignResult serial = kvs::RunChaosTrials(options, Exec(1));
  ASSERT_EQ(serial.trials.size(), 4u);
  EXPECT_GT(serial.pooled.fault_activations, 0);
  EXPECT_GT(serial.pooled.reads_started, 0);
  EXPECT_EQ(serial.pooled.monotonic_read_violations, 0);
  for (int threads : {4, 8}) {
    const kvs::ChaosCampaignResult parallel =
        kvs::RunChaosTrials(options, Exec(threads));
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, ChaosTrialsFaultFreeBaselineInvariant) {
  // inject_faults = false is the hedging-baseline arm of bench/chaos; it
  // must satisfy the same contract (and draw nothing from the fault layer).
  kvs::ChaosTrialOptions options;
  options.trials = 3;
  options.seed = 405;
  options.inject_faults = false;
  options.experiment.writes = 200;
  options.experiment.write_spacing_ms = 50.0;
  options.experiment.read_offsets_ms = {1.0, 10.0};
  options.experiment.cluster.quorum = {3, 2, 2};
  options.experiment.cluster.legs = LnkdSsd();
  options.experiment.cluster.request_timeout_ms = 200.0;

  const kvs::ChaosCampaignResult serial = kvs::RunChaosTrials(options, Exec(1));
  EXPECT_EQ(serial.pooled.fault_activations, 0);
  const kvs::ChaosCampaignResult parallel =
      kvs::RunChaosTrials(options, Exec(8));
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelDeterminismTest, RebalanceTrialsInvariant) {
  // Elastic-membership campaigns: every trial runs concurrent join +
  // removal under load — ring rebuilds, migration streams, union routing,
  // per-shard staleness attribution. All of it must be bitwise identical
  // at 1 vs N threads, down to the per-phase probe counters, the merged
  // metrics JSONL, and the zero-lost-acked-writes tally.
  kvs::RebalanceTrialOptions options;
  options.trials = 3;
  options.seed = 515;
  options.run.cluster.quorum = {3, 2, 2};
  options.run.cluster.legs = LnkdSsd();
  options.run.cluster.num_storage_nodes = 8;
  options.run.cluster.vnodes_per_node = 16;
  options.run.cluster.request_timeout_ms = 200.0;
  options.run.keys = 32;
  options.run.writes = 160;
  options.run.write_spacing_ms = 5.0;
  options.run.join_nodes = 1;
  options.run.remove_nodes = 1;

  const kvs::RebalanceCampaignResult serial =
      kvs::RunRebalanceTrials(options, Exec(1));
  ASSERT_EQ(serial.trials.size(), 3u);
  EXPECT_EQ(serial.lost_acked_writes, 0);
  EXPECT_GT(serial.before.reads, 0);
  for (int threads : {4, 8}) {
    const kvs::RebalanceCampaignResult parallel =
        kvs::RunRebalanceTrials(options, Exec(threads));
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, ShardedHotPathLoopInvariant) {
  // The sharded KVS hot-path event loop (kvs/hotpath.h): logical shards are
  // fixed by (seed, num_shards) and synchronize conservatively, so the
  // run's event digest must be bitwise identical at 1, 4 and 8 threads.
  kvs::HotPathOptions options;
  options.num_streams = 96;
  options.writes_per_stream = 300;
  options.seed = 606;

  const kvs::HotPathResult serial = kvs::RunHotPath(options);
  EXPECT_GT(serial.total_ops(), 0);
  for (int threads : {4, 8}) {
    options.threads = threads;
    const kvs::HotPathResult parallel = kvs::RunHotPath(options);
    EXPECT_EQ(parallel.digest, serial.digest) << threads << " threads";
    EXPECT_EQ(parallel.consistent_reads, serial.consistent_reads);
    EXPECT_EQ(parallel.mean_write_latency_ms, serial.mean_write_latency_ms);
  }
}

TEST(ParallelDeterminismTest, ConcurrentChaosAndRebalanceCampaignsInvariant) {
  // Stress composition: a gray-fault chaos campaign and an elastic
  // rebalance campaign running *at the same time* on the shared worker
  // pool, each parallelized. Interleaving on the pool must not leak into
  // either campaign's results — both stay bitwise equal to their serial
  // baselines at every thread count.
  kvs::ChaosTrialOptions chaos;
  chaos.trials = 3;
  chaos.seed = 707;
  chaos.experiment.writes = 200;
  chaos.experiment.write_spacing_ms = 50.0;
  chaos.experiment.read_offsets_ms = {1.0, 10.0};
  chaos.experiment.cluster.quorum = {3, 2, 2};
  chaos.experiment.cluster.legs = LnkdSsd();
  chaos.experiment.cluster.request_timeout_ms = 200.0;
  chaos.experiment.cluster.hedge.enabled = true;
  chaos.fault_mean_interarrival_ms = 2000.0;
  chaos.fault_mean_duration_ms = 800.0;

  kvs::RebalanceTrialOptions rebalance;
  rebalance.trials = 2;
  rebalance.seed = 717;
  rebalance.run.cluster.quorum = {3, 2, 2};
  rebalance.run.cluster.legs = LnkdSsd();
  rebalance.run.cluster.num_storage_nodes = 8;
  rebalance.run.cluster.vnodes_per_node = 16;
  rebalance.run.cluster.request_timeout_ms = 200.0;
  rebalance.run.keys = 24;
  rebalance.run.writes = 120;
  rebalance.run.write_spacing_ms = 5.0;
  rebalance.run.join_nodes = 1;
  rebalance.run.remove_nodes = 1;

  const kvs::ChaosCampaignResult chaos_serial =
      kvs::RunChaosTrials(chaos, Exec(1));
  const kvs::RebalanceCampaignResult rebalance_serial =
      kvs::RunRebalanceTrials(rebalance, Exec(1));
  EXPECT_EQ(rebalance_serial.lost_acked_writes, 0);

  for (int threads : {1, 4, 8}) {
    kvs::ChaosCampaignResult chaos_result;
    kvs::RebalanceCampaignResult rebalance_result;
    std::thread chaos_thread([&]() {
      chaos_result = kvs::RunChaosTrials(chaos, Exec(threads));
    });
    std::thread rebalance_thread([&]() {
      rebalance_result = kvs::RunRebalanceTrials(rebalance, Exec(threads));
    });
    chaos_thread.join();
    rebalance_thread.join();
    EXPECT_EQ(chaos_result, chaos_serial) << threads << " threads";
    EXPECT_EQ(rebalance_result, rebalance_serial) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, ControllerCampaignInvariant) {
  // The full closed control loop under chaos: every trial runs the
  // ConsistencyController inside the cluster — sensing measured legs,
  // re-running the WARS predictor, actuating quorum/hedge/retry steps,
  // rolling back on measured violations — while a deterministic
  // FaultSchedule degrades one replica and flaps another. The *decision
  // stream itself* is part of the contract: per-trial decision digests,
  // step/rollback counts, final knob states and the pooled campaign digest
  // must be bitwise identical at 1, 4 and 8 threads.
  kvs::ControllerTrialOptions options;
  options.trials = 3;
  options.seed = 808;
  options.experiment.writes = 300;
  options.experiment.write_spacing_ms = 50.0;
  options.experiment.read_offsets_ms = {1.0, 10.0};
  options.experiment.cluster.quorum = {3, 1, 2};
  options.experiment.cluster.legs = LnkdDisk();
  options.experiment.cluster.request_timeout_ms = 200.0;
  options.experiment.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.experiment.cluster.sla =
      SlaTarget::Parse("p=0.9,t=10,p99<=8").value();
  options.experiment.cluster.controller.enabled = true;
  options.experiment.cluster.controller.epoch_ms = 500.0;
  options.experiment.cluster.controller.trials_per_eval = 300;
  options.experiment.cluster.controller.min_leg_samples = 48;
  options.faults = [](double horizon_ms, uint64_t seed) {
    kvs::FaultSchedule faults;
    // Chaos mix: a 20x slow replica for the whole run plus a flapping
    // node, phased by the trial's fault seed so trials differ.
    faults.AddSlowNode(0.0, horizon_ms, /*node=*/0, /*delay_mult=*/20.0);
    faults.AddFlappingNode(100.0 + static_cast<double>(seed % 7) * 50.0,
                           horizon_ms, /*node=*/1, /*up_ms=*/300.0,
                           /*down_ms=*/200.0);
    return faults;
  };

  const kvs::ControllerCampaignResult serial =
      kvs::RunControllerTrials(options, Exec(1));
  ASSERT_EQ(serial.trials.size(), 3u);
  EXPECT_NE(serial.pooled_digest, 0u);
  EXPECT_GT(serial.pooled.reads_started, 0);
  int64_t decisions = 0;
  for (const kvs::ControllerCampaignSummary& trial : serial.trials) {
    decisions += trial.decisions;
    EXPECT_NE(trial.decision_digest, 0u);
  }
  EXPECT_GT(decisions, 0);
  for (int threads : {4, 8}) {
    const kvs::ControllerCampaignResult parallel =
        kvs::RunControllerTrials(options, Exec(threads));
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, TelemetryCampaignInvariant) {
  // Streaming telemetry riding the controller campaign: every trial cuts
  // windowed registry deltas off the timer wheel and runs the live drift
  // monitor (analytic refits included). The composed telemetry JSONL is
  // digested per trial and pooled; both digests — and the monitor's
  // window/alert counts — must be bitwise identical at 1, 4 and 8 threads.
  kvs::ControllerTrialOptions options;
  options.trials = 3;
  options.seed = 909;
  options.experiment.writes = 300;
  options.experiment.write_spacing_ms = 50.0;
  options.experiment.read_offsets_ms = {1.0, 10.0};
  options.experiment.cluster.quorum = {3, 1, 2};
  options.experiment.cluster.legs = LnkdDisk();
  options.experiment.cluster.request_timeout_ms = 200.0;
  options.experiment.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.experiment.cluster.sla =
      SlaTarget::Parse("p=0.9,t=10,p99<=8").value();
  options.experiment.cluster.controller.enabled = true;
  options.experiment.cluster.controller.epoch_ms = 500.0;
  options.experiment.cluster.controller.trials_per_eval = 300;
  options.experiment.cluster.controller.min_leg_samples = 48;
  options.experiment.cluster.obs.telemetry_window_ms = 500.0;
  options.experiment.cluster.obs.monitor_enabled = true;
  options.faults = [](double horizon_ms, uint64_t seed) {
    kvs::FaultSchedule faults;
    faults.AddSlowNode(horizon_ms * 0.5, horizon_ms, /*node=*/0,
                       /*delay_mult=*/10.0);
    (void)seed;
    return faults;
  };

  const kvs::ControllerCampaignResult serial =
      kvs::RunControllerTrials(options, Exec(1));
  ASSERT_EQ(serial.trials.size(), 3u);
  EXPECT_NE(serial.pooled_telemetry_digest, 0u);
  int64_t windows = 0;
  for (const kvs::ControllerCampaignSummary& trial : serial.trials) {
    EXPECT_NE(trial.telemetry_digest, 0u);
    windows += trial.monitor_windows;
  }
  EXPECT_GT(windows, 0);
  for (int threads : {4, 8}) {
    const kvs::ControllerCampaignResult parallel =
        kvs::RunControllerTrials(options, Exec(threads));
    EXPECT_EQ(parallel, serial) << threads << " threads";
    EXPECT_EQ(parallel.pooled_telemetry_digest,
              serial.pooled_telemetry_digest)
        << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, DefaultThreadsMatchesSerial) {
  // threads = 0 (all hardware threads) must also reproduce the serial run —
  // this is the configuration every caller gets by default.
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const WarsTrialSet serial = RunWarsTrials(
      {3, 2, 1}, model, 10000, /*seed=*/16, false, ReadFanout::kAllN,
      Exec(1));
  const WarsTrialSet defaulted = RunWarsTrials(
      {3, 2, 1}, model, 10000, /*seed=*/16, false, ReadFanout::kAllN,
      Exec(0));
  EXPECT_EQ(defaulted.staleness_thresholds, serial.staleness_thresholds);
}

}  // namespace
}  // namespace pbs
