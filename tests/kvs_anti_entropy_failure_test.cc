#include <gtest/gtest.h>

#include "dist/primitives.h"
#include "kvs/anti_entropy.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/failure.h"

namespace pbs {
namespace kvs {
namespace {

WarsDistributions FastLegs() {
  WarsDistributions legs;
  legs.name = "fast";
  legs.w = PointMass(1.0);
  legs.a = PointMass(1.0);
  legs.r = PointMass(1.0);
  legs.s = PointMass(1.0);
  return legs;
}

KvsConfig BaseConfig() {
  KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = FastLegs();
  config.request_timeout_ms = 100.0;
  config.seed = 11;
  return config;
}

VersionedValue MakeValue(int64_t sequence) {
  VersionedValue value;
  value.sequence = sequence;
  value.stamp = {static_cast<double>(sequence), 0};
  value.value = "v" + std::to_string(sequence);
  return value;
}

TEST(SyncReplicaPairTest, ConvergesBothDirections) {
  Cluster cluster(BaseConfig());
  cluster.replica(0).storage().Put(1, MakeValue(3));
  cluster.replica(1).storage().Put(2, MakeValue(5));
  Rng rng(1);
  SyncReplicaPair(&cluster, 0, 1, rng);
  cluster.sim().Run();
  EXPECT_EQ(cluster.replica(1).storage().Get(1)->sequence, 3);
  EXPECT_EQ(cluster.replica(0).storage().Get(2)->sequence, 5);
  EXPECT_EQ(cluster.metrics().anti_entropy_values_shipped, 2);
}

TEST(SyncReplicaPairTest, NewerVersionWinsOverStale) {
  Cluster cluster(BaseConfig());
  cluster.replica(0).storage().Put(1, MakeValue(7));
  cluster.replica(1).storage().Put(1, MakeValue(2));
  Rng rng(2);
  SyncReplicaPair(&cluster, 0, 1, rng);
  cluster.sim().Run();
  EXPECT_EQ(cluster.replica(0).storage().Get(1)->sequence, 7);
  EXPECT_EQ(cluster.replica(1).storage().Get(1)->sequence, 7);
}

TEST(SyncReplicaPairTest, SkipsCrashedEndpoints) {
  Cluster cluster(BaseConfig());
  cluster.replica(0).storage().Put(1, MakeValue(1));
  cluster.replica(1).Crash();
  Rng rng(3);
  SyncReplicaPair(&cluster, 0, 1, rng);
  cluster.sim().Run();
  EXPECT_FALSE(cluster.replica(1).storage().Get(1).has_value());
  EXPECT_EQ(cluster.metrics().anti_entropy_rounds, 0);
}

TEST(AntiEntropyProcessTest, PeriodicTicksConvergeAStaleReplica) {
  KvsConfig config = BaseConfig();
  config.anti_entropy_interval_ms = 10.0;
  Cluster cluster(config);
  cluster.replica(0).storage().Put(1, MakeValue(9));
  cluster.StartAntiEntropy();
  cluster.sim().RunUntil(200.0);
  // With ~20 ticks of random pairings, every replica converged.
  EXPECT_EQ(cluster.replica(1).storage().Get(1)->sequence, 9);
  EXPECT_EQ(cluster.replica(2).storage().Get(1)->sequence, 9);
  EXPECT_GT(cluster.metrics().anti_entropy_rounds, 10);
}

TEST(AntiEntropyProcessTest, DisabledByZeroInterval) {
  Cluster cluster(BaseConfig());  // interval = 0
  cluster.StartAntiEntropy();
  EXPECT_FALSE(cluster.sim().HasPendingEvents());
}

TEST(FailureScheduleTest, InstallTogglesLiveness) {
  Cluster cluster(BaseConfig());
  FailureSchedule schedule;
  schedule.AddCrash(10.0, 0);
  schedule.AddRecover(20.0, 0);
  schedule.InstallOn(&cluster);
  EXPECT_TRUE(cluster.replica(0).alive());
  cluster.sim().RunUntil(15.0);
  EXPECT_FALSE(cluster.replica(0).alive());
  cluster.sim().RunUntil(25.0);
  EXPECT_TRUE(cluster.replica(0).alive());
}

TEST(FailureScheduleTest, RandomProcessAlternatesPerNode) {
  const auto schedule =
      FailureSchedule::RandomCrashRecover(3, 10000.0, 500.0, 100.0, 42);
  // Per node, events alternate crash/recover in increasing time.
  for (int node = 0; node < 3; ++node) {
    double last_time = -1.0;
    bool expect_crash = true;
    for (const auto& event : schedule.events()) {
      if (event.node != node) continue;
      EXPECT_GT(event.time, last_time);
      last_time = event.time;
      EXPECT_EQ(event.kind, expect_crash ? FailureEvent::Kind::kCrash
                                         : FailureEvent::Kind::kRecover);
      expect_crash = !expect_crash;
    }
  }
  EXPECT_GT(schedule.events().size(), 10u);  // ~17 crashes expected per node
}

TEST(FailureScheduleTest, CrashedReplicaMakesDataUnavailableUntilRecovery) {
  KvsConfig config = BaseConfig();
  config.quorum = {1, 1, 1};
  Cluster cluster(config);
  FailureSchedule schedule;
  schedule.AddCrash(5.0, 0);
  schedule.AddRecover(200.0, 0);
  schedule.InstallOn(&cluster);
  ClientSession client(&cluster, cluster.coordinator(0).id(), 1);

  int failures = 0;
  int successes = 0;
  // A write at t=50 (node down) fails; at t=250 (recovered) succeeds.
  cluster.sim().At(50.0, [&]() {
    client.Write(1, "a", [&](const WriteResult& r) {
      r.ok ? ++successes : ++failures;
    });
  });
  cluster.sim().At(250.0, [&]() {
    client.Write(1, "b", [&](const WriteResult& r) {
      r.ok ? ++successes : ++failures;
    });
  });
  cluster.sim().Run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(successes, 1);
}

}  // namespace
}  // namespace kvs
}  // namespace pbs
