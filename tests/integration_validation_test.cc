// Integration test reproducing the structure of the paper's Section 5.2
// validation at reduced scale: the WARS Monte Carlo prediction must match
// the event-driven Dynamo-style cluster's measured t-visibility and
// latencies, because both implement the same protocol over the same delay
// distributions. (The full-scale sweep lives in bench/sec52_validation.)

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/latency.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/experiment.h"

namespace pbs {
namespace {

struct ValidationCase {
  double lambda_w;
  double lambda_ars;
  QuorumConfig config;
};

class WarsVsClusterTest : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(WarsVsClusterTest, TVisibilityAgrees) {
  const auto& param = GetParam();
  const auto legs = MakeWars("exp", Exponential(param.lambda_w),
                             Exponential(param.lambda_ars));
  const std::vector<double> offsets = {0.0, 2.0, 5.0, 10.0, 25.0, 60.0};

  // Event-driven measurement.
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = param.config;
  options.cluster.legs = legs;
  options.cluster.request_timeout_ms = 2000.0;
  options.writes = 4000;
  options.write_spacing_ms = 400.0;  // >> write tail: no overlap
  options.read_offsets_ms = offsets;
  options.seed = 99;
  const auto measured = kvs::RunStalenessExperiment(options);

  // WARS Monte Carlo prediction.
  const auto model = MakeIidModel(legs, param.config.n);
  const TVisibilityCurve predicted =
      EstimateTVisibility(param.config, model, 200000, /*seed=*/100);

  for (size_t i = 0; i < offsets.size(); ++i) {
    const double observed = measured.t_visibility[i].ProbConsistent();
    const double expected = predicted.ProbConsistent(offsets[i]);
    // 4000 trials: binomial noise ~ 0.008; allow 3 sigma + model epsilon.
    EXPECT_NEAR(observed, expected, 0.03)
        << "t=" << offsets[i] << " lambda_w=" << param.lambda_w
        << " config=" << param.config.ToString();
  }
}

TEST_P(WarsVsClusterTest, LatenciesAgree) {
  const auto& param = GetParam();
  const auto legs = MakeWars("exp", Exponential(param.lambda_w),
                             Exponential(param.lambda_ars));
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = param.config;
  options.cluster.legs = legs;
  options.cluster.request_timeout_ms = 2000.0;
  options.writes = 4000;
  options.write_spacing_ms = 400.0;
  options.read_offsets_ms = {5.0};
  options.seed = 101;
  const auto measured = kvs::RunStalenessExperiment(options);
  const LatencyProfile measured_writes(measured.write_latencies);
  const LatencyProfile measured_reads(measured.read_latencies);

  const auto model = MakeIidModel(legs, param.config.n);
  const auto predicted =
      EstimateLatencies(param.config, model, 200000, /*seed=*/102);

  for (double pct : {50.0, 90.0, 99.0}) {
    const double write_expected = predicted.writes.Percentile(pct);
    const double read_expected = predicted.reads.Percentile(pct);
    EXPECT_NEAR(measured_writes.Percentile(pct), write_expected,
                0.12 * write_expected + 0.3)
        << "write pct=" << pct;
    EXPECT_NEAR(measured_reads.Percentile(pct), read_expected,
                0.12 * read_expected + 0.3)
        << "read pct=" << pct;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WarsVsClusterTest,
    ::testing::Values(ValidationCase{0.1, 0.2, {3, 1, 1}},
                      ValidationCase{0.05, 0.5, {3, 1, 1}},
                      ValidationCase{0.2, 0.1, {3, 2, 1}},
                      ValidationCase{0.1, 0.5, {3, 1, 2}}),
    [](const ::testing::TestParamInfo<ValidationCase>& info) {
      const auto& p = info.param;
      return "lw" + std::to_string(static_cast<int>(p.lambda_w * 100)) +
             "_lars" + std::to_string(static_cast<int>(p.lambda_ars * 100)) +
             "_R" + std::to_string(p.config.r) + "W" +
             std::to_string(p.config.w);
    });

TEST(WarsVsClusterStrictTest, BothReportPerfectConsistency) {
  const auto legs = MakeWars("exp", Exponential(0.1), Exponential(0.5));
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {3, 2, 2};
  options.cluster.legs = legs;
  options.cluster.request_timeout_ms = 2000.0;
  options.writes = 1000;
  options.write_spacing_ms = 300.0;
  options.read_offsets_ms = {0.0};
  const auto measured = kvs::RunStalenessExperiment(options);
  EXPECT_DOUBLE_EQ(measured.t_visibility[0].ProbConsistent(), 1.0);

  const auto model = MakeIidModel(legs, 3);
  const TVisibilityCurve predicted =
      EstimateTVisibility({3, 2, 2}, model, 50000, /*seed=*/5);
  EXPECT_DOUBLE_EQ(predicted.ProbConsistent(0.0), 1.0);
}

}  // namespace
}  // namespace pbs
