#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/tvisibility.h"

#include "core/latency.h"
#include "core/predictor.h"
#include "dist/primitives.h"
#include "dist/production.h"

namespace pbs {
namespace {

TEST(LatencyProfileTest, PercentilesOnKnownData) {
  LatencyProfile profile({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(profile.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.Percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(profile.Percentile(100.0), 5.0);
  EXPECT_DOUBLE_EQ(profile.Median(), 3.0);
  EXPECT_DOUBLE_EQ(profile.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(profile.CdfAt(2.5), 0.4);
  EXPECT_EQ(profile.size(), 5u);
}

TEST(LatencyProfileTest, SortedAccessor) {
  LatencyProfile profile({3.0, 1.0, 2.0});
  EXPECT_TRUE(std::is_sorted(profile.sorted().begin(),
                             profile.sorted().end()));
}

TEST(EstimateLatenciesTest, OrderStatisticsWithDeterministicLegs) {
  // All legs point masses: read latency = r+s = 3, write latency = w+a = 3.
  WarsDistributions dists;
  dists.name = "pm";
  dists.w = PointMass(2.0);
  dists.a = PointMass(1.0);
  dists.r = PointMass(1.5);
  dists.s = PointMass(1.5);
  const auto model = MakeIidModel(dists, 3);
  const auto latencies = EstimateLatencies({3, 2, 2}, model, 100, /*seed=*/1);
  EXPECT_DOUBLE_EQ(latencies.reads.Percentile(99.0), 3.0);
  EXPECT_DOUBLE_EQ(latencies.writes.Percentile(99.0), 3.0);
}

TEST(EstimateLatenciesTest, HigherRRaisesReadLatency) {
  const auto model = MakeIidModel(Ymmr(), 3);
  double prev = 0.0;
  for (int r = 1; r <= 3; ++r) {
    const auto latencies =
        EstimateLatencies({3, r, 1}, model, 30000, /*seed=*/2);
    const double median = latencies.reads.Median();
    EXPECT_GT(median, prev) << "R=" << r;
    prev = median;
  }
}

TEST(PbsPredictorTest, AgreesWithDirectEstimators) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  PredictorOptions options;
  options.trials = 20000;
  options.seed = 3;
  PbsPredictor predictor({3, 1, 1}, model, options);

  const TVisibilityCurve direct =
      EstimateTVisibility({3, 1, 1}, model, 20000, /*seed=*/3);
  // Identical seeds and trial counts: identical Monte Carlo columns.
  EXPECT_DOUBLE_EQ(predictor.ProbConsistent(5.0), direct.ProbConsistent(5.0));
  EXPECT_DOUBLE_EQ(predictor.TimeForConsistency(0.999),
                   direct.TimeForConsistency(0.999));
}

TEST(PbsPredictorTest, ClosedFormDelegation) {
  const auto model = MakeIidModel(LnkdSsd(), 3);
  PredictorOptions options;
  options.trials = 1000;
  PbsPredictor predictor({3, 1, 1}, model, options);
  EXPECT_NEAR(predictor.KStaleness(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(predictor.KFreshness(2), 1.0 - 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(predictor.MonotonicReadsViolation(1.0, 1.0),
              std::pow(2.0 / 3.0, 2.0), 1e-12);
}

TEST(PbsPredictorTest, KTBoundDecreasesInKAndT) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  PredictorOptions options;
  options.trials = 50000;
  options.seed = 4;
  PbsPredictor predictor({3, 1, 1}, model, options);
  const double p_k1_t0 = predictor.KTStalenessUpperBound(1, 0.0);
  const double p_k2_t0 = predictor.KTStalenessUpperBound(2, 0.0);
  const double p_k1_t10 = predictor.KTStalenessUpperBound(1, 10.0);
  EXPECT_LT(p_k2_t0, p_k1_t0);
  EXPECT_LT(p_k1_t10, p_k1_t0);
}

TEST(PbsPredictorTest, LatencyPercentilesExposed) {
  const auto model = MakeIidModel(LnkdSsd(), 3);
  PredictorOptions options;
  options.trials = 20000;
  PbsPredictor predictor({3, 1, 1}, model, options);
  EXPECT_GT(predictor.ReadLatencyPercentile(99.9), 0.0);
  EXPECT_GT(predictor.WriteLatencyPercentile(99.9),
            predictor.WriteLatencyPercentile(50.0));
}

TEST(PbsPredictorTest, StrictConfigReportsZeroVisibilityWindow) {
  const auto model = MakeIidModel(Ymmr(), 3);
  PredictorOptions options;
  options.trials = 20000;
  PbsPredictor predictor({3, 2, 2}, model, options);
  EXPECT_DOUBLE_EQ(predictor.ProbConsistent(0.0), 1.0);
  EXPECT_DOUBLE_EQ(predictor.TimeForConsistency(0.9999), 0.0);
}

}  // namespace
}  // namespace pbs
