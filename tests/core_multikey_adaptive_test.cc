#include <cmath>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/closed_form.h"
#include "core/multikey.h"
#include "dist/primitives.h"
#include "dist/production.h"

namespace pbs {
namespace {

TEST(MultiKeyTest, SingleKeyReducesToKFreshness) {
  const QuorumConfig config{3, 1, 1};
  EXPECT_DOUBLE_EQ(MultiKeyFreshnessProbability(config, 1, 2),
                   KFreshnessProbability(config, 2));
}

TEST(MultiKeyTest, ProbabilitiesMultiplyAcrossKeys) {
  const QuorumConfig config{3, 2, 1};
  const double one = KFreshnessProbability(config, 1);
  EXPECT_NEAR(MultiKeyFreshnessProbability(config, 4, 1), std::pow(one, 4),
              1e-12);
}

TEST(MultiKeyTest, StrictQuorumUnaffectedByKeyCount) {
  const QuorumConfig config{3, 2, 2};
  EXPECT_DOUBLE_EQ(MultiKeyFreshnessProbability(config, 100, 1), 1.0);
}

TEST(MaxKeysForFreshnessTargetTest, InvertsTheProduct) {
  const QuorumConfig config{3, 2, 1};  // fresh = 2/3 per key (k=1)
  // (2/3)^m >= 0.1  =>  m <= 5.67  =>  m = 5.
  EXPECT_EQ(MaxKeysForFreshnessTarget(config, 0.1, 1), 5);
  // One key already misses a 0.9 target.
  EXPECT_EQ(MaxKeysForFreshnessTarget(config, 0.9, 1), -1);
  // Strict quorums support unbounded transactions.
  EXPECT_GT(MaxKeysForFreshnessTarget({3, 2, 2}, 0.999, 1), 1000000);
}

TEST(MultiKeyTVisibilityTest, MoreKeysNeedMoreTime) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  double prev = -1.0;
  for (int keys : {1, 4, 16}) {
    const auto curve = EstimateMultiKeyTVisibility({3, 1, 1}, model, keys,
                                                   40000, /*seed=*/1);
    const double t = curve.TimeForConsistency(0.99);
    EXPECT_GT(t, prev) << "keys=" << keys;
    prev = t;
  }
}

TEST(MultiKeyTVisibilityTest, MatchesProductRuleAtFixedT) {
  // P(all keys consistent at t) ~= P(single consistent at t)^keys, since
  // trials are independent across keys.
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const auto single =
      EstimateMultiKeyTVisibility({3, 1, 1}, model, 1, 150000, /*seed=*/2);
  const auto multi =
      EstimateMultiKeyTVisibility({3, 1, 1}, model, 3, 150000, /*seed=*/3);
  for (double t : {0.0, 5.0, 20.0}) {
    EXPECT_NEAR(multi.ProbConsistent(t),
                std::pow(single.ProbConsistent(t), 3.0), 0.01)
        << "t=" << t;
  }
}

TEST(MultiKeyTVisibilityTest, StrictQuorumImmediatelyConsistent) {
  const auto model = MakeIidModel(Ymmr(), 3);
  const auto curve =
      EstimateMultiKeyTVisibility({3, 2, 2}, model, 8, 20000, /*seed=*/4);
  EXPECT_DOUBLE_EQ(curve.ProbConsistent(0.0), 1.0);
}

// ---------------------------------------------------------------------------
// Adaptive controller (Section 6 "Variable configurations")

AdaptiveControllerOptions TestOptions() {
  AdaptiveControllerOptions options;
  options.consistency_probability = 0.999;
  options.max_t_visibility_ms = 5.0;
  options.trials_per_eval = 15000;
  options.seed = 99;
  return options;
}

TEST(AdaptiveControllerTest, KeepsOptimalIncumbentUnderStableConditions) {
  // Under LNKD-SSD, R=W=1 meets a 5 ms SLA and is latency-optimal;
  // repeated updates with the same model must not flap away from it.
  AdaptiveConfigController controller({3, 1, 1}, TestOptions());
  const auto model = MakeIidModel(LnkdSsd(), 3);
  for (int epoch = 0; epoch < 3; ++epoch) {
    controller.Update(model);
  }
  int switches = 0;
  for (const auto& decision : controller.history()) {
    if (decision.switched) ++switches;
    EXPECT_TRUE(decision.feasible);
  }
  EXPECT_EQ(switches, 0);
  EXPECT_EQ(controller.current(), (QuorumConfig{3, 1, 1}));
}

TEST(AdaptiveControllerTest, SwitchesOffSuboptimalIncumbentWithoutHysteresis) {
  // A feasible-but-expensive incumbent ({3,2,1} under SSD) is abandoned
  // for the cheaper feasible R=W=1 because the improvement clears the 0.9
  // hysteresis factor.
  AdaptiveConfigController controller({3, 2, 1}, TestOptions());
  controller.Update(MakeIidModel(LnkdSsd(), 3));
  EXPECT_TRUE(controller.history().back().switched);
  EXPECT_EQ(controller.current(), (QuorumConfig{3, 1, 1}));
}

TEST(AdaptiveControllerTest, AbandonsInfeasibleConfigAfterRegimeShift) {
  // Start on R=W=1 under SSD latencies (feasible), then shift to
  // slow-write disk-era latencies: R=W=1 blows the 5 ms SLA and the
  // controller must move to a config that restores it.
  AdaptiveConfigController controller({3, 1, 1}, TestOptions());
  const auto ssd = MakeIidModel(LnkdSsd(), 3);
  controller.Update(ssd);
  EXPECT_EQ(controller.current(), (QuorumConfig{3, 1, 1}));
  EXPECT_TRUE(controller.history().back().feasible);

  const auto disk = MakeIidModel(LnkdDisk(), 3);
  const QuorumConfig chosen = controller.Update(disk);
  EXPECT_TRUE(controller.history().back().feasible)
      << "controller failed to restore the SLA";
  EXPECT_TRUE(controller.history().back().switched);
  EXPECT_FALSE(chosen == (QuorumConfig{3, 1, 1}));

  // Shifting back to SSD land eventually relaxes toward cheaper configs
  // (the challenger R=W=1 must beat the hysteresis margin).
  controller.Update(ssd);
  EXPECT_TRUE(controller.history().back().feasible);
}

TEST(AdaptiveControllerTest, HistoryRecordsEveryEpoch) {
  AdaptiveConfigController controller({3, 1, 1}, TestOptions());
  const auto model = MakeIidModel(LnkdSsd(), 3);
  controller.Update(model);
  controller.Update(model);
  EXPECT_EQ(controller.history().size(), 2u);
}

TEST(AdaptiveControllerTest, InfeasibleEverywhereStillReportsHonestly) {
  // A 0 ms SLA at 99.99% under heavy-tailed YMMR: only strict quorums
  // qualify; the controller must land on one.
  AdaptiveControllerOptions options = TestOptions();
  options.max_t_visibility_ms = 0.0;
  options.consistency_probability = 0.9999;
  AdaptiveConfigController controller({3, 1, 1}, options);
  controller.Update(MakeIidModel(Ymmr(), 3));
  EXPECT_TRUE(controller.history().back().feasible);
  EXPECT_TRUE(controller.current().IsStrict());
}

}  // namespace
}  // namespace pbs
