#include "util/small_sort.h"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pbs {
namespace {

// The 0-1 principle: a comparison network that sorts every 0/1 input of
// length n sorts every input of length n. Running all 2^n bit patterns
// through each network therefore PROVES the networks correct.
template <int N>
void CheckAllBitPatterns() {
  for (unsigned mask = 0; mask < (1u << N); ++mask) {
    double k[N];
    for (int i = 0; i < N; ++i) k[i] = (mask >> i) & 1u ? 1.0 : 0.0;
    SmallSortFixed<N>(k);
    EXPECT_TRUE(std::is_sorted(k, k + N)) << "N=" << N << " mask=" << mask;
  }
}

TEST(SmallSortFixedTest, ZeroOnePrincipleProvesEveryNetwork) {
  CheckAllBitPatterns<2>();
  CheckAllBitPatterns<3>();
  CheckAllBitPatterns<4>();
  CheckAllBitPatterns<5>();
  CheckAllBitPatterns<6>();
  CheckAllBitPatterns<7>();
  CheckAllBitPatterns<8>();
}

TEST(SmallSortTest, MatchesStdSortOnRandomInputs) {
  Rng rng(11);
  for (int n = 0; n <= 8; ++n) {
    for (int rep = 0; rep < 500; ++rep) {
      std::vector<double> k(n);
      for (auto& x : k) x = rng.NextDouble() * 10.0;
      std::vector<double> expect = k;
      std::sort(expect.begin(), expect.end());
      SmallSort(k.data(), n);
      EXPECT_EQ(k, expect) << "n=" << n;
    }
  }
}

// Sorting networks are deterministic but NOT stable (non-adjacent
// comparators may reorder equal keys), so the pairs contract is: keys come
// out sorted and every payload still rides with its original key.
template <int N>
void CheckPairsConsistency(Rng& rng) {
  for (int rep = 0; rep < 500; ++rep) {
    double k[N], v[N];
    std::array<std::pair<double, double>, N> before;
    for (int i = 0; i < N; ++i) {
      // Coarse keys force frequent ties.
      k[i] = static_cast<double>(rng.NextBounded(3));
      v[i] = static_cast<double>(i);
      before[i] = {k[i], v[i]};
    }
    SmallSortPairsFixed<N>(k, v);
    EXPECT_TRUE(std::is_sorted(k, k + N)) << "N=" << N;
    std::array<std::pair<double, double>, N> after;
    for (int i = 0; i < N; ++i) after[i] = {k[i], v[i]};
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after) << "N=" << N;  // (key, payload) pairs preserved
  }
}

TEST(SmallSortPairsTest, KeysSortAndPayloadStaysPaired) {
  Rng rng(12);
  CheckPairsConsistency<2>(rng);
  CheckPairsConsistency<3>(rng);
  CheckPairsConsistency<4>(rng);
  CheckPairsConsistency<5>(rng);
  CheckPairsConsistency<6>(rng);
  CheckPairsConsistency<7>(rng);
  CheckPairsConsistency<8>(rng);
}

TEST(SmallSortPairsTest, RuntimeEntryMatchesFixed) {
  Rng rng(13);
  for (int n = 2; n <= 8; ++n) {
    std::vector<double> k(n), v(n), k2, v2;
    for (int i = 0; i < n; ++i) {
      k[i] = rng.NextDouble();
      v[i] = rng.NextDouble();
    }
    k2 = k;
    v2 = v;
    SmallSortPairs(k.data(), v.data(), n);
    std::vector<std::pair<double, double>> expect(n);
    for (int i = 0; i < n; ++i) expect[i] = {k2[i], v2[i]};
    std::stable_sort(expect.begin(), expect.end());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(k[i], expect[i].first);
      EXPECT_EQ(v[i], expect[i].second);
    }
  }
}

// The column (trial-parallel) variants must be bitwise identical to running
// the scalar network on each column independently.
template <int N>
void CheckColumns(Rng& rng) {
  const int len = 37;  // odd length exercises the vectorizer's tail handling
  std::vector<double> cols(static_cast<size_t>(N) * len);
  for (auto& x : cols) x = static_cast<double>(rng.NextBounded(5));
  std::vector<double> expect = cols;

  ColumnSortFixed<N>(cols.data(), len, len);
  for (int t = 0; t < len; ++t) {
    double k[N];
    for (int i = 0; i < N; ++i) k[i] = expect[i * len + t];
    SmallSortFixed<N>(k);
    for (int i = 0; i < N; ++i) {
      EXPECT_EQ(cols[i * len + t], k[i]) << "N=" << N << " t=" << t;
    }
  }
}

template <int N>
void CheckColumnPairs(Rng& rng) {
  const int len = 37;
  std::vector<double> kc(static_cast<size_t>(N) * len);
  std::vector<double> vc(static_cast<size_t>(N) * len);
  for (auto& x : kc) x = static_cast<double>(rng.NextBounded(5));
  for (size_t i = 0; i < vc.size(); ++i) vc[i] = static_cast<double>(i);
  std::vector<double> ke = kc, ve = vc;

  ColumnSortPairsFixed<N>(kc.data(), vc.data(), len, len);
  for (int t = 0; t < len; ++t) {
    double k[N], v[N];
    for (int i = 0; i < N; ++i) {
      k[i] = ke[i * len + t];
      v[i] = ve[i * len + t];
    }
    SmallSortPairsFixed<N>(k, v);
    for (int i = 0; i < N; ++i) {
      EXPECT_EQ(kc[i * len + t], k[i]) << "N=" << N << " t=" << t;
      EXPECT_EQ(vc[i * len + t], v[i]) << "N=" << N << " t=" << t;
    }
  }
}

TEST(ColumnSortTest, MatchesScalarNetworkPerColumn) {
  Rng rng(14);
  CheckColumns<2>(rng);
  CheckColumns<3>(rng);
  CheckColumns<4>(rng);
  CheckColumns<5>(rng);
  CheckColumns<6>(rng);
  CheckColumns<7>(rng);
  CheckColumns<8>(rng);
}

TEST(ColumnSortTest, PairsMatchScalarNetworkPerColumn) {
  Rng rng(15);
  CheckColumnPairs<2>(rng);
  CheckColumnPairs<3>(rng);
  CheckColumnPairs<4>(rng);
  CheckColumnPairs<5>(rng);
  CheckColumnPairs<6>(rng);
  CheckColumnPairs<7>(rng);
  CheckColumnPairs<8>(rng);
}

TEST(SmallKthSmallestTest, MatchesSortedOrderStatistics) {
  Rng rng(16);
  for (int n = 1; n <= 12; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      std::vector<double> k(n);
      for (auto& x : k) x = rng.NextDouble();
      std::vector<double> sorted = k;
      std::sort(sorted.begin(), sorted.end());
      for (int kth = 1; kth <= n; ++kth) {
        std::vector<double> scratch = k;
        EXPECT_EQ(SmallKthSmallest(scratch.data(), n, kth), sorted[kth - 1])
            << "n=" << n << " k=" << kth;
      }
    }
  }
}

}  // namespace
}  // namespace pbs
