#include "core/quorum_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/closed_form.h"

namespace pbs {
namespace {

TEST(SampleSubsetTest, CorrectSizeAndDistinctMembers) {
  QuorumSampler sampler({10, 3, 4}, /*seed=*/1);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto subset = sampler.SampleSubset(4);
    EXPECT_EQ(subset.size(), 4u);
    const std::set<int> unique(subset.begin(), subset.end());
    EXPECT_EQ(unique.size(), 4u);
    for (int idx : subset) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, 10);
    }
  }
}

TEST(SampleSubsetTest, EveryElementEquallyLikely) {
  QuorumSampler sampler({10, 1, 1}, /*seed=*/2);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    for (int idx : sampler.SampleSubset(3)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.01);
  }
}

struct MissCase {
  QuorumConfig config;
};

class MissProbabilityTest : public ::testing::TestWithParam<MissCase> {};

TEST_P(MissProbabilityTest, MonteCarloMatchesEquation1) {
  const QuorumConfig config = GetParam().config;
  QuorumSampler sampler(config, /*seed=*/42);
  const int trials = 200000;
  const double estimate = sampler.EstimateMissProbability(trials);
  const double exact = SingleQuorumMissProbability(config);
  const double sigma = std::sqrt(exact * (1.0 - exact) / trials);
  EXPECT_NEAR(estimate, exact, std::max(5.0 * sigma, 1e-4))
      << config.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MissProbabilityTest,
    ::testing::Values(MissCase{{3, 1, 1}}, MissCase{{3, 1, 2}},
                      MissCase{{3, 2, 1}}, MissCase{{3, 2, 2}},
                      MissCase{{5, 1, 1}}, MissCase{{5, 2, 2}},
                      MissCase{{10, 3, 3}}, MissCase{{2, 1, 1}},
                      MissCase{{1, 1, 1}}),
    [](const ::testing::TestParamInfo<MissCase>& info) {
      const auto& c = info.param.config;
      return "N" + std::to_string(c.n) + "R" + std::to_string(c.r) + "W" +
             std::to_string(c.w);
    });

TEST(KStalenessSamplerTest, MatchesEquation2AcrossK) {
  const QuorumConfig config{3, 1, 1};
  QuorumSampler sampler(config, /*seed=*/7);
  const int trials = 150000;
  for (int k : {1, 2, 3, 5}) {
    const double estimate = sampler.EstimateKStaleness(k, trials);
    const double exact = KStalenessProbability(config, k);
    const double sigma = std::sqrt(exact * (1.0 - exact) / trials);
    EXPECT_NEAR(estimate, exact, std::max(5.0 * sigma, 2e-4)) << "k=" << k;
  }
}

TEST(KStalenessSamplerTest, StrictQuorumNeverStale) {
  QuorumSampler sampler({3, 2, 2}, /*seed=*/3);
  EXPECT_EQ(sampler.EstimateKStaleness(1, 20000), 0.0);
}

TEST(StalenessHistogramTest, RandomPlacementMatchesGeometricTail) {
  // P(staleness >= k) = ps^k for uniformly random write quorums.
  const QuorumConfig config{3, 1, 1};
  QuorumSampler sampler(config, /*seed=*/11);
  const int versions = 20;
  const int reads = 100000;
  const auto histogram = sampler.StalenessHistogram(
      versions, reads, QuorumSampler::WritePlacement::kUniformRandom);
  ASSERT_EQ(histogram.size(), static_cast<size_t>(versions));
  const double ps = SingleQuorumMissProbability(config);
  // Tail sums P(staleness >= k).
  int64_t tail = 0;
  std::vector<double> tail_prob(versions);
  for (int k = versions - 1; k >= 0; --k) {
    tail += histogram[k];
    tail_prob[k] = static_cast<double>(tail) / reads;
  }
  for (int k : {1, 2, 3, 5}) {
    EXPECT_NEAR(tail_prob[k], std::pow(ps, k), 0.01) << "k=" << k;
  }
}

TEST(StalenessHistogramTest, RoundRobinBoundsStaleness) {
  // Single-writer k-quorum scheduling (Section 2.1): with round-robin write
  // placement, no replica is ever more than ceil(N/W) versions behind.
  const QuorumConfig config{6, 1, 2};
  QuorumSampler sampler(config, /*seed=*/13);
  const int versions = 50;
  const auto histogram = sampler.StalenessHistogram(
      versions, 50000, QuorumSampler::WritePlacement::kRoundRobin);
  const int bound = (config.n + config.w - 1) / config.w;  // ceil(N/W) = 3
  for (int k = bound; k < versions; ++k) {
    EXPECT_EQ(histogram[k], 0) << "k=" << k;
  }
  // And the bound is tight: some read is (bound-1) versions stale.
  EXPECT_GT(histogram[bound - 1], 0);
}

TEST(StalenessHistogramTest, TotalsAddUp) {
  QuorumSampler sampler({3, 1, 1}, /*seed=*/17);
  const auto histogram = sampler.StalenessHistogram(
      10, 5000, QuorumSampler::WritePlacement::kUniformRandom);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(), int64_t{0}),
            5000);
}

TEST(SamplerDeterminismTest, SameSeedSameEstimates) {
  QuorumSampler a({3, 1, 1}, 99);
  QuorumSampler b({3, 1, 1}, 99);
  EXPECT_EQ(a.EstimateMissProbability(10000),
            b.EstimateMissProbability(10000));
}

}  // namespace
}  // namespace pbs
