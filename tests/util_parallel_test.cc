#include "util/parallel.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pbs {
namespace {

TEST(PbsExecutionOptionsTest, ResolvedThreadsHonorsExplicitCounts) {
  PbsExecutionOptions exec;
  exec.threads = 1;
  EXPECT_EQ(exec.ResolvedThreads(), 1);
  exec.threads = 7;
  EXPECT_EQ(exec.ResolvedThreads(), 7);
}

TEST(PbsExecutionOptionsTest, ZeroResolvesToHardwareConcurrency) {
  PbsExecutionOptions exec;  // threads = 0
  EXPECT_GE(exec.ResolvedThreads(), 1);
}

TEST(NumChunksTest, ChunkGeometry) {
  PbsExecutionOptions exec;
  exec.chunk_size = 100;
  EXPECT_EQ(NumChunks(0, exec), 0);
  EXPECT_EQ(NumChunks(1, exec), 1);
  EXPECT_EQ(NumChunks(100, exec), 1);
  EXPECT_EQ(NumChunks(101, exec), 2);
  EXPECT_EQ(NumChunks(1000, exec), 10);
}

TEST(MakeJumpStreamsTest, FirstStreamIsTheBase) {
  Rng base(55);
  Rng copy = base;
  auto streams = MakeJumpStreams(base, 3);
  ASSERT_EQ(streams.size(), 3u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(streams[0].Next(), copy.Next());
}

TEST(MakeJumpStreamsTest, StreamsAreDistinctAndDeterministic) {
  auto a = MakeJumpStreams(Rng(55), 16);
  auto b = MakeJumpStreams(Rng(55), 16);
  std::set<uint64_t> first_draws;
  for (size_t i = 0; i < a.size(); ++i) {
    const uint64_t draw = a[i].Next();
    EXPECT_EQ(draw, b[i].Next());
    first_draws.insert(draw);
  }
  EXPECT_EQ(first_draws.size(), a.size());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    PbsExecutionOptions exec;
    exec.threads = threads;
    exec.chunk_size = 97;  // deliberately not a divisor of num_items
    const int64_t num_items = 10000;
    std::vector<std::atomic<int>> touched(num_items);
    for (auto& t : touched) t.store(0);
    ParallelFor(num_items, exec,
                [&](int64_t /*chunk*/, int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i)
                    touched[i].fetch_add(1);
                });
    for (int64_t i = 0; i < num_items; ++i) {
      ASSERT_EQ(touched[i].load(), 1) << "index " << i << " with "
                                      << threads << " threads";
    }
  }
}

TEST(ParallelForTest, ChunkTriplesAreThreadCountInvariant) {
  auto collect = [](int threads) {
    PbsExecutionOptions exec;
    exec.threads = threads;
    exec.chunk_size = 64;
    std::mutex mu;
    std::vector<std::vector<int64_t>> triples;
    ParallelFor(1000, exec, [&](int64_t chunk, int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mu);
      triples.push_back({chunk, begin, end});
    });
    std::sort(triples.begin(), triples.end());
    return triples;
  };
  const auto serial = collect(1);
  ASSERT_EQ(serial.size(), 16u);  // ceil(1000 / 64)
  EXPECT_EQ(collect(4), serial);
  EXPECT_EQ(collect(8), serial);
  // Chunk c covers [c * chunk_size, min((c+1) * chunk_size, n)).
  for (size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(serial[c][0], static_cast<int64_t>(c));
    EXPECT_EQ(serial[c][1], static_cast<int64_t>(c) * 64);
    EXPECT_EQ(serial[c][2], std::min<int64_t>((c + 1) * 64, 1000));
  }
}

TEST(ParallelForTest, ZeroItemsNeverInvokesBody) {
  PbsExecutionOptions exec;
  std::atomic<int> calls{0};
  ParallelFor(0, exec, [&](int64_t, int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NestedCallsFlattenInsteadOfDeadlocking) {
  PbsExecutionOptions exec;
  exec.threads = 4;
  exec.chunk_size = 1;
  std::atomic<int> inner_calls{0};
  ParallelFor(8, exec, [&](int64_t, int64_t, int64_t) {
    // A nested region must run serially inline rather than re-entering the
    // shared pool (which would deadlock once all workers are occupied).
    ParallelFor(4, exec, [&](int64_t, int64_t, int64_t) {
      inner_calls.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 4);
}

TEST(ThreadPoolTest, RunsEveryWorkerIdAndIsReusable) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  for (int round = 0; round < 50; ++round) {
    std::mutex mu;
    std::set<int> ids;
    pool.Run(4, [&](int id) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(id);
    });
    EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
  }
}

TEST(ThreadPoolTest, ZeroSizePoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  std::set<int> ids;
  pool.Run(3, [&](int id) { ids.insert(id); });  // all inline on this thread
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, FanoutLargerThanPoolStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.Run(16, [&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 16);
}

}  // namespace
}  // namespace pbs
