// Trace workflow: the full operator loop with files in the middle —
//   1. run a (simulated) cluster with the online leg profiler attached,
//   2. export the measured W/A/R/S one-way latencies as trace files,
//   3. reload the traces (as an offline analysis tool would),
//   4. predict t-visibility/latency for candidate configurations, and
//   5. refit the paper's Pareto+Exponential mixture family to the traces.
//
//   $ ./trace_workflow [output_dir]

#include <cstdio>
#include <iostream>
#include <string>

#include "core/predictor.h"
#include "dist/fit.h"
#include "dist/production.h"
#include "dist/trace.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "kvs/profiler.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pbs;

int main(int argc, char** argv) {
  const std::string dir = argc >= 2 ? argv[1] : "trace_workflow_out";

  // 1. Drive a cluster (YMMR-like latencies) and profile every leg.
  std::cout << "[1/5] running cluster with leg profiler...\n";
  kvs::KvsConfig config;
  config.quorum = {3, 2, 2};  // the Yammer production configuration
  config.legs = Ymmr();
  config.request_timeout_ms = 5000.0;
  kvs::Cluster cluster(config);
  kvs::LegProfiler profiler;
  cluster.set_leg_profiler(&profiler);
  kvs::ClientSession client(&cluster, cluster.coordinator(0).id(), 1);
  for (int i = 0; i < 5000; ++i) {
    cluster.sim().At(i * 25.0, [&client, i]() {
      client.Write(i % 50, "v", nullptr);
      client.Read(i % 50, nullptr);
    });
  }
  cluster.sim().Run();

  // 2. Export traces.
  std::cout << "[2/5] exporting traces to " << dir << "/...\n";
  struct LegFile {
    kvs::LegProfiler::Leg leg;
    const char* file;
  };
  const LegFile legs[] = {
      {kvs::LegProfiler::Leg::kWriteRequest, "w.trace"},
      {kvs::LegProfiler::Leg::kWriteAck, "a.trace"},
      {kvs::LegProfiler::Leg::kReadRequest, "r.trace"},
      {kvs::LegProfiler::Leg::kReadResponse, "s.trace"},
  };
  for (const auto& leg : legs) {
    const Status status = SaveLatencyTrace(dir + "/" + leg.file,
                                           profiler.samples(leg.leg));
    if (!status.ok()) {
      std::cerr << status.message() << "\n";
      return 1;
    }
    std::printf("  %s: %zu samples\n", leg.file,
                profiler.samples(leg.leg).size());
  }

  // 3. Reload (offline-analysis style).
  std::cout << "[3/5] reloading traces...\n";
  WarsDistributions measured;
  measured.name = "measured";
  DistributionPtr* slots[] = {&measured.w, &measured.a, &measured.r,
                              &measured.s};
  for (int i = 0; i < 4; ++i) {
    auto dist = LoadTraceDistribution(dir + "/" + legs[i].file);
    if (!dist.ok()) {
      std::cerr << dist.status().message() << "\n";
      return 1;
    }
    *slots[i] = dist.value();
  }

  // 4. Predict candidate configurations from the measured legs.
  std::cout << "[4/5] predictions from measured legs:\n\n";
  TextTable table({"config", "P(fresh, t=0)", "t@99.9% (ms)",
                   "Lr p99.9 (ms)", "Lw p99.9 (ms)"});
  for (const QuorumConfig candidate :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}, QuorumConfig{3, 2, 2}}) {
    PbsPredictor predictor(candidate, MakeIidModel(measured, 3),
                           {.trials = 150000});
    table.AddRow(candidate.ToString(),
                 {predictor.ProbConsistent(0.0),
                  predictor.TimeForConsistency(0.999),
                  predictor.ReadLatencyPercentile(99.9),
                  predictor.WriteLatencyPercentile(99.9)},
                 3);
  }
  table.Print(std::cout);

  // 5. Refit the Table 3 mixture family to the measured write leg.
  std::cout << "\n[5/5] mixture refit of the measured write leg:\n";
  std::vector<double> sorted = profiler.samples(legs[0].leg);
  std::sort(sorted.begin(), sorted.end());
  std::vector<PercentilePoint> points;
  for (double pct : {5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    points.push_back({pct, QuantileSorted(sorted, pct / 100.0)});
  }
  const ParetoExpFit fit = FitParetoExponential(points);
  std::cout << "  " << fit.Describe()
            << "\n  (ground truth: 93.9% Pareto(3, 3.35) + 6.1% "
               "Exp(0.0028) — Table 3's YMMR W)\n";
  return 0;
}
