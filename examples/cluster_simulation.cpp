// Cluster simulation: drive the full event-driven Dynamo-style KVS — the
// same substrate the Section 5.2 validation uses — under a mixed workload
// with failures, read repair and gossip anti-entropy, and report measured
// consistency, staleness and the Section 4.3 staleness-detector verdicts.
//
//   $ ./cluster_simulation

#include <cstdio>
#include <iostream>

#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/cluster.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "kvs/workload.h"
#include "util/table.h"

using namespace pbs;

namespace {

void RunWorkloadDemo() {
  std::cout << "--- Mixed workload on a simulated N=3, R=W=1 cluster "
               "(YMMR latencies, read repair on) ---\n";
  kvs::KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = Ymmr();
  config.read_repair = true;
  config.anti_entropy_interval_ms = 500.0;
  config.request_timeout_ms = 5000.0;
  config.num_coordinators = 2;
  config.seed = 42;
  kvs::Cluster cluster(config);
  cluster.StartAntiEntropy();

  kvs::WorkloadOptions workload;
  workload.operations = 20000;
  workload.read_fraction = 0.9;  // the YMMR mix is read-heavy
  workload.num_keys = 100;
  workload.zipf_theta = 0.9;
  workload.mean_interarrival_ms = 1.0;
  workload.num_clients = 8;
  kvs::WorkloadDriver driver(&cluster, workload);
  const kvs::WorkloadResult result = driver.RunToCompletion();

  std::printf("  reads completed:      %8ld\n", result.reads_completed);
  std::printf("  writes committed:     %8ld\n", result.writes_committed);
  std::printf("  failed operations:    %8ld\n", result.failed_operations);
  std::printf("  monotonic violations: %8ld\n", result.monotonic_violations);
  std::printf("  P(read >= 1 version stale): %.4f\n",
              result.staleness.ProbStalerThan(1));
  std::printf("  P(read >= 2 versions stale): %.4f\n",
              result.staleness.ProbStalerThan(2));
  const auto& metrics = cluster.metrics();
  std::printf("  read latency p50/p99.9: %.2f / %.2f ms\n",
              metrics.read_latency.ToProfile().Percentile(50.0),
              metrics.read_latency.ToProfile().Percentile(99.9));
  std::printf("  write latency p50/p99.9: %.2f / %.2f ms\n",
              metrics.write_latency.ToProfile().Percentile(50.0),
              metrics.write_latency.ToProfile().Percentile(99.9));
  std::printf("  read repairs sent: %ld, gossip values shipped: %ld\n\n",
              metrics.read_repairs_sent,
              metrics.anti_entropy_values_shipped);
}

void RunStalenessProbeDemo() {
  std::cout << "--- Section 5.2-style staleness probe with fail-stop "
               "failures (LNKD-DISK legs) ---\n";
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs = LnkdDisk();
  options.cluster.request_timeout_ms = 250.0;
  options.cluster.hinted_handoff = true;
  options.writes = 4000;
  options.write_spacing_ms = 250.0;
  options.read_offsets_ms = {0.0, 5.0, 10.0, 25.0, 50.0};
  // One crash/recover cycle per ~100 s per replica.
  const auto failures = kvs::FailureSchedule::RandomCrashRecover(
      3, 4000 * 250.0, /*mtbf_ms=*/100e3, /*mttr_ms=*/5e3, /*seed=*/9);
  const auto result =
      kvs::RunStalenessExperimentWithFailures(options, failures);

  TextTable table({"t after commit (ms)", "P(consistent)", "probes"});
  for (const auto& point : result.t_visibility) {
    table.AddRow({FormatDouble(point.t, 1),
                  FormatDouble(point.ProbConsistent(), 4),
                  std::to_string(point.trials)});
  }
  table.Print(std::cout);
  std::printf(
      "  staleness detector (Section 4.3): %ld consistent, %ld stale, "
      "%ld false positives\n",
      result.detector_consistent, result.detector_stale,
      result.detector_false_positives);
  std::printf("  failed reads/writes under churn: %ld / %ld, handoffs: %ld\n",
              result.final_metrics.reads_failed,
              result.final_metrics.writes_failed,
              result.final_metrics.hinted_handoffs_sent);
}

}  // namespace

int main() {
  RunWorkloadDemo();
  RunStalenessProbeDemo();
  return 0;
}
