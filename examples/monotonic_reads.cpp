// Monotonic reads: the Section 3.2 session guarantee. Computes the
// closed-form probability that a client session never moves backwards in
// version history (Equation 3) as a function of the write/read rate ratio,
// and cross-checks it against the event-driven cluster with sticky vs
// non-sticky coordinator routing.
//
//   $ ./monotonic_reads

#include <cstdio>
#include <iostream>

#include "core/closed_form.h"
#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "util/table.h"

using namespace pbs;

namespace {

void ClosedFormTable() {
  std::cout << "--- Equation 3: P(monotonic reads violation) = "
               "ps^(1 + gw/cr) ---\n";
  TextTable table({"config", "gw/cr=0.1", "gw/cr=1", "gw/cr=10",
                   "gw/cr=100"});
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}, QuorumConfig{3, 1, 2},
        QuorumConfig{5, 1, 1}}) {
    std::vector<double> row;
    for (double ratio : {0.1, 1.0, 10.0, 100.0}) {
      row.push_back(
          MonotonicReadsViolationProbability(config, ratio, 1.0));
    }
    table.AddRow(config.ToString(), row, 5);
  }
  table.Print(std::cout);
  std::cout << "Slow-reading sessions (high gw/cr) are naturally protected: "
               "many versions land between their reads.\n\n";
}

// Measures session violations on the simulated cluster. A writer updates
// one key at `write_interval` while a reader session polls it at
// `read_interval`, either through one sticky coordinator or hopping
// between two coordinators per read.
int64_t MeasureViolations(bool sticky, double write_interval,
                          double read_interval) {
  kvs::KvsConfig config;
  config.quorum = {3, 1, 1};
  // Slow writes relative to everything else: maximal reordering.
  config.legs = MakeWars("slow", Exponential(0.05), Exponential(2.0));
  config.num_coordinators = 2;
  config.request_timeout_ms = 2000.0;
  config.seed = 77;
  kvs::Cluster cluster(config);

  kvs::ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  kvs::ClientSession reader(&cluster, cluster.coordinator(1).id(), 2);

  const int writes = 4000;
  for (int i = 0; i < writes; ++i) {
    cluster.sim().At(i * write_interval,
                     [&writer]() { writer.Write(1, "v", nullptr); });
  }
  const int reads = static_cast<int>(writes * write_interval / read_interval);
  for (int i = 0; i < reads; ++i) {
    cluster.sim().At(i * read_interval, [&reader, &cluster, sticky, i]() {
      if (!sticky) {
        reader.set_coordinator(
            cluster.coordinator(i % 2).id());
      }
      reader.Read(1, nullptr);
    });
  }
  cluster.sim().Run();
  return reader.monotonic_violations();
}

}  // namespace

int main() {
  ClosedFormTable();

  std::cout << "--- Measured on the event-driven cluster (N=3, R=W=1, "
               "slow writes) ---\n";
  TextTable table({"read cadence vs writes", "coordinator routing",
                   "violations / ~4000 reads"});
  for (double read_interval : {20.0, 100.0}) {
    for (bool sticky : {true, false}) {
      const int64_t violations =
          MeasureViolations(sticky, /*write_interval=*/20.0, read_interval);
      table.AddRow(
          {read_interval <= 20.0 ? "reads as fast as writes"
                                 : "reads 5x slower than writes",
           sticky ? "sticky" : "alternating",
           std::to_string(violations)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nFast re-reads risk regression (k = 1 + gw/cr is small); "
               "slower sessions see monotone data almost surely — exactly "
               "Equation 3's prediction.\n";
  return 0;
}
