// Quickstart: predict the consistency and latency of a partial-quorum
// configuration in ten lines.
//
//   $ ./quickstart [N R W]
//
// Answers the two questions PBS poses about an eventually consistent
// Dynamo-style store: "how eventual?" (t-visibility) and "how consistent?"
// (k-staleness), plus the latency you buy by accepting that staleness.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/predictor.h"
#include "dist/production.h"

int main(int argc, char** argv) {
  pbs::QuorumConfig config{3, 1, 1};
  if (argc == 4) {
    config.n = std::atoi(argv[1]);
    config.r = std::atoi(argv[2]);
    config.w = std::atoi(argv[3]);
  }
  const pbs::Status valid = pbs::ValidateQuorumConfig(config);
  if (!valid.ok()) {
    std::cerr << "invalid quorum config: " << valid.message() << "\n";
    return 1;
  }

  // Latency model: LinkedIn's spinning-disk Voldemort fit (Table 3 of the
  // paper). Swap in LnkdSsd(), Ymmr(), or your own measured distributions.
  const auto model = pbs::MakeIidModel(pbs::LnkdDisk(), config.n);
  pbs::PredictorOptions options;
  options.trials = 200000;
  pbs::PbsPredictor predictor(config, model, options);

  std::cout << "PBS predictions for " << config.ToString()
            << " over LNKD-DISK latencies\n";
  std::cout << "  quorum type: "
            << (config.IsStrict() ? "strict (R+W>N)" : "partial (R+W<=N)")
            << "\n\n";

  std::cout << "How eventual? (t-visibility)\n";
  for (double t : {0.0, 1.0, 10.0, 50.0, 100.0}) {
    std::printf("  P(consistent read %6.1f ms after commit) = %.4f\n", t,
                predictor.ProbConsistent(t));
  }
  std::printf("  window for 99.9%% consistent reads: %.2f ms\n\n",
              predictor.TimeForConsistency(0.999));

  std::cout << "How consistent? (k-staleness, Equation 2)\n";
  for (int k : {1, 2, 3, 5}) {
    std::printf("  P(value within newest %d version%s) = %.4f\n", k,
                k == 1 ? "" : "s", predictor.KFreshness(k));
  }

  std::cout << "\nWhat the partial quorum buys you (99.9th percentile):\n";
  std::printf("  read latency:  %7.2f ms\n",
              predictor.ReadLatencyPercentile(99.9));
  std::printf("  write latency: %7.2f ms\n",
              predictor.WriteLatencyPercentile(99.9));
  return 0;
}
