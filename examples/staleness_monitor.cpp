// Staleness monitor: the Section 4.3 operational story. A cluster serves a
// workload while the coordinator-side asynchronous detector classifies
// every read from its late replica responses; the monitor compares the
// detector's live consistency estimate against the PBS prediction an
// operator would have computed offline — detection validates prediction.
//
//   $ ./staleness_monitor

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/predictor.h"
#include "core/staleness_detector.h"
#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "util/table.h"

using namespace pbs;

int main() {
  // Slow, high-variance writes: the regime where staleness is visible.
  const auto legs = MakeWars("slow-w", Exponential(0.05), Exponential(1.0));
  const QuorumConfig quorum{3, 1, 1};

  std::cout << "Offline PBS prediction (what the operator expects):\n";
  PbsPredictor predictor(quorum, MakeIidModel(legs, 3), {.trials = 200000});
  std::printf("  P(consistent | t=0)  = %.4f\n",
              predictor.ProbConsistent(0.0));
  std::printf("  99.9%% window         = %.1f ms\n\n",
              predictor.TimeForConsistency(0.999));

  std::cout << "Online detector (what the cluster observes, Section 4.3):\n";
  kvs::KvsConfig config;
  config.quorum = quorum;
  config.legs = legs;
  config.request_timeout_ms = 5000.0;
  config.num_coordinators = 2;
  kvs::Cluster cluster(config);

  // Commit-time oracle: track commits as they happen so the detector can
  // separate true staleness from newer-but-uncommitted false positives.
  std::vector<double> commit_times(60001, -1.0);
  StalenessDetector detector([&commit_times](int64_t version) {
    if (version <= 0 || version > 60000) return -1.0;
    return commit_times[version];
  });
  cluster.set_late_read_hook([&detector](const kvs::LateReadInfo& info) {
    ReadObservation obs;
    obs.returned_version = info.returned_sequence;
    obs.read_start_time = info.read_start_time;
    obs.late_response_versions = info.late_response_sequences;
    detector.Observe(obs);
  });

  kvs::ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  kvs::ClientSession reader(&cluster, cluster.coordinator(1).id(), 2);
  const int rounds = 30000;
  for (int i = 1; i <= rounds; ++i) {
    cluster.sim().At(i * 40.0, [&, i]() {
      writer.Write(1, "v", [&, i](const kvs::WriteResult& w) {
        if (w.ok) commit_times[i] = w.commit_time;
      });
      reader.Read(1, nullptr);  // concurrent with the write stream
    });
  }
  cluster.sim().Run();

  TextTable table({"verdict", "count"});
  table.AddRow({"consistent", std::to_string(detector.consistent())});
  table.AddRow({"stale (newer committed before read)",
                std::to_string(detector.stale())});
  table.AddRow({"false positive (newer but uncommitted)",
                std::to_string(detector.false_positives())});
  table.Print(std::cout);
  std::printf("\n  detector's consistency estimate: %.4f\n",
              detector.EmpiricalConsistency());
  std::cout << "\nNote: the detector sees reads issued concurrently with "
               "writes (not t=0 probes), so its estimate sits near — and "
               "its false-positive bucket explains the gap to — the "
               "prediction; with the commit oracle the classification is "
               "exact, as Section 4.3 describes. Speculative execution "
               "could subscribe to exactly these verdicts.\n";
  return 0;
}
