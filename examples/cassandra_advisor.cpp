// Cassandra-style consistency advisor: speak in ONE/TWO/QUORUM/ALL (the
// levels practitioners actually configure, Section 2.3) and get PBS
// predictions for every read/write level combination — the library as the
// "what does consistency level ONE actually give me?" tool.
//
//   $ ./cassandra_advisor [N]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/predictor.h"
#include "dist/production.h"
#include "kvs/consistency_level.h"
#include "util/table.h"

using namespace pbs;
using kvs::ConsistencyLevel;

int main(int argc, char** argv) {
  int n = 3;
  if (argc >= 2) n = std::atoi(argv[1]);
  if (n < 1 || n > 10) {
    std::cerr << "replication factor must be in [1, 10]\n";
    return 1;
  }

  std::printf(
      "Consistency-level advisor for N=%d over LNKD-DISK latencies\n"
      "(reads: P(fresh) immediately / after 10 ms; window = t for 99.9%% "
      "fresh reads; latencies at the 99.9th percentile)\n\n",
      n);

  const auto model = MakeIidModel(LnkdDisk(), n);
  const std::vector<ConsistencyLevel> levels = {
      ConsistencyLevel::kOne, ConsistencyLevel::kQuorum,
      ConsistencyLevel::kAll};

  TextTable table({"read CL", "write CL", "mode", "P(fresh,0ms)",
                   "P(fresh,10ms)", "window (ms)", "Lr (ms)", "Lw (ms)"});
  for (ConsistencyLevel read_level : levels) {
    for (ConsistencyLevel write_level : levels) {
      const auto config = kvs::MakeQuorumConfig(n, read_level, write_level);
      if (!config.ok()) continue;
      PredictorOptions options;
      options.trials = 100000;
      options.collect_propagation = false;
      PbsPredictor predictor(config.value(), model, options);
      table.AddRow({kvs::ToString(read_level), kvs::ToString(write_level),
                    config.value().IsStrict() ? "strict" : "partial",
                    FormatDouble(predictor.ProbConsistent(0.0), 4),
                    FormatDouble(predictor.ProbConsistent(10.0), 4),
                    FormatDouble(predictor.TimeForConsistency(0.999), 2),
                    FormatDouble(predictor.ReadLatencyPercentile(99.9), 2),
                    FormatDouble(predictor.WriteLatencyPercentile(99.9), 2)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nRules of thumb this table quantifies:\n"
               "  - ONE/ONE (the Cassandra default) is fast but its window "
               "of inconsistency is tens of ms on disks;\n"
               "  - QUORUM/QUORUM is strict: zero window, at ~2x the "
               "latency;\n"
               "  - ONE/ALL and ALL/ONE are also strict - pay on exactly "
               "one side of the workload.\n";
  return 0;
}
