// SLA explorer: the Section 6 "Latency/Staleness SLA" workflow an operator
// would run. Given a staleness SLA (window + probability), a durability
// floor and a workload read/write mix, enumerates the (N, R, W) space and
// prints the latency-optimal feasible configuration plus the runner-ups.
//
//   $ ./sla_explorer [max_t_ms] [probability] [min_w] [read_fraction]
//   e.g. ./sla_explorer 15 0.999 2 0.8

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/sla.h"
#include "dist/production.h"
#include "util/table.h"

int main(int argc, char** argv) {
  double max_t_ms = 15.0;
  double probability = 0.999;
  int min_w = 1;
  double read_fraction = 0.8;
  if (argc >= 2) max_t_ms = std::atof(argv[1]);
  if (argc >= 3) probability = std::atof(argv[2]);
  if (argc >= 4) min_w = std::atoi(argv[3]);
  if (argc >= 5) read_fraction = std::atof(argv[4]);

  std::printf(
      "SLA: reads consistent within %.1f ms with probability %.4f; "
      "durability floor W >= %d; workload %.0f%% reads.\n"
      "Latency model: LNKD-DISK (swap in your own fits).\n\n",
      max_t_ms, probability, min_w, 100.0 * read_fraction);

  pbs::SlaOptimizer optimizer(
      [](int n) { return pbs::MakeIidModel(pbs::LnkdDisk(), n); },
      /*trials_per_config=*/50000, /*seed=*/7);

  pbs::SlaConstraints constraints;
  constraints.min_n = 2;
  constraints.max_n = 5;
  constraints.min_write_quorum = min_w;
  constraints.consistency_probability = probability;
  constraints.max_t_visibility_ms = max_t_ms;

  pbs::SlaObjective objective;
  objective.latency_percentile = 99.9;
  objective.read_weight = read_fraction;
  objective.write_weight = 1.0 - read_fraction;

  const auto candidates = optimizer.EnumerateAll(constraints, objective);
  if (candidates.empty() || !candidates.front().feasible) {
    std::cout << "No configuration satisfies this SLA within N <= "
              << constraints.max_n << ". Relax the window or probability.\n";
    return 1;
  }

  pbs::TextTable table({"rank", "config", "t@SLA prob (ms)",
                        "Lr 99.9 (ms)", "Lw 99.9 (ms)",
                        "weighted objective", "feasible"});
  int rank = 1;
  for (const auto& candidate : candidates) {
    if (rank > 10) break;
    table.AddRow({std::to_string(rank++), candidate.config.ToString(),
                  pbs::FormatDouble(candidate.t_visibility_ms, 2),
                  pbs::FormatDouble(candidate.read_latency_ms, 2),
                  pbs::FormatDouble(candidate.write_latency_ms, 2),
                  pbs::FormatDouble(candidate.objective, 2),
                  candidate.feasible ? "yes" : "no"});
  }
  table.Print(std::cout);

  const auto& best = candidates.front();
  std::printf(
      "\nRecommendation: %s — %.2f ms weighted 99.9th-pct latency while "
      "meeting the %.1f ms staleness window.\n",
      best.config.ToString().c_str(), best.objective, max_t_ms);
  if (best.config.IsPartial()) {
    std::cout << "This is a PARTIAL quorum: the SLA is met "
                 "probabilistically (PBS), not by quorum intersection.\n";
  }
  return 0;
}
