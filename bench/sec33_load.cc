// E2 — Section 3.3: load lower bounds. Shows how tolerating k versions of
// staleness (or monotonic-reads with C = 1 + gw/cr) lowers the load of a
// quorum system, increasing its capacity.

#include <iostream>

#include "bench/bench_util.h"
#include "core/closed_form.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Section 3.3: quorum system load lower bounds ===\n\n";
  std::cout << "epsilon-intersecting baseline: load >= (1-sqrt(eps))/"
               "sqrt(N) [Malkhi et al.]\n";
  std::cout << "PBS k-staleness: eps = p^(1/k)  =>  load >= "
               "(1-p^(1/(2k)))/sqrt(N)\n\n";

  const std::vector<int> ns = {3, 9, 100};
  const std::vector<double> ps = {0.001, 0.01, 0.1};
  const std::vector<double> ks = {1, 2, 4, 8, 16};

  CsvWriter csv(std::string(bench::kResultsDir) + "/sec33_load.csv");
  csv.WriteHeader({"n", "p", "k", "load_lower_bound"});

  for (int n : ns) {
    TextTable table({"p \\ k", "k=1", "k=2", "k=4", "k=8", "k=16",
                     "capacity gain k=16 vs k=1"});
    for (double p : ps) {
      std::vector<double> row;
      for (double k : ks) {
        const double load = KStalenessLoadLowerBound(n, p, k);
        row.push_back(load);
        csv.WriteRow("", {static_cast<double>(n), p, k, load});
      }
      row.push_back(row.front() / row.back());
      table.AddRow("p=" + FormatDouble(p, 3), row, 4);
    }
    std::cout << "N = " << n << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "=== Monotonic reads load bound: C = 1 + gw/cr ===\n\n";
  TextTable mono({"gw/cr", "C", "load bound (N=9, p=0.01)"});
  for (double ratio : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    const double c = 1.0 + ratio;
    mono.AddRow("gw/cr=" + FormatDouble(ratio, 1),
                {c, KStalenessLoadLowerBound(9, 0.01, c)}, 4);
  }
  mono.Print(std::cout);
  std::cout << "\nTakeaway: staleness tolerance exponentially relaxes the "
               "per-quorum intersection requirement, so the busiest replica "
               "serves a vanishing fraction of requests as k grows.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
