// E1 — Section 3.1 worked numbers: PBS k-staleness closed form (Equation 2)
// for the paper's running examples, cross-checked against Monte Carlo over
// classical non-expanding probabilistic quorums.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/closed_form.h"
#include "core/quorum_sampler.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Section 3.1: PBS k-staleness, P(within k versions) "
               "(Equation 2) ===\n\n";
  const std::vector<QuorumConfig> configs = {
      {3, 1, 1}, {3, 1, 2}, {3, 2, 1}, {3, 2, 2}, {2, 1, 1}, {5, 1, 1}};
  const std::vector<int> ks = {1, 2, 3, 5, 10};
  const int trials = 300000;

  TextTable table({"config", "ps (Eq.1)", "k=1", "k=2", "k=3", "k=5",
                   "k=10", "MC k=3 (300k trials)"});
  CsvWriter csv(std::string(bench::kResultsDir) + "/sec31_kstaleness.csv");
  csv.WriteHeader({"n", "r", "w", "ps", "k", "p_fresh_closed", "p_fresh_mc"});

  for (const auto& config : configs) {
    const double ps = SingleQuorumMissProbability(config);
    std::vector<double> row = {ps};
    for (int k : ks) row.push_back(KFreshnessProbability(config, k));
    QuorumSampler sampler(config, /*seed=*/31);
    row.push_back(1.0 - sampler.EstimateKStaleness(3, trials));
    table.AddRow(config.ToString(), row, 4);
    for (int k : ks) {
      QuorumSampler mc(config, /*seed=*/32 + k);
      csv.WriteRow("", {static_cast<double>(config.n),
                        static_cast<double>(config.r),
                        static_cast<double>(config.w), ps,
                        static_cast<double>(k),
                        KFreshnessProbability(config, k),
                        1.0 - mc.EstimateKStaleness(k, trials)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nPaper anchors: N=3,R=W=1 -> k=3: 0.703, k=5: >0.868, "
               "k=10: >0.98; N=3,R=1,W=2 -> k=5: >0.995.\n";
  std::cout << "Large-system example (Section 2.1): N=100, R=W=30 -> ps = "
            << FormatDouble(SingleQuorumMissProbability({100, 30, 30}) * 1e6,
                            3)
            << "e-6 (paper: 1.88e-6).\n\n";

  std::cout << "=== Single-writer k-quorum round-robin placement "
               "(Section 2.1): staleness never exceeds ceil(N/W) ===\n\n";
  TextTable rr(
      {"config", "bound ceil(N/W)", "max observed staleness", "bound holds"});
  for (const QuorumConfig config :
       {QuorumConfig{6, 1, 2}, QuorumConfig{6, 1, 3}, QuorumConfig{4, 1, 1}}) {
    QuorumSampler sampler(config, /*seed=*/33);
    const auto histogram = sampler.StalenessHistogram(
        30, 100000, QuorumSampler::WritePlacement::kRoundRobin);
    int max_staleness = 0;
    for (size_t k = 0; k < histogram.size(); ++k) {
      if (histogram[k] > 0) max_staleness = static_cast<int>(k);
    }
    const int bound = (config.n + config.w - 1) / config.w;
    rr.AddRow({config.ToString(), std::to_string(bound),
               std::to_string(max_staleness),
               max_staleness < bound ? "yes" : "NO"});
  }
  rr.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
