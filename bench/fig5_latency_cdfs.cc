// E5 — Figure 5: read and write operation latency CDFs for the production
// fits, N=3, R in {1,2,3} and W in {1,2,3}. Prints key percentiles per
// (scenario, quorum size) and writes the full CDFs to CSV.

#include <iostream>

#include "bench/bench_util.h"
#include "core/latency.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Figure 5: operation latency CDFs, N=3 ===\n\n";
  const int trials = 300000;
  const auto scenarios = bench::ProductionScenarios(3);

  CsvWriter csv(std::string(bench::kResultsDir) + "/fig5_latency_cdfs.csv");
  csv.WriteHeader({"scenario", "op", "quorum_size", "percentile",
                   "latency_ms"});
  const std::vector<double> percentiles = {1,  5,  10, 25, 50,   75,  90,
                                           95, 99, 99.9, 99.99};

  for (const auto& scenario : scenarios) {
    TextTable table({"op", "quorum", "p50", "p90", "p99", "p99.9"});
    for (int size = 1; size <= 3; ++size) {
      // Reads: vary R with W=1; writes: vary W with R=1 (the figure's two
      // rows are independent sweeps).
      const auto read_lat =
          EstimateLatencies({3, size, 1}, scenario.model, trials, 500 + size,
                            bench::BenchExecution());
      const auto write_lat =
          EstimateLatencies({3, 1, size}, scenario.model, trials, 600 + size,
                            bench::BenchExecution());
      table.AddRow("read", {static_cast<double>(size),
                            read_lat.reads.Percentile(50.0),
                            read_lat.reads.Percentile(90.0),
                            read_lat.reads.Percentile(99.0),
                            read_lat.reads.Percentile(99.9)});
      table.AddRow("write", {static_cast<double>(size),
                             write_lat.writes.Percentile(50.0),
                             write_lat.writes.Percentile(90.0),
                             write_lat.writes.Percentile(99.0),
                             write_lat.writes.Percentile(99.9)});
      for (double pct : percentiles) {
        csv.WriteRow({scenario.name, "read", std::to_string(size),
                      FormatDouble(pct, 2),
                      FormatDouble(read_lat.reads.Percentile(pct), 4)});
        csv.WriteRow({scenario.name, "write", std::to_string(size),
                      FormatDouble(pct, 2),
                      FormatDouble(write_lat.writes.Percentile(pct), 4)});
      }
    }
    std::cout << scenario.name << " (R varies with W=1; W varies with R=1; "
              << "first column of the row pair is the quorum size):\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: for reads LNKD-SSD == LNKD-DISK (identical "
               "A=R=S legs); WAN reads jump by ~150 ms once R>1; YMMR "
               "writes show the fsync tail above the 99th percentile.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
