// Chaos harness: tail latency and empirical t-visibility under gray
// failures, with hedged reads off vs on per fault class.
//
// Each scenario installs one fault class from kvs/failure.h (a 10x slow
// replica, a bursty Gilbert-Elliott lossy link, a duplicating link, a
// flapping replica, a one-way partition, or a seeded random-gray mix) and
// runs the Section 5.2 staleness workload through it twice — hedging off,
// hedging on — pooling client-visible latencies across trials. The headline
// check mirrors the rapid-read-protection claim: under the 10x slow replica
// the hedged read p99.9 must be at least 2x lower than unhedged, with zero
// monotonic-read violations (strict quorums keep reads safe either way) and
// all duplicate responses suppressed rather than double-counted.
//
// Self-contained harness in the micro_perf mold: paper-style table on
// stdout, machine-readable bench_results/BENCH_chaos.{json,csv}.
//
// Usage: chaos [--trials=small|full] [--out-dir=DIR] [--threads=N]

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "dist/production.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "obs/exporters.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pbs {
namespace {

struct ScenarioRow {
  std::string scenario;
  bool hedged = false;
  kvs::ChaosSummary summary;
};

// One fault class: given the run horizon and a seed, produce the schedule.
struct Scenario {
  std::string name;
  std::function<kvs::FaultSchedule(double horizon, uint64_t seed)> faults;
};

kvs::ChaosSummary RunScenario(const Scenario& scenario, bool hedged,
                              int trials, int writes,
                              const PbsExecutionOptions& exec) {
  kvs::ChaosTrialOptions options;
  options.experiment.cluster.quorum = {3, 2, 2};  // strict: R + W > N
  options.experiment.cluster.legs = LnkdSsd();
  options.experiment.cluster.request_timeout_ms = 200.0;
  // kQuorumOnly leaves an untried replica for hedges to recruit.
  options.experiment.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.experiment.cluster.hedge.enabled = hedged;
  options.experiment.cluster.hedge.quantile = 0.99;
  options.experiment.cluster.retry.max_attempts = 3;
  options.experiment.cluster.retry.backoff_base_ms = 5.0;
  options.experiment.cluster.retry.deadline_ms = 150.0;
  options.experiment.writes = writes;
  options.experiment.write_spacing_ms = 50.0;
  options.experiment.read_offsets_ms = {1.0, 10.0, 50.0};
  options.trials = trials;
  options.seed = 4242;  // per-trial workload seeds derive from this
  options.inject_faults = false;  // scenario installs its own schedule

  // RunChaosTrials covers the random-gray case; scenario-specific schedules
  // run the same per-trial seeding inline so every fault class shares the
  // workload stream (paired comparison: hedging is the only variable).
  const double max_offset = 50.0;
  const double horizon =
      static_cast<double>(options.experiment.writes + 1) *
          options.experiment.write_spacing_ms +
      max_offset + 3.0 * options.experiment.cluster.request_timeout_ms;

  const int64_t num_chunks = NumChunks(trials, exec);
  std::vector<Rng> streams = MakeJumpStreams(Rng(options.seed), num_chunks);
  struct TrialOut {
    kvs::ChaosSummary summary;
    std::vector<double> reads;
  };
  std::vector<TrialOut> outs(trials);
  ParallelFor(trials, exec, [&](int64_t chunk, int64_t begin, int64_t end) {
    Rng& stream = streams[chunk];
    for (int64_t t = begin; t < end; ++t) {
      const uint64_t workload_seed = stream.Next();
      const uint64_t fault_seed = stream.Next();
      kvs::StalenessExperimentOptions experiment = options.experiment;
      experiment.seed = workload_seed;
      const kvs::FaultSchedule schedule = scenario.faults(horizon, fault_seed);
      const kvs::StalenessExperimentResult run =
          kvs::RunStalenessExperimentWithFaults(experiment, schedule);
      kvs::ChaosSummary& s = outs[t].summary;
      const kvs::ClusterMetrics& m = run.final_metrics;
      s.reads_started = m.reads_started;
      s.reads_failed = m.reads_failed;
      s.writes_started = m.writes_started;
      s.writes_failed = m.writes_failed;
      s.hedged_reads_sent = m.hedged_reads_sent;
      s.hedged_reads_won = m.hedged_reads_won;
      s.duplicate_responses_suppressed = m.duplicate_responses_suppressed;
      s.duplicate_acks_suppressed = m.duplicate_acks_suppressed;
      s.client_read_retries = m.client_read_retries;
      s.client_write_retries = m.client_write_retries;
      s.client_deadline_misses = m.client_deadline_misses;
      s.consistency_downgrades = m.consistency_downgrades;
      s.monotonic_read_violations = m.monotonic_read_violations;
      s.messages_dropped = run.network_messages_dropped;
      s.messages_duplicated = run.network_messages_duplicated;
      s.fault_activations = m.fault_slow_node_activations +
                            m.fault_lossy_link_activations +
                            m.fault_flapping_activations +
                            m.fault_asymmetric_partition_activations;
      s.probe_offsets_ms = experiment.read_offsets_ms;
      s.probe_trials.assign(s.probe_offsets_ms.size(), 0);
      s.probe_consistent.assign(s.probe_offsets_ms.size(), 0);
      for (const auto& point : run.t_visibility) {
        for (size_t i = 0; i < s.probe_offsets_ms.size(); ++i) {
          if (point.t == s.probe_offsets_ms[i]) {
            s.probe_trials[i] = point.trials;
            s.probe_consistent[i] = point.consistent;
          }
        }
      }
      outs[t].reads = run.read_latencies;
    }
  });

  kvs::ChaosSummary pooled;
  pooled.probe_offsets_ms = options.experiment.read_offsets_ms;
  pooled.probe_trials.assign(3, 0);
  pooled.probe_consistent.assign(3, 0);
  std::vector<double> read_pool;
  for (const TrialOut& out : outs) {
    const kvs::ChaosSummary& s = out.summary;
    pooled.reads_started += s.reads_started;
    pooled.reads_failed += s.reads_failed;
    pooled.writes_started += s.writes_started;
    pooled.writes_failed += s.writes_failed;
    pooled.hedged_reads_sent += s.hedged_reads_sent;
    pooled.hedged_reads_won += s.hedged_reads_won;
    pooled.duplicate_responses_suppressed += s.duplicate_responses_suppressed;
    pooled.duplicate_acks_suppressed += s.duplicate_acks_suppressed;
    pooled.client_read_retries += s.client_read_retries;
    pooled.client_write_retries += s.client_write_retries;
    pooled.client_deadline_misses += s.client_deadline_misses;
    pooled.consistency_downgrades += s.consistency_downgrades;
    pooled.monotonic_read_violations += s.monotonic_read_violations;
    pooled.messages_dropped += s.messages_dropped;
    pooled.messages_duplicated += s.messages_duplicated;
    pooled.fault_activations += s.fault_activations;
    for (size_t i = 0; i < pooled.probe_offsets_ms.size(); ++i) {
      pooled.probe_trials[i] += s.probe_trials[i];
      pooled.probe_consistent[i] += s.probe_consistent[i];
    }
    read_pool.insert(read_pool.end(), out.reads.begin(), out.reads.end());
  }
  std::sort(read_pool.begin(), read_pool.end());
  if (!read_pool.empty()) {
    pooled.read_p50 = QuantileSorted(read_pool, 0.50);
    pooled.read_p99 = QuantileSorted(read_pool, 0.99);
    pooled.read_p999 = QuantileSorted(read_pool, 0.999);
    pooled.read_max = read_pool.back();
  }
  return pooled;
}

void WriteJson(const std::filesystem::path& path, const std::string& mode,
               const std::vector<ScenarioRow>& rows) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"chaos\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n  \"results\": [\n", mode.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const kvs::ChaosSummary& s = rows[i].summary;
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"hedged\": %s, "
        "\"reads\": %" PRId64 ", \"reads_failed\": %" PRId64 ", "
        "\"read_p50_ms\": %.6f, \"read_p99_ms\": %.6f, "
        "\"read_p999_ms\": %.6f, \"read_max_ms\": %.6f, "
        "\"hedges_sent\": %" PRId64 ", \"hedges_won\": %" PRId64 ", "
        "\"dup_responses_suppressed\": %" PRId64 ", \"dup_acks_suppressed\": %" PRId64 ", "
        "\"read_retries\": %" PRId64 ", \"deadline_misses\": %" PRId64 ", "
        "\"monotonic_violations\": %" PRId64 ", \"dropped\": %" PRId64 ", "
        "\"duplicated\": %" PRId64 ", \"fault_activations\": %" PRId64 ", "
        "\"p_consistent_1ms\": %.6f, \"p_consistent_50ms\": %.6f}%s\n",
        rows[i].scenario.c_str(), rows[i].hedged ? "true" : "false",
        s.reads_started,
        s.reads_failed, s.read_p50, s.read_p99,
        s.read_p999, s.read_max, s.hedged_reads_sent,
        s.hedged_reads_won,
        s.duplicate_responses_suppressed,
        s.duplicate_acks_suppressed,
        s.client_read_retries,
        s.client_deadline_misses,
        s.monotonic_read_violations,
        s.messages_dropped,
        s.messages_duplicated,
        s.fault_activations,
        s.ProbConsistentAtIndex(0), s.ProbConsistentAtIndex(2),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void WriteCsv(const std::filesystem::path& path,
              const std::vector<ScenarioRow>& rows) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f,
               "scenario,hedged,reads,reads_failed,read_p50_ms,read_p99_ms,"
               "read_p999_ms,read_max_ms,hedges_sent,hedges_won,"
               "dup_responses_suppressed,monotonic_violations,"
               "p_consistent_1ms,p_consistent_50ms\n");
  for (const ScenarioRow& row : rows) {
    const kvs::ChaosSummary& s = row.summary;
    std::fprintf(f, "%s,%d,%" PRId64 ",%" PRId64 ",%.6f,%.6f,%.6f,%.6f,%" PRId64 ",%" PRId64 ",%" PRId64 ","
                    "%" PRId64 ",%.6f,%.6f\n",
                 row.scenario.c_str(), row.hedged ? 1 : 0,
                 s.reads_started,
                 s.reads_failed, s.read_p50,
                 s.read_p99, s.read_p999, s.read_max,
                 s.hedged_reads_sent,
                 s.hedged_reads_won,
                 s.duplicate_responses_suppressed,
                 s.monotonic_read_violations,
                 s.ProbConsistentAtIndex(0), s.ProbConsistentAtIndex(2));
  }
  std::fclose(f);
}

/// One fully-traced run under a *partial* quorum (R=W=1) with the 10x slow
/// replica: stale reads are expected here, and the point of the artifacts is
/// that each one is explainable offline — the audit line names the read's
/// trace id, winning replica, returned vs latest-committed sequence; the
/// Chrome trace shows the same trace id's W/A/R/S spans (the slow replica's
/// late write leg); the metrics file carries the run's counters. CI uploads
/// these as the sample observability artifact.
void WriteTraceArtifacts(const std::filesystem::path& dir, int writes) {
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};  // partial: R + W <= N, staleness real
  options.cluster.legs = LnkdSsd();
  options.cluster.request_timeout_ms = 200.0;
  options.cluster.obs.trace_enabled = true;
  options.writes = writes;
  options.write_spacing_ms = 50.0;
  options.read_offsets_ms = {1.0, 10.0, 50.0};
  options.seed = 777;
  const double horizon = static_cast<double>(options.writes + 1) *
                             options.write_spacing_ms +
                         50.0 + 3.0 * options.cluster.request_timeout_ms;
  kvs::FaultSchedule schedule;
  schedule.AddSlowNode(0.0, horizon, /*node=*/0, /*delay_mult=*/10.0);
  const kvs::StalenessExperimentResult run =
      kvs::RunStalenessExperimentWithFaults(options, schedule);

  const std::string audit = obs::StalenessAuditJsonl(run.trace,
                                                     /*stale_only=*/true);
  const int64_t stale_lines =
      std::count(audit.begin(), audit.end(), '\n');
  std::ofstream(dir / "BENCH_chaos_trace.json")
      << obs::ChromeTraceJson(run.trace);
  std::ofstream(dir / "BENCH_chaos_audit.jsonl") << audit;
  std::ofstream metrics_out(dir / "BENCH_chaos_metrics.jsonl");
  obs::WriteMetricsJsonl(run.registry, metrics_out);
  std::printf(
      "traced partial-quorum run: %zu trace events, %" PRId64 " stale reads "
      "explained -> BENCH_chaos_{trace.json,audit.jsonl,metrics.jsonl}\n",
      run.trace.size(), stale_lines);
}

int Main(int argc, char** argv) {
  bool small = false;
  std::string out_dir = "bench_results";
  PbsExecutionOptions exec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials=small") {
      small = true;
    } else if (arg == "--trials=full") {
      small = false;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      exec.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else {
      std::fprintf(stderr,
                   "usage: chaos [--trials=small|full] [--out-dir=DIR] "
                   "[--threads=N]\n");
      return 2;
    }
  }
  const int trials = small ? 2 : 6;
  const int writes = small ? 200 : 1500;

  using kvs::FaultSchedule;
  std::vector<Scenario> scenarios;
  // Gray failure: replica 0 serves everything 10x slow for the entire run.
  scenarios.push_back({"slow_replica_10x",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddSlowNode(0.0, horizon, /*node=*/0,
                                       /*delay_mult=*/10.0);
                         return s;
                       }});
  // Bursty loss on the replica 0 -> coordinator(reader) response path.
  scenarios.push_back({"lossy_link_burst",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddLossyLink(0.0, horizon, /*src=*/0, /*dst=*/4,
                                        /*p_good_to_bad=*/0.02,
                                        /*p_bad_to_good=*/0.2,
                                        /*loss_bad=*/0.8);
                         return s;
                       }});
  // Every replica 0 response is duplicated: dedup correctness under load.
  scenarios.push_back({"duplicating_link",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddDuplicatingLink(0.0, horizon, /*src=*/0,
                                              /*dst=*/4, /*probability=*/1.0);
                         return s;
                       }});
  // Replica 0 flaps: 300 ms up, 200 ms down, repeatedly.
  scenarios.push_back({"flapping_replica",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddFlappingNode(0.0, horizon, /*node=*/0,
                                           /*up_ms=*/300.0, /*down_ms=*/200.0);
                         return s;
                       }});
  // One-way partition: replica 0 can hear but not be heard.
  scenarios.push_back({"asymmetric_partition",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddAsymmetricPartition(0.0, horizon, /*src=*/0,
                                                  /*dst=*/4);
                         s.AddAsymmetricPartition(0.0, horizon, /*src=*/0,
                                                  /*dst=*/3);
                         return s;
                       }});
  // Seeded mix of everything above, Poisson arrivals.
  scenarios.push_back({"random_gray",
                       [](double horizon, uint64_t seed) {
                         return FaultSchedule::RandomGrayFailures(
                             /*num_replicas=*/3, horizon,
                             /*mean_interarrival_ms=*/4000.0,
                             /*mean_duration_ms=*/1500.0, seed);
                       }});

  std::printf("chaos (%s mode): %d trials x %d writes per cell\n",
              small ? "small" : "full", trials, writes);
  std::printf("%-22s %-6s %10s %10s %10s %8s %8s %6s\n", "scenario", "hedge",
              "p50(ms)", "p99(ms)", "p99.9(ms)", "hedgewin", "dup-supp",
              "monot");
  std::vector<ScenarioRow> rows;
  for (const Scenario& scenario : scenarios) {
    for (const bool hedged : {false, true}) {
      ScenarioRow row;
      row.scenario = scenario.name;
      row.hedged = hedged;
      row.summary = RunScenario(scenario, hedged, trials, writes, exec);
      std::printf("%-22s %-6s %10.3f %10.3f %10.3f %8" PRId64 " %8" PRId64 " %6" PRId64 "\n",
                  row.scenario.c_str(), hedged ? "on" : "off",
                  row.summary.read_p50, row.summary.read_p99,
                  row.summary.read_p999,
                  row.summary.hedged_reads_won,
                  row.summary.duplicate_responses_suppressed,
                  row.summary.monotonic_read_violations);
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::filesystem::path dir(out_dir);
  WriteJson(dir / "BENCH_chaos.json", small ? "small" : "full", rows);
  WriteCsv(dir / "BENCH_chaos.csv", rows);
  std::printf("wrote %s/BENCH_chaos.{json,csv}\n", out_dir.c_str());
  WriteTraceArtifacts(dir, writes);

  // Acceptance checks. Strict quorums must stay violation-free and dedup
  // must absorb every duplicate under every fault class; under the 10x slow
  // replica, hedging must cut read p99.9 by at least 2x.
  int failures = 0;
  double slow_off_p999 = 0.0, slow_on_p999 = 0.0;
  for (const ScenarioRow& row : rows) {
    if (row.summary.monotonic_read_violations != 0) {
      std::printf("CHECK FAIL: %s hedged=%d saw %" PRId64 " monotonic violations\n",
                  row.scenario.c_str(), row.hedged ? 1 : 0,
                  row.summary.monotonic_read_violations);
      ++failures;
    }
    if (row.scenario == "slow_replica_10x") {
      (row.hedged ? slow_on_p999 : slow_off_p999) = row.summary.read_p999;
    }
  }
  if (!(slow_on_p999 * 2.0 <= slow_off_p999)) {
    std::printf("CHECK FAIL: slow_replica_10x p99.9 off=%.3f on=%.3f "
                "(want >= 2x reduction)\n",
                slow_off_p999, slow_on_p999);
    ++failures;
  } else {
    std::printf("headline: slow_replica_10x read p99.9 %.3f -> %.3f ms "
                "(%.1fx) with hedging\n",
                slow_off_p999, slow_on_p999, slow_off_p999 / slow_on_p999);
  }
  if (failures == 0) std::printf("all chaos checks passed\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pbs

int main(int argc, char** argv) { return pbs::Main(argc, argv); }
