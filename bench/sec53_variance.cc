// E10 — Section 5.3's second claim: with the mean of W held fixed, its
// *variance* drives staleness (given W stochastically above A=R=S). Sweeps
// uniform and truncated-normal W distributions with identical means and
// different variances and reports t-visibility.

#include <iostream>

#include "bench/bench_util.h"
#include "core/tvisibility.h"
#include "dist/primitives.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Section 5.3: variance of W vs staleness (fixed mean) "
               "===\n\n";
  const QuorumConfig config{3, 1, 1};
  const int trials = 400000;
  const double mean_w = 10.0;  // ms; A=R=S = Exp(1) (mean 1 ms)
  const auto ars = Exponential(1.0);

  struct Case {
    std::string name;
    DistributionPtr w;
  };
  const std::vector<Case> cases = {
      {"point-mass (var 0)", PointMass(mean_w)},
      {"uniform +/-2 (var 1.3)", Uniform(mean_w - 2.0, mean_w + 2.0)},
      {"uniform +/-8 (var 21.3)", Uniform(mean_w - 8.0, mean_w + 8.0)},
      {"normal sd=2 (var 4)", TruncatedNormal(mean_w, 2.0)},
      {"normal sd=6 (var 36)", TruncatedNormal(mean_w, 6.0)},
      {"exponential (var 100)", Exponential(1.0 / mean_w)},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/sec53_variance.csv");
  csv.WriteHeader({"w_distribution", "p_consistent_t0", "t_99pct_ms",
                   "t_999pct_ms"});

  TextTable table({"W distribution (mean 10ms)", "P(consistent, t=0)",
                   "t @ 99% (ms)", "t @ 99.9% (ms)"});
  for (const auto& c : cases) {
    const auto model = MakeIidModel(MakeWars("var", c.w, ars), config.n);
    const TVisibilityCurve curve =
        EstimateTVisibility(config, model, trials, /*seed=*/530,
                            bench::BenchExecution());
    const double p0 = curve.ProbConsistent(0.0);
    const double t99 = curve.TimeForConsistency(0.99);
    const double t999 = curve.TimeForConsistency(0.999);
    table.AddRow(c.name, {p0, t99, t999}, 3);
    csv.WriteRow(c.name, {p0, t99, t999});
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape: at equal means, wider W distributions "
               "need longer t for high consistency probabilities — the "
               "right tail of W is what races the read path. (With zero "
               "variance the entire inconsistency window is the deter-"
               "ministic residual w - wt - r.)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
