// P1 — Microbenchmarks (google-benchmark): throughput of the components
// everything else is built on. One WARS trial is a few hundred nanoseconds,
// which is what makes the 10^6-trial sweeps in the other harnesses cheap.

#include <benchmark/benchmark.h>

#include "core/closed_form.h"
#include "core/quorum_sampler.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "dist/mixture.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "kvs/experiment.h"
#include "sim/simulator.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace pbs {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ExponentialSample(benchmark::State& state) {
  Rng rng(1);
  const auto dist = Exponential(0.183);
  for (auto _ : state) benchmark::DoNotOptimize(dist->Sample(rng));
}
BENCHMARK(BM_ExponentialSample);

void BM_MixtureSample(benchmark::State& state) {
  Rng rng(1);
  const auto dist = ParetoExponentialMixture(0.9122, 0.235, 10.0, 1.66);
  for (auto _ : state) benchmark::DoNotOptimize(dist->Sample(rng));
}
BENCHMARK(BM_MixtureSample);

void BM_MixtureQuantile(benchmark::State& state) {
  const auto dist = ParetoExponentialMixture(0.9122, 0.235, 10.0, 1.66);
  double p = 0.0;
  for (auto _ : state) {
    p += 1e-4;
    if (p >= 0.999) p = 1e-4;
    benchmark::DoNotOptimize(dist->Quantile(p));
  }
}
BENCHMARK(BM_MixtureQuantile);

void BM_ClosedFormPsk(benchmark::State& state) {
  const QuorumConfig config{static_cast<int>(state.range(0)), 3, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(KStalenessProbability(config, 5));
  }
}
BENCHMARK(BM_ClosedFormPsk)->Arg(10)->Arg(100)->Arg(1000);

void BM_WarsTrial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  WarsSimulator sim({n, 1, 1}, MakeIidModel(LnkdDisk(), n), /*seed=*/1);
  for (auto _ : state) benchmark::DoNotOptimize(sim.RunTrial());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarsTrial)->Arg(3)->Arg(5)->Arg(10);

void BM_RngJump(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    rng.Jump();
    benchmark::DoNotOptimize(rng.state());
  }
}
BENCHMARK(BM_RngJump);

// The threads-vs-throughput sweep for the parallel Monte Carlo engine:
// 10^6 WARS trials per iteration, at 1/2/4/8 requested threads. The output
// columns are bitwise identical across the sweep (chunk -> jump-stream
// assignment is thread-count independent); only wall clock should move.
// items_per_second is the headline: trials/sec at each thread count.
void BM_RunWarsTrials1M(benchmark::State& state) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  PbsExecutionOptions exec;
  exec.threads = static_cast<int>(state.range(0));
  constexpr int kTrials = 1000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunWarsTrials({3, 1, 1}, model, kTrials, /*seed=*/1,
                      /*want_propagation=*/false, ReadFanout::kAllN, exec));
  }
  state.SetItemsProcessed(state.iterations() * kTrials);
  state.counters["threads"] =
      static_cast<double>(exec.ResolvedThreads());
}
BENCHMARK(BM_RunWarsTrials1M)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_WarsTrialWithPropagation(benchmark::State& state) {
  WarsSimulator sim({3, 1, 1}, MakeIidModel(LnkdDisk(), 3), /*seed=*/1);
  for (auto _ : state) benchmark::DoNotOptimize(sim.RunTrial(true));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarsTrialWithPropagation);

void BM_TVisibilityCurve100k(benchmark::State& state) {
  const auto model = MakeIidModel(LnkdDisk(), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateTVisibility({3, 1, 1}, model, 100000, /*seed=*/1));
  }
}
BENCHMARK(BM_TVisibilityCurve100k)->Unit(benchmark::kMillisecond);

void BM_QuorumSamplerTrial(benchmark::State& state) {
  QuorumSampler sampler({5, 2, 2}, /*seed=*/1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.EstimateMissProbability(1));
  }
}
BENCHMARK(BM_QuorumSamplerTrial);

void BM_SimulatorEventChurn(benchmark::State& state) {
  // Schedule/fire cost of the discrete-event core.
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10000;
    std::function<void()> tick = [&]() {
      if (--remaining > 0) sim.Schedule(1.0, tick);
    };
    sim.Schedule(1.0, tick);
    sim.Run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventChurn)->Unit(benchmark::kMillisecond);

void BM_ClusterWriteReadCycle(benchmark::State& state) {
  // End-to-end cost per operation pair in the event-driven KVS.
  for (auto _ : state) {
    kvs::StalenessExperimentOptions options;
    options.cluster.quorum = {3, 1, 1};
    options.cluster.legs = LnkdSsd();
    options.cluster.request_timeout_ms = 100.0;
    options.writes = 500;
    options.write_spacing_ms = 10.0;
    options.read_offsets_ms = {1.0};
    benchmark::DoNotOptimize(kvs::RunStalenessExperiment(options));
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // 500 writes + reads
}
BENCHMARK(BM_ClusterWriteReadCycle)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pbs

BENCHMARK_MAIN();
