// P1 — Microbenchmarks: throughput of the components everything else is
// built on. One WARS trial is a few hundred nanoseconds, which is what makes
// the 10^6-trial sweeps in the other harnesses cheap.
//
// Self-contained harness (no external benchmark library): each benchmark
// runs a fixed work budget against a steady-clock timer and reports
// items/sec. Results go to stdout as a table and to
// bench_results/BENCH_micro_perf.{json,csv} for machine consumption (the CI
// quick job uploads the JSON; the perf-regression workflow diffs it).
//
// Usage: micro_perf [--trials=small|full] [--out-dir=DIR]
//   small — CI quick mode, ~100x lighter budgets (smoke + artifact only;
//           numbers are noisy, do not compare).
//   full  — default; budgets sized so every benchmark runs >= ~0.2 s.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "core/wars.h"
#include "dist/mixture.h"
#include "dist/primitives.h"
#include "dist/production.h"
#include "dist/sampler.h"
#include "kvs/experiment.h"
#include "kvs/hotpath.h"
#include "obs/registry.h"
#include "sim/simulator.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace pbs {
namespace {

struct BenchResult {
  std::string name;
  std::string unit;        // what one "item" is: sample, trial, event, op
  int64_t items = 0;
  double seconds = 0.0;

  double ItemsPerSecond() const {
    return static_cast<double>(items) / seconds;
  }
  double NsPerItem() const {
    return seconds * 1e9 / static_cast<double>(items);
  }
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Timed repetitions per benchmark; the reported time is the minimum.
// Shared-runner noise is multiplicative (preemption, frequency scaling),
// so min-of-N is a far stabler cost estimate than any single run — the
// bench-regress gate depends on that stability. Small mode keeps one
// repetition; its numbers are smoke-only.
int g_timed_repeats = 3;

/// Runs `body(items)` after a small warmup; times the best repetition.
BenchResult RunBench(const std::string& name, const std::string& unit,
                     int64_t items,
                     const std::function<void(int64_t)>& body) {
  body(items / 16 + 1);  // warmup: touch code + data once
  double seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < g_timed_repeats; ++rep) {
    const double start = Now();
    body(items);
    seconds = std::min(seconds, Now() - start);
  }
  BenchResult result{name, unit, items, seconds};
  std::printf("%-34s %12.3e %s/s  (%8.2f ns/%s, %.3f s)\n", name.c_str(),
              result.ItemsPerSecond(), unit.c_str(), result.NsPerItem(),
              unit.c_str(), seconds);
  std::fflush(stdout);
  return result;
}

// Optimization sink: accumulate into a volatile so sampling loops cannot be
// dead-code-eliminated.
volatile double g_sink = 0.0;

void BenchDistribution(std::vector<BenchResult>* results,
                       const std::string& label, const DistributionPtr& dist,
                       int64_t samples) {
  results->push_back(
      RunBench("dist_" + label + "_virtual", "sample", samples,
               [&](int64_t n) {
                 Rng rng(1);
                 double acc = 0.0;
                 for (int64_t i = 0; i < n; ++i) acc += dist->Sample(rng);
                 g_sink = acc;
               }));
  results->push_back(RunBench(
      "dist_" + label + "_batch", "sample", samples, [&](int64_t n) {
        Rng rng(1);
        std::vector<double> buf(4096);
        double acc = 0.0;
        for (int64_t i = 0; i < n; i += static_cast<int64_t>(buf.size())) {
          const auto chunk = std::min<int64_t>(
              static_cast<int64_t>(buf.size()), n - i);
          dist->SampleBatch(rng,
                            std::span<double>(buf.data(),
                                              static_cast<size_t>(chunk)));
          acc += buf[0];
        }
        g_sink = acc;
      }));
  const CompiledSampler compiled(dist);
  results->push_back(RunBench(
      "dist_" + label + "_compiled", "sample", samples, [&](int64_t n) {
        Rng rng(1);
        std::vector<double> buf(4096);
        double acc = 0.0;
        for (int64_t i = 0; i < n; i += static_cast<int64_t>(buf.size())) {
          const auto chunk = std::min<int64_t>(
              static_cast<int64_t>(buf.size()), n - i);
          compiled.SampleBatch(rng, buf.data(), static_cast<int>(chunk));
          acc += buf[0];
        }
        g_sink = acc;
      }));
}

BenchResult BenchWars(const std::string& name, const QuorumConfig& config,
                      const WarsDistributions& legs, int threads,
                      int64_t trials, bool want_propagation = false) {
  const auto model = MakeIidModel(legs, config.n);
  PbsExecutionOptions exec;
  exec.threads = threads;
  return RunBench(name, "trial", trials, [&](int64_t n) {
    const WarsTrialSet set =
        RunWarsTrials(config, model, static_cast<int>(n), /*seed=*/1,
                      want_propagation, ReadFanout::kAllN, exec);
    g_sink = set.staleness_thresholds.back();
  });
}

BenchResult BenchWarsObserved(const std::string& name,
                              const QuorumConfig& config,
                              const WarsDistributions& legs, int threads,
                              int64_t trials, obs::Registry* registry) {
  const auto model = MakeIidModel(legs, config.n);
  PbsExecutionOptions exec;
  exec.threads = threads;
  return RunBench(name, "trial", trials, [&](int64_t n) {
    if (registry != nullptr) *registry = obs::Registry();
    const WarsTrialSet set = RunWarsTrialsObserved(
        config, model, static_cast<int>(n), /*seed=*/1,
        /*want_propagation=*/false, ReadFanout::kAllN, exec, registry);
    g_sink = set.staleness_thresholds.back();
  });
}

// Self-rescheduling tick as a 16-byte POD callable: it moves into the
// EventCallback's (UniqueFunction) inline buffer, so each reschedule is
// allocation-free. The previous std::function version paid a heap-backed
// copy of the std::function into the UniqueFunction wrapper per event, so
// this benchmark measures the event queue — not the wrapper.
struct ChurnTick {
  Simulator* sim;
  int64_t* remaining;
  void operator()() const {
    if (--*remaining > 0) sim->Schedule(1.0, ChurnTick{sim, remaining});
  }
};

BenchResult BenchEventChurn(int64_t events) {
  // Schedule/fire cost of the discrete-event core: a self-rescheduling tick
  // exercising the pop/push steady state.
  return RunBench("sim_event_churn", "event", events, [&](int64_t n) {
    Simulator sim;
    int64_t remaining = n;
    sim.Schedule(1.0, ChurnTick{&sim, &remaining});
    sim.Run();
    g_sink = static_cast<double>(sim.events_processed());
  });
}

BenchResult BenchKvsHotPath(int64_t ops) {
  // Headline: the compiled quorum hot path (kvs/hotpath.h) — the
  // pass-structured, sharded engine. One op = one committed write or one
  // probe read, same WARS legs and quorum as kvs_cluster_ops_legacy below.
  return RunBench("kvs_cluster_ops", "op", ops, [&](int64_t n) {
    kvs::HotPathOptions options;
    options.num_streams = 128;
    options.writes_per_stream =
        std::max<int64_t>(1, n / (2 * options.num_streams));
    const kvs::HotPathResult result = kvs::RunHotPath(options);
    g_sink = result.consistency();
  });
}

kvs::StalenessExperimentOptions KvsBenchOptions(int64_t ops) {
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs = LnkdSsd();
  options.cluster.request_timeout_ms = 100.0;
  options.writes = static_cast<int>(ops / 2);
  options.write_spacing_ms = 10.0;
  options.read_offsets_ms = {1.0};
  return options;
}

BenchResult BenchKvsLegacy(int64_t ops) {
  // End-to-end cost per operation in the general per-message KVS engine
  // (one op = one write or one read; each write issues one read at +1 ms).
  // Kept as the baseline the hot path is measured against.
  return RunBench("kvs_cluster_ops_legacy", "op", ops, [&](int64_t n) {
    const auto result = kvs::RunStalenessExperiment(KvsBenchOptions(n));
    g_sink = result.read_latencies.empty() ? 0.0
                                           : result.read_latencies[0];
  });
}

BenchResult BenchKvsTelemetry(int64_t ops) {
  // The same workload with streaming telemetry fully on: windowed registry
  // deltas plus the live drift monitor (which forces per-read freshness
  // classification and an owned leg profiler). Per-window costs (two dense
  // window histograms, counter diff, serialization) amortize over the ops
  // that land in the window, so the budget is stated against a window that
  // carries ~1000 ops — the sim workload runs ~200 op/s of sim time, far
  // below any production cadence, and a 1 s window here would model a
  // near-idle cluster rather than a hot one. Paired against
  // kvs_cluster_ops_legacy for the <3% monitoring budget.
  return RunBench("kvs_cluster_ops_telemetry", "op", ops, [&](int64_t n) {
    kvs::StalenessExperimentOptions options = KvsBenchOptions(n);
    options.cluster.sla =
        SlaTarget{/*fresh_probability=*/0.99, /*staleness_bound_ms=*/10.0,
                  /*read_p99_ms=*/50.0};
    options.cluster.obs.telemetry_window_ms = 5000.0;
    options.cluster.obs.monitor_enabled = true;
    const auto result = kvs::RunStalenessExperiment(options);
    g_sink = result.read_latencies.empty() ? 0.0
                                           : result.read_latencies[0];
  });
}

void WriteJson(const std::filesystem::path& path, const std::string& mode,
               const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"micro_perf\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n  \"results\": [\n", mode.c_str());
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", \"items\": %" PRId64 ", "
                 "\"seconds\": %.6f, \"items_per_second\": %.6e, "
                 "\"ns_per_item\": %.3f}%s\n",
                 r.name.c_str(), r.unit.c_str(),
                 r.items, r.seconds,
                 r.ItemsPerSecond(), r.NsPerItem(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void WriteCsv(const std::filesystem::path& path,
              const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f, "name,unit,items,seconds,items_per_second,ns_per_item\n");
  for (const BenchResult& r : results) {
    std::fprintf(f, "%s,%s,%" PRId64 ",%.6f,%.6e,%.3f\n", r.name.c_str(),
                 r.unit.c_str(), r.items, r.seconds,
                 r.ItemsPerSecond(), r.NsPerItem());
  }
  std::fclose(f);
}

int Main(int argc, char** argv) {
  bool small = false;
  std::string out_dir = "bench_results";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials=small") {
      small = true;
    } else if (arg == "--trials=full") {
      small = false;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else {
      std::fprintf(stderr,
                   "usage: micro_perf [--trials=small|full] [--out-dir=DIR]\n");
      return 2;
    }
  }
  g_timed_repeats = small ? 1 : 3;
  // Budgets: full-mode counts keep each benchmark >= ~0.2 s on a ~3 GHz
  // core; small mode divides by ~100 for CI smoke runs.
  const int64_t kSamples = small ? 1 << 16 : 1 << 23;
  const int64_t kTrials = small ? 10000 : 1000000;
  const int64_t kEvents = small ? 20000 : 2000000;
  // Full-mode legacy run is sized for ~0.5s of work: at ~2.7 us/op a 20k-op
  // run finishes in ~50 ms, which is inside this box's timer noise and made
  // the bench-regress gate flap.
  const int64_t kOps = small ? 200 : 200000;
  const int64_t kHotOps = small ? 1 << 17 : 1 << 24;

  std::printf("micro_perf (%s mode)\n", small ? "small" : "full");
  std::vector<BenchResult> results;

  // RNG floor: one xoshiro256++ step.
  results.push_back(RunBench("rng_next", "sample", kSamples * 4,
                             [&](int64_t n) {
                               Rng rng(1);
                               uint64_t acc = 0;
                               for (int64_t i = 0; i < n; ++i)
                                 acc += rng.Next();
                               g_sink = static_cast<double>(acc);
                             }));

  // Primitive + mixture sampling: virtual Sample() loop vs batched virtual
  // SampleBatch() vs devirtualized CompiledSampler.
  BenchDistribution(&results, "exponential", Exponential(0.183), kSamples);
  BenchDistribution(&results, "pareto", Pareto(0.235, 1.66), kSamples);
  BenchDistribution(&results, "lognormal", LogNormal(1.0, 0.3), kSamples);
  // The paper's Table 3 LNKD-SSD shape (Pareto body + exponential tail) —
  // the distribution on the WARS hot path.
  BenchDistribution(&results, "lnkd_ssd_mixture",
                    ParetoExponentialMixture(0.9122, 0.235, 10.0, 1.66),
                    kSamples);

  // WARS Monte Carlo throughput. wars_trials_n5 (LNKD-SSD, {5,2,2}, one
  // thread) is the headline number tracked in README.md.
  results.push_back(
      BenchWars("wars_trials_n3", {3, 1, 1}, LnkdSsd(), 1, kTrials));
  const BenchResult wars_n5 =
      BenchWars("wars_trials_n5", {5, 2, 2}, LnkdSsd(), 1, kTrials);
  results.push_back(wars_n5);
  results.push_back(
      BenchWars("wars_trials_n10", {10, 3, 3}, LnkdSsd(), 1, kTrials));
  results.push_back(
      BenchWars("wars_trials_n5_disk", {5, 2, 2}, LnkdDisk(), 1, kTrials));
  results.push_back(BenchWars("wars_trials_n5_prop", {5, 2, 2}, LnkdSsd(), 1,
                              kTrials, /*want_propagation=*/true));
  results.push_back(
      BenchWars("wars_trials_n5_threads8", {5, 2, 2}, LnkdSsd(), 8, kTrials));

  // Observability overhead, paired in-process against wars_trials_n5: the
  // observed entry point with registry == nullptr must not regress the plain
  // path by more than 3% (tracing compiled in but disabled); with a live
  // registry it additionally pays for the per-chunk histogram fills.
  const BenchResult wars_obs_off = BenchWarsObserved(
      "wars_trials_n5_obs_off", {5, 2, 2}, LnkdSsd(), 1, kTrials, nullptr);
  results.push_back(wars_obs_off);
  obs::Registry wars_registry;
  results.push_back(BenchWarsObserved("wars_trials_n5_obs_on", {5, 2, 2},
                                      LnkdSsd(), 1, kTrials, &wars_registry));
  const double obs_off_overhead_pct =
      100.0 * (wars_obs_off.NsPerItem() / wars_n5.NsPerItem() - 1.0);
  std::printf("observability-disabled overhead on wars_trials_n5: %+.2f%% "
              "(budget: +3%%)\n",
              obs_off_overhead_pct);
  bool overhead_ok = true;
  if (!small && obs_off_overhead_pct > 3.0) {
    std::fprintf(stderr,
                 "FAIL: tracing-disabled WARS overhead %+.2f%% exceeds the "
                 "3%% budget\n",
                 obs_off_overhead_pct);
    overhead_ok = false;
  }

  // Discrete-event simulator and end-to-end KVS.
  results.push_back(BenchEventChurn(kEvents));
  const BenchResult kvs_hot = BenchKvsHotPath(kHotOps);
  results.push_back(kvs_hot);
  const BenchResult kvs_legacy = BenchKvsLegacy(kOps);
  results.push_back(kvs_legacy);

  // Streaming-telemetry overhead, paired in-process against the same KVS
  // workload: windowed time-series + drift monitor must cost < 3% per op
  // (telemetry-off is bitwise identical to the pre-telemetry engine, so
  // only the enabled path needs a budget).
  const BenchResult kvs_telemetry = BenchKvsTelemetry(kOps);
  results.push_back(kvs_telemetry);
  const double telemetry_overhead_pct =
      100.0 * (kvs_telemetry.NsPerItem() / kvs_legacy.NsPerItem() - 1.0);
  std::printf("streaming-telemetry overhead on kvs_cluster_ops_legacy: "
              "%+.2f%% (budget: +3%%)\n",
              telemetry_overhead_pct);
  if (!small && telemetry_overhead_pct > 3.0) {
    std::fprintf(stderr,
                 "FAIL: streaming-telemetry overhead %+.2f%% exceeds the "
                 "3%% budget\n",
                 telemetry_overhead_pct);
    overhead_ok = false;
  }

  // Throughput gate: the compiled hot path must sustain >= 5M simulated
  // ops/s in full mode (the "close the 70x gap" target; the legacy
  // per-message engine runs ~100 Kops/s on the same hardware).
  bool hotpath_ok = true;
  if (!small && kvs_hot.ItemsPerSecond() < 5e6) {
    std::fprintf(stderr,
                 "FAIL: kvs_cluster_ops %.3e ops/s is below the 5e6 ops/s "
                 "gate\n",
                 kvs_hot.ItemsPerSecond());
    hotpath_ok = false;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::filesystem::path dir(out_dir);
  WriteJson(dir / "BENCH_micro_perf.json", small ? "small" : "full", results);
  WriteCsv(dir / "BENCH_micro_perf.csv", results);
  std::printf("wrote %s/BENCH_micro_perf.{json,csv}\n", out_dir.c_str());
  return overhead_ok && hotpath_ok ? 0 : 1;
}

}  // namespace
}  // namespace pbs

int main(int argc, char** argv) { return pbs::Main(argc, argv); }
