// E9 — Section 5.2: experimental validation of the WARS Monte Carlo against
// a real Dynamo-style implementation. The paper modified Cassandra, drove
// it with exponential W in {0.05, 0.1, 0.2} x A=R=S in {0.1, 0.2, 0.5}
// (50,000 writes each), and reported t-visibility prediction RMSE of 0.28%
// and latency N-RMSE of 0.48%. Our stand-in for the Cassandra cluster is
// the event-driven KVS in src/kvs (same protocol, same delay
// distributions); we run the identical 3x3 sweep and report the same error
// metrics.

#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "dist/primitives.h"
#include "kvs/experiment.h"
#include "obs/exporters.h"
#include "obs/registry.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Section 5.2: WARS prediction vs event-driven "
               "Dynamo-style cluster ===\n\n";
  const std::vector<double> lambda_ws = {0.05, 0.1, 0.2};
  const std::vector<double> lambda_arss = {0.1, 0.2, 0.5};
  const QuorumConfig config{3, 1, 1};
  const int cluster_writes = 20000;
  const int wars_trials = 400000;

  // t grid for the RMSE, mirroring the paper's t in {1..199} ms but coarser
  // to keep the event-driven run tractable; probes are per-write reads.
  std::vector<double> offsets;
  for (double t = 0.0; t <= 96.0; t += 8.0) offsets.push_back(t);

  CsvWriter csv(std::string(bench::kResultsDir) + "/sec52_validation.csv");
  csv.WriteHeader({"lambda_w", "lambda_ars", "tvis_rmse_pct",
                   "read_latency_nrmse_pct", "write_latency_nrmse_pct"});

  TextTable table({"W lambda (mean ms)", "ARS lambda (mean ms)",
                   "t-vis RMSE", "read lat N-RMSE", "write lat N-RMSE"});

  // Both sides of the validation feed one instrument registry: the
  // event-driven runs export their cluster counters plus measured per-leg
  // delay histograms (LegProfiler), the WARS side its trial histograms.
  obs::Registry sweep_registry;

  RunningStats rmse_stats;
  for (double lambda_w : lambda_ws) {
    for (double lambda_ars : lambda_arss) {
      const auto legs = MakeWars("val", Exponential(lambda_w),
                                 Exponential(lambda_ars));

      // Event-driven measurement (the "Cassandra" side).
      kvs::StalenessExperimentOptions options;
      options.cluster.quorum = config;
      options.cluster.legs = legs;
      options.cluster.request_timeout_ms = 5000.0;
      options.writes = cluster_writes;
      options.write_spacing_ms = 500.0;
      options.read_offsets_ms = offsets;
      options.profile_legs = true;
      options.seed = 520;
      const auto measured = kvs::RunStalenessExperiment(options);
      sweep_registry.Merge(measured.registry);

      // WARS Monte Carlo prediction.
      const auto model = MakeIidModel(legs, config.n);
      WarsTrialSet set =
          RunWarsTrialsObserved(config, model, wars_trials, /*seed=*/521,
                                /*want_propagation=*/false, ReadFanout::kAllN,
                                bench::BenchExecution(), &sweep_registry);
      const TVisibilityCurve predicted(std::move(set.staleness_thresholds));
      const LatencyProfile predicted_reads(std::move(set.read_latencies));
      const LatencyProfile predicted_writes(std::move(set.write_latencies));

      std::vector<double> observed_curve;
      std::vector<double> predicted_curve;
      for (size_t i = 0; i < offsets.size(); ++i) {
        observed_curve.push_back(
            measured.t_visibility[i].ProbConsistent());
        predicted_curve.push_back(predicted.ProbConsistent(offsets[i]));
      }
      const double tvis_rmse = Rmse(observed_curve, predicted_curve);

      const LatencyProfile measured_reads(measured.read_latencies);
      const LatencyProfile measured_writes(measured.write_latencies);
      std::vector<double> pr;
      std::vector<double> mr;
      std::vector<double> pw;
      std::vector<double> mw;
      for (double pct = 1.0; pct <= 99.9; pct += 1.0) {
        pr.push_back(predicted_reads.Percentile(pct));
        mr.push_back(measured_reads.Percentile(pct));
        pw.push_back(predicted_writes.Percentile(pct));
        mw.push_back(measured_writes.Percentile(pct));
      }
      const double read_nrmse = NormalizedRmse(mr, pr);
      const double write_nrmse = NormalizedRmse(mw, pw);

      table.AddRow(
          {FormatDouble(lambda_w, 2) + " (" +
               FormatDouble(1.0 / lambda_w, 0) + "ms)",
           FormatDouble(lambda_ars, 2) + " (" +
               FormatDouble(1.0 / lambda_ars, 0) + "ms)",
           FormatDouble(100.0 * tvis_rmse, 2) + "%",
           FormatDouble(100.0 * read_nrmse, 2) + "%",
           FormatDouble(100.0 * write_nrmse, 2) + "%"});
      csv.WriteRow("", {lambda_w, lambda_ars, 100.0 * tvis_rmse,
                        100.0 * read_nrmse, 100.0 * write_nrmse});
      rmse_stats.Add(100.0 * tvis_rmse);
    }
  }
  table.Print(std::cout);

  const std::string metrics_path =
      std::string(bench::kResultsDir) + "/sec52_metrics.jsonl";
  std::ofstream metrics_out(metrics_path);
  obs::WriteMetricsJsonl(sweep_registry, metrics_out);
  std::cout << "\nSweep instrument registry (cluster counters, measured "
               "legs/* histograms, wars/* trial histograms) -> "
            << metrics_path << "\n";

  std::cout << "\nAverage t-visibility RMSE: "
            << FormatDouble(rmse_stats.mean(), 2) << "% (std dev "
            << FormatDouble(rmse_stats.stddev(), 2)
            << "%). Paper: average 0.28% (std dev 0.05%, max 0.53%) with "
               "50k writes per configuration; our per-point sample "
               "count is " << cluster_writes << " reads per offset.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
