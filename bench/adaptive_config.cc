// A7 — Section 6 "Variable configurations": the adaptive controller
// tracking latency-regime shifts. The environment moves through epochs
// (SSD-era -> disk-era -> heavy-tailed YMMR -> back to SSD); at each epoch
// the controller re-evaluates (R, W) for fixed N against a 10 ms @ 99.9%
// staleness SLA and minimizes 99.9th-percentile latency.
//
// A second run repeats the identical epoch schedule with the analytic
// evaluator (AdaptiveControllerOptions::backend = kAnalytic) and compares
// decisions and per-epoch wall time — the DESIGN.md §12 claim that the
// grid backend makes control epochs effectively free.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "core/adaptive.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Adaptive (R, W) reconfiguration across latency-regime "
               "shifts (N=3, SLA: 10 ms @ 99.9%) ===\n\n";

  AdaptiveControllerOptions options;
  options.consistency_probability = 0.999;
  options.max_t_visibility_ms = 10.0;
  options.trials_per_eval = 60000;
  options.seed = 7007;
  AdaptiveConfigController controller({3, 1, 1}, options);

  struct Epoch {
    std::string name;
    ReplicaLatencyModelPtr model;
  };
  const std::vector<Epoch> epochs = {
      {"SSD fleet", MakeIidModel(LnkdSsd(), 3)},
      {"SSD fleet (steady)", MakeIidModel(LnkdSsd(), 3)},
      {"disk fleet (migration)", MakeIidModel(LnkdDisk(), 3)},
      {"disk fleet (steady)", MakeIidModel(LnkdDisk(), 3)},
      {"fsync-bound (YMMR)", MakeIidModel(Ymmr(), 3)},
      {"back to SSD", MakeIidModel(LnkdSsd(), 3)},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/adaptive_config.csv");
  csv.WriteHeader({"epoch", "environment", "r", "w", "t_visibility_ms",
                   "objective_ms", "feasible", "switched"});

  TextTable table({"epoch", "environment", "config", "t@99.9% (ms)",
                   "objective (ms)", "SLA met", "switched"});
  for (size_t e = 0; e < epochs.size(); ++e) {
    controller.Update(epochs[e].model);
    const auto& decision = controller.history().back();
    table.AddRow({std::to_string(e + 1), epochs[e].name,
                  decision.chosen.ToString(),
                  FormatDouble(decision.t_visibility_ms, 2),
                  FormatDouble(decision.objective_ms, 2),
                  decision.feasible ? "yes" : "NO",
                  decision.switched ? "yes" : "-"});
    csv.WriteRow(epochs[e].name,
                 {static_cast<double>(e + 1),
                  static_cast<double>(decision.chosen.r),
                  static_cast<double>(decision.chosen.w),
                  decision.t_visibility_ms, decision.objective_ms,
                  decision.feasible ? 1.0 : 0.0,
                  decision.switched ? 1.0 : 0.0});
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: on SSDs R=W=1 meets the SLA at minimal latency; the "
         "disk migration blows the 10 ms window and the controller buys "
         "consistency with a bigger read quorum; under YMMR's fsync tails "
         "it must go stricter still; returning to SSDs it relaxes again "
         "(only past the hysteresis margin, so no flapping on noise).\n";

  // Same epoch schedule, per backend, timed: the analytic evaluator sweeps
  // the identical (R, W) lattice off one grid per epoch instead of a Monte
  // Carlo batch per candidate.
  std::cout << "\n=== Epoch cost by predictor backend (same schedule) ===\n\n";
  CsvWriter bcsv(std::string(bench::kResultsDir) +
                 "/adaptive_config_backend.csv");
  bcsv.WriteHeader({"backend", "epoch", "r", "w", "feasible",
                    "epoch_ms"});
  TextTable btable({"backend", "decisions (R,W per epoch)", "total (ms)",
                    "per epoch (ms)"});
  for (const PredictorBackend backend :
       {PredictorBackend::kMonteCarlo, PredictorBackend::kAnalytic}) {
    AdaptiveControllerOptions bopts = options;
    bopts.backend = backend;
    AdaptiveConfigController bench_controller({3, 1, 1}, bopts);
    std::string decisions;
    double total_ms = 0.0;
    for (size_t e = 0; e < epochs.size(); ++e) {
      const auto start = std::chrono::steady_clock::now();
      bench_controller.Update(epochs[e].model);
      const double epoch_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      total_ms += epoch_ms;
      const auto& decision = bench_controller.history().back();
      decisions += (e ? " " : "") + std::to_string(decision.chosen.r) + "," +
                   std::to_string(decision.chosen.w);
      bcsv.WriteRow(PredictorBackendName(backend),
                    {static_cast<double>(e + 1),
                     static_cast<double>(decision.chosen.r),
                     static_cast<double>(decision.chosen.w),
                     decision.feasible ? 1.0 : 0.0, epoch_ms});
    }
    btable.AddRow({PredictorBackendName(backend), decisions,
                   FormatDouble(total_ms, 1),
                   FormatDouble(total_ms / epochs.size(), 2)});
  }
  btable.Print(std::cout);
  std::cout << "\nReading: both backends walk the same regime shifts to the "
               "same quorum choices (grid bias common to all candidates "
               "cancels in the comparison); the analytic epochs cost an "
               "order of magnitude less than the Monte Carlo ones — cheap "
               "enough to re-run the control loop every measurement window "
               "instead of amortizing it.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
