// A7 — Section 6 "Variable configurations": the adaptive controller
// tracking latency-regime shifts. The environment moves through epochs
// (SSD-era -> disk-era -> heavy-tailed YMMR -> back to SSD); at each epoch
// the controller re-evaluates (R, W) for fixed N against a 10 ms @ 99.9%
// staleness SLA and minimizes 99.9th-percentile latency.

#include <iostream>

#include "bench/bench_util.h"
#include "core/adaptive.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Adaptive (R, W) reconfiguration across latency-regime "
               "shifts (N=3, SLA: 10 ms @ 99.9%) ===\n\n";

  AdaptiveControllerOptions options;
  options.consistency_probability = 0.999;
  options.max_t_visibility_ms = 10.0;
  options.trials_per_eval = 60000;
  options.seed = 7007;
  AdaptiveConfigController controller({3, 1, 1}, options);

  struct Epoch {
    std::string name;
    ReplicaLatencyModelPtr model;
  };
  const std::vector<Epoch> epochs = {
      {"SSD fleet", MakeIidModel(LnkdSsd(), 3)},
      {"SSD fleet (steady)", MakeIidModel(LnkdSsd(), 3)},
      {"disk fleet (migration)", MakeIidModel(LnkdDisk(), 3)},
      {"disk fleet (steady)", MakeIidModel(LnkdDisk(), 3)},
      {"fsync-bound (YMMR)", MakeIidModel(Ymmr(), 3)},
      {"back to SSD", MakeIidModel(LnkdSsd(), 3)},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/adaptive_config.csv");
  csv.WriteHeader({"epoch", "environment", "r", "w", "t_visibility_ms",
                   "objective_ms", "feasible", "switched"});

  TextTable table({"epoch", "environment", "config", "t@99.9% (ms)",
                   "objective (ms)", "SLA met", "switched"});
  for (size_t e = 0; e < epochs.size(); ++e) {
    controller.Update(epochs[e].model);
    const auto& decision = controller.history().back();
    table.AddRow({std::to_string(e + 1), epochs[e].name,
                  decision.chosen.ToString(),
                  FormatDouble(decision.t_visibility_ms, 2),
                  FormatDouble(decision.objective_ms, 2),
                  decision.feasible ? "yes" : "NO",
                  decision.switched ? "yes" : "-"});
    csv.WriteRow(epochs[e].name,
                 {static_cast<double>(e + 1),
                  static_cast<double>(decision.chosen.r),
                  static_cast<double>(decision.chosen.w),
                  decision.t_visibility_ms, decision.objective_ms,
                  decision.feasible ? 1.0 : 0.0,
                  decision.switched ? 1.0 : 0.0});
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: on SSDs R=W=1 meets the SLA at minimal latency; the "
         "disk migration blows the 10 ms window and the controller buys "
         "consistency with a bigger read quorum; under YMMR's fsync tails "
         "it must go stricter still; returning to SSDs it relaxes again "
         "(only past the hysteresis margin, so no flapping on noise).\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
