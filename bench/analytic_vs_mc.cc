// A8 — Analytic backend cross-validation: the CI gate behind the
// PredictorBackend::kAnalytic contract (DESIGN.md §12). Section 4.1 calls
// the exact analytic formulation "daunting" because commit time,
// propagation and response ordering are dependent order statistics; the
// grid solver keeps the exactly-computable parts (latency marginals are
// pure order statistics; the ps ack-er factor and the non-ack-er
// conditioning of Eq. 1) and approximates only the residual coupling.
// This harness enforces that bar against Monte Carlo ground truth over
// the paper's IID production scenarios and every configuration shape the
// controller sweeps, measures the per-point cost ratio, and demonstrates
// the kAuto fallback on the one scenario (WAN) where the assumptions
// genuinely break.
//
// Usage: analytic_vs_mc [--trials=quick|full]
//   quick — CI smoke mode: lighter Monte Carlo budgets, accuracy gates
//           only (per-point timing is noisy on shared runners).
//   full  — 500k-trial ground truth plus the >= 100x per-point speedup
//           gate (default).
//
// Exits nonzero if any gate fails:
//   latency quantiles (read+write p50/p99/p99.9)  within 2% + 0.15 ms, plus
//                                                 the MC estimate's own 3σ
//                                                 quantile CI (the ground
//                                                 truth is noisy at p99.9
//                                                 under heavy tails)
//   t-visibility P(consistent | t)                within 0.05 everywhere,
//                                                 t in {0, 1, 5, 20, 60}
//   analytic per-point cost (full mode)           >= 100x cheaper than MC
//   kAuto on WAN                                  resolves to Monte Carlo

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/analytic.h"
#include "core/latency.h"
#include "core/predictor.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Gates {
  int failures = 0;

  void Check(bool ok, const std::string& what) {
    if (ok) return;
    std::cout << "GATE FAIL: " << what << "\n";
    ++failures;
  }
};

// 3σ nonparametric CI half-width of a Monte Carlo quantile estimate (the
// order-statistic bracket at ranks n*p ± 3*sqrt(n*p*(1-p))). Added to the
// latency gates: near heavy tails the MC p99.9 itself wanders by more than
// the deterministic tolerance, and the gate should bind on the analytic
// solver's error, not on the ground truth's sampling noise.
double QuantileCiHalfWidth(const LatencyProfile& profile, double pct) {
  const auto& sorted = profile.sorted();
  const double n = static_cast<double>(sorted.size());
  const double p = pct / 100.0;
  const double sd = std::sqrt(n * p * (1.0 - p));
  const auto rank = [&](double x) {
    return static_cast<size_t>(std::clamp(x, 0.0, n - 1.0));
  };
  const size_t lo = rank(std::floor(n * p - 3.0 * sd));
  const size_t hi = rank(std::ceil(n * p + 3.0 * sd));
  return 0.5 * (sorted[hi] - sorted[lo]);
}

void Run(bool full) {
  std::cout << "=== Analytic (grid) backend vs Monte Carlo — CI gate ===\n"
            << "mode: " << (full ? "full" : "quick") << "\n\n";
  const int mc_trials = full ? 500000 : 60000;
  const std::vector<QuorumConfig> configs = {
      {3, 1, 1}, {3, 2, 1}, {3, 1, 2}, {5, 2, 1}, {5, 1, 2}};
  const std::vector<double> offsets = {0.0, 1.0, 5.0, 20.0, 60.0};
  const std::vector<double> pcts = {50.0, 99.0, 99.9};
  const double kLatRelTol = 0.02, kLatAbsTolMs = 0.15;
  const double kConsistencyTol = 0.05;

  Gates gates;
  CsvWriter csv(std::string(bench::kResultsDir) + "/analytic_vs_mc.csv");
  csv.WriteHeader({"scenario", "n", "r", "w", "metric", "t_or_pct",
                   "analytic", "monte_carlo"});

  std::cout << "(1) Cross-validation sweep — latency quantiles and "
               "t-visibility per (scenario, N, R, W):\n\n";
  double total_mc_ms = 0.0, total_analytic_ms = 0.0;
  int points = 0;
  double worst_tvis_err = 0.0, worst_lat_err = 0.0;
  TextTable sweep({"scenario", "config", "max |dP(t)|", "max lat err (ms)",
                   "MC (ms/pt)", "analytic (ms/pt)"});
  for (const auto& fit : AllIidProductionFits()) {
    // One shared grid per scenario: the FFT convolutions are amortized
    // across every quorum shape, exactly as the controller amortizes them
    // across a control epoch.
    auto scenario = MakeAnalyticScenario(fit, AnalyticGridOptions{});
    gates.Check(scenario.ok(), fit.name + ": MakeAnalyticScenario failed");
    if (!scenario.ok()) continue;
    for (const QuorumConfig& config : configs) {
      const auto model = MakeIidModel(fit, config.n);

      const auto mc_start = Clock::now();
      const auto mc_lat = EstimateLatencies(config, model, mc_trials,
                                            /*seed=*/801,
                                            bench::BenchExecution());
      const auto mc_tvis = EstimateTVisibility(config, model, mc_trials,
                                               /*seed=*/802,
                                               bench::BenchExecution());
      const double mc_ms = MsSince(mc_start);

      const auto an_start = Clock::now();
      const AnalyticWars analytic(config, scenario.value());
      double lat_err = 0.0, tvis_err = 0.0;
      for (double pct : pcts) {
        const double aw = analytic.WriteLatencyQuantile(pct / 100.0);
        const double ar = analytic.ReadLatencyQuantile(pct / 100.0);
        const double mw = mc_lat.writes.Percentile(pct);
        const double mr = mc_lat.reads.Percentile(pct);
        csv.WriteRow(fit.name, {static_cast<double>(config.n),
                                static_cast<double>(config.r),
                                static_cast<double>(config.w), 0.0, pct, aw,
                                mw});
        csv.WriteRow(fit.name, {static_cast<double>(config.n),
                                static_cast<double>(config.r),
                                static_cast<double>(config.w), 1.0, pct, ar,
                                mr});
        const double w_tol = kLatRelTol * mw + kLatAbsTolMs +
                             QuantileCiHalfWidth(mc_lat.writes, pct);
        const double r_tol = kLatRelTol * mr + kLatAbsTolMs +
                             QuantileCiHalfWidth(mc_lat.reads, pct);
        gates.Check(std::abs(aw - mw) <= w_tol,
                    fit.name + " " + config.ToString() + " write p" +
                        FormatDouble(pct, 1) + " analytic " +
                        FormatDouble(aw, 3) + " vs MC " +
                        FormatDouble(mw, 3) + " (tol " +
                        FormatDouble(w_tol, 3) + ")");
        gates.Check(std::abs(ar - mr) <= r_tol,
                    fit.name + " " + config.ToString() + " read p" +
                        FormatDouble(pct, 1) + " analytic " +
                        FormatDouble(ar, 3) + " vs MC " +
                        FormatDouble(mr, 3) + " (tol " +
                        FormatDouble(r_tol, 3) + ")");
        lat_err = std::max({lat_err, std::abs(aw - mw), std::abs(ar - mr)});
      }
      for (double t : offsets) {
        const double ap = analytic.ApproxProbConsistent(t);
        const double mp = mc_tvis.ProbConsistent(t);
        csv.WriteRow(fit.name, {static_cast<double>(config.n),
                                static_cast<double>(config.r),
                                static_cast<double>(config.w), 2.0, t, ap,
                                mp});
        tvis_err = std::max(tvis_err, std::abs(ap - mp));
        gates.Check(std::abs(ap - mp) <= kConsistencyTol,
                    fit.name + " " + config.ToString() + " P(consistent|" +
                        FormatDouble(t, 0) + ") analytic " +
                        FormatDouble(ap, 4) + " vs MC " +
                        FormatDouble(mp, 4));
      }
      // Charge the analytic arm the full per-quorum cost MC paid for: the
      // order-statistic build plus the same latency/t-visibility queries,
      // plus the inconsistency-window inversion.
      analytic.ApproxTimeForConsistency(0.999);
      const double an_ms = MsSince(an_start);

      total_mc_ms += mc_ms;
      total_analytic_ms += an_ms;
      ++points;
      worst_tvis_err = std::max(worst_tvis_err, tvis_err);
      worst_lat_err = std::max(worst_lat_err, lat_err);
      sweep.AddRow({fit.name, config.ToString(), FormatDouble(tvis_err, 4),
                    FormatDouble(lat_err, 3), FormatDouble(mc_ms, 1),
                    FormatDouble(an_ms, 3)});
    }
  }
  sweep.Print(std::cout);
  std::cout << "\nworst t-visibility error " << FormatDouble(worst_tvis_err, 4)
            << " (gate " << FormatDouble(kConsistencyTol, 2)
            << "); worst latency error " << FormatDouble(worst_lat_err, 3)
            << " ms (gate 2% + 0.15 ms)\n";

  const double per_point_mc = total_mc_ms / points;
  const double per_point_analytic = total_analytic_ms / points;
  const double speedup =
      per_point_analytic > 0.0 ? per_point_mc / per_point_analytic : 0.0;
  std::cout << "per-point cost: Monte Carlo " << FormatDouble(per_point_mc, 2)
            << " ms vs analytic " << FormatDouble(per_point_analytic, 3)
            << " ms  (" << FormatDouble(speedup, 0) << "x)\n";
  csv.WriteRow("summary",
               {0, 0, 0, 3.0, 0.0, per_point_analytic, per_point_mc});
  if (full) {
    gates.Check(speedup >= 100.0,
                "analytic per-point cost not >= 100x cheaper than MC (" +
                    FormatDouble(speedup, 1) + "x)");
  } else {
    std::cout << "(quick mode: timing gate skipped — accuracy gates only)\n";
  }

  std::cout << "\n(2) kAuto guard on WAN — the per-replica locality model "
               "breaks the IID-legs premise, so kAuto must fall back:\n\n";
  PredictorOptions wan_options;
  wan_options.backend = PredictorBackend::kAuto;
  wan_options.trials = full ? 100000 : 20000;
  wan_options.exec = bench::BenchExecution();
  auto wan = PbsPredictor::Create({5, 2, 2}, MakeWanModel(WanLocalBase(), 5),
                                  wan_options);
  gates.Check(wan.ok(), "kAuto WAN predictor failed to build");
  if (wan.ok()) {
    std::cout << "  backend: " << PredictorBackendName(wan.value().backend())
              << "\n"
              << "  note:    " << wan.value().backend_note() << "\n";
    gates.Check(wan.value().backend() == PredictorBackend::kMonteCarlo,
                "kAuto on WAN did not resolve to Monte Carlo");
    gates.Check(!wan.value().backend_note().empty(),
                "kAuto WAN fallback produced no note");
  }

  std::cout << "\nReading: latency marginals agree because they are pure "
               "order statistics (no approximation); t-visibility carries "
               "the exact ps ack-er factor plus non-ack-er conditioning, "
               "leaving only the cross-probe independence and first-R "
               "selection-bias assumptions — a residual of a couple points "
               "of probability at t = 0, vanishing with t. At that accuracy "
               "the grid solver answers a design point in about a "
               "millisecond where the 500k-trial Monte Carlo takes hundreds, "
               "which is why kAnalytic exists; kAuto keeps the Monte Carlo "
               "safety net for models (WAN) that break the premise.\n";

  if (gates.failures != 0) {
    std::cout << "\n" << gates.failures << " gate(s) failed\n";
    std::exit(1);
  }
  std::cout << "\nall cross-validation gates passed\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool full = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials=quick") {
      full = false;
    } else if (arg == "--trials=full") {
      full = true;
    } else {
      std::cerr << "usage: analytic_vs_mc [--trials=quick|full]\n";
      return 2;
    }
  }
  Run(full);
  return 0;
}
