// A8 — Analytic (numerical) WARS vs Monte Carlo. Section 4.1 calls the
// exact analytic formulation "daunting" because commit time, propagation
// and response ordering are dependent order statistics. This harness
// quantifies exactly how much those dependencies matter: the grid solver's
// latency marginals are exact (pure order statistics) while its
// t-visibility uses two independence assumptions; we measure both against
// the Monte Carlo ground truth.

#include <iostream>

#include "bench/bench_util.h"
#include "core/analytic.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Analytic (grid) WARS solver vs Monte Carlo ===\n\n";
  const int mc_trials = 500000;

  CsvWriter csv(std::string(bench::kResultsDir) + "/analytic_vs_mc.csv");
  csv.WriteHeader({"scenario", "r", "w", "metric", "analytic", "monte_carlo"});

  std::cout << "(1) Operation latency quantiles — exact up to grid "
               "resolution:\n\n";
  // Cross-validation tolerance, tightened after the convolution mean-bias
  // fix (the grid marginals no longer sit step/2 low per convolved leg):
  // analytic and Monte Carlo quantiles must agree to 2% + 0.15 ms.
  int tolerance_failures = 0;
  TextTable lat({"scenario", "config", "metric", "analytic (ms)",
                 "Monte Carlo (ms)"});
  for (const auto& fit : AllIidProductionFits()) {
    const QuorumConfig config{3, 1, 1};
    const AnalyticWars analytic(config, fit, 4000.0, 40000);
    const auto mc = EstimateLatencies(config, MakeIidModel(fit, 3),
                                      mc_trials, /*seed=*/801,
                                      bench::BenchExecution());
    for (double pct : {50.0, 99.0, 99.9}) {
      const double grid = analytic.WriteLatencyQuantile(pct / 100.0);
      const double truth = mc.writes.Percentile(pct);
      lat.AddRow({fit.name, "R=1 W=1",
                  "write p" + FormatDouble(pct, 1),
                  FormatDouble(grid, 3), FormatDouble(truth, 3)});
      csv.WriteRow(fit.name, {1, 1, pct, grid, truth});
      if (std::abs(grid - truth) > 0.02 * truth + 0.15) {
        std::cout << "CHECK FAIL: " << fit.name << " write p"
                  << FormatDouble(pct, 1) << " analytic " << grid << " vs MC "
                  << truth << " (tolerance 2% + 0.15 ms)\n";
        ++tolerance_failures;
      }
    }
  }
  lat.Print(std::cout);

  std::cout << "\n(2) t-visibility — independence approximation error by "
               "configuration (LNKD-DISK):\n\n";
  const auto dists = LnkdDisk();
  TextTable tvis({"config", "t (ms)", "analytic approx", "Monte Carlo",
                  "abs error"});
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}, QuorumConfig{3, 1, 2},
        QuorumConfig{5, 1, 1}, QuorumConfig{10, 1, 1}}) {
    const AnalyticWars analytic(config, dists, 2000.0, 20000);
    const auto mc = EstimateTVisibility(
        config, MakeIidModel(dists, config.n), mc_trials, /*seed=*/802,
        bench::BenchExecution());
    for (double t : {0.0, 5.0, 20.0, 60.0}) {
      const double approx = analytic.ApproxProbConsistent(t);
      const double truth = mc.ProbConsistent(t);
      tvis.AddRow({config.ToString(), FormatDouble(t, 0),
                   FormatDouble(approx, 4), FormatDouble(truth, 4),
                   FormatDouble(std::abs(approx - truth), 4)});
      csv.WriteRow(dists.name + "-tvis",
                   {static_cast<double>(config.r),
                    static_cast<double>(config.w), t, approx, truth});
    }
  }
  tvis.Print(std::cout);

  std::cout
      << "\nReading: latency marginals agree because they are pure order "
         "statistics (no approximation); the t-visibility approximation "
         "is tightest where the commit time decouples from probe legs "
         "(larger N, larger t) and loosest immediately after commit at "
         "small N — a quantitative footnote to the paper's observation "
         "that the exact analytics are hard, and a reason Monte Carlo is "
         "the right default (it is also faster at this accuracy).\n";

  if (tolerance_failures != 0) {
    std::cout << tolerance_failures
              << " latency cross-validation check(s) failed\n";
    std::exit(1);
  }
  std::cout << "\nall latency quantiles within 2% + 0.15 ms of Monte Carlo\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
