// A3 — Section 6 "Latency/Staleness SLAs": automatic replication
// configuration. For a sweep of staleness SLAs (max t at 99.9% consistency)
// prints the latency-optimal (N, R, W) the optimizer picks and the
// resulting operation latencies — the frontier an operator would expose to
// applications.

#include <iostream>

#include "bench/bench_util.h"
#include "core/sla.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== SLA frontier: cheapest configuration meeting each "
               "staleness bound (LNKD-DISK, N in [2,5], 99.9% target) "
               "===\n\n";

  SlaOptimizer optimizer(
      [](int n) { return MakeIidModel(LnkdDisk(), n); },
      /*trials_per_config=*/60000, /*seed=*/4004);

  const std::vector<double> bounds = {0.0, 1.0, 5.0, 15.0, 50.0, 1e9};

  CsvWriter csv(std::string(bench::kResultsDir) + "/sla_frontier.csv");
  csv.WriteHeader({"max_t_ms", "n", "r", "w", "t_visibility_ms",
                   "read_99.9_ms", "write_99.9_ms", "objective_ms"});

  TextTable table({"staleness SLA (ms @ 99.9%)", "chosen config",
                   "achieved t (ms)", "Lr 99.9 (ms)", "Lw 99.9 (ms)",
                   "objective (ms)"});
  for (double bound : bounds) {
    SlaConstraints constraints;
    constraints.min_n = 2;
    constraints.max_n = 5;
    constraints.min_write_quorum = 1;
    constraints.consistency_probability = 0.999;
    constraints.max_t_visibility_ms = bound;
    const auto best = optimizer.Optimize(constraints, {});
    if (!best.ok()) {
      table.AddRow({FormatDouble(bound, 1), "(unsatisfiable)", "-", "-",
                    "-", "-"});
      continue;
    }
    const SlaCandidate& c = best.value();
    table.AddRow({bound >= 1e9 ? "unbounded" : FormatDouble(bound, 1),
                  c.config.ToString(), FormatDouble(c.t_visibility_ms, 2),
                  FormatDouble(c.read_latency_ms, 2),
                  FormatDouble(c.write_latency_ms, 2),
                  FormatDouble(c.objective, 2)});
    csv.WriteRow("", {bound, static_cast<double>(c.config.n),
                      static_cast<double>(c.config.r),
                      static_cast<double>(c.config.w), c.t_visibility_ms,
                      c.read_latency_ms, c.write_latency_ms, c.objective});
  }
  table.Print(std::cout);

  std::cout << "\n=== Durability-constrained variant (W >= 2) ===\n\n";
  TextTable durable({"staleness SLA (ms @ 99.9%)", "chosen config",
                     "achieved t (ms)", "objective (ms)"});
  for (double bound : {0.0, 5.0, 1e9}) {
    SlaConstraints constraints;
    constraints.min_n = 2;
    constraints.max_n = 5;
    constraints.min_write_quorum = 2;
    constraints.consistency_probability = 0.999;
    constraints.max_t_visibility_ms = bound;
    const auto best = optimizer.Optimize(constraints, {});
    if (!best.ok()) {
      durable.AddRow(
          {FormatDouble(bound, 1), "(unsatisfiable)", "-", "-"});
      continue;
    }
    const SlaCandidate& c = best.value();
    durable.AddRow({bound >= 1e9 ? "unbounded" : FormatDouble(bound, 1),
                    c.config.ToString(), FormatDouble(c.t_visibility_ms, 2),
                    FormatDouble(c.objective, 2)});
  }
  durable.Print(std::cout);
  std::cout << "\nReading: loose SLAs buy R=W=1 latency; a 0 ms window "
               "forces overlapping quorums; the durability floor trades "
               "write latency for resilience independent of staleness — "
               "the disentanglement Section 6 argues for.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
