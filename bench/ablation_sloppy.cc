// A9 — Ablation: sloppy quorums + hinted handoff under fail-stop churn.
// Dynamo's answer to "writes must not fail while replicas bounce": a write
// coordinator substitutes suspected home replicas with the next healthy
// nodes on the ring, which park the write as a hint and forward it after
// recovery. Measures write availability and t-visibility with the
// mechanism off/on across crash rates, on a 5-node ring with N=3, W=2.

#include <iostream>

#include "bench/bench_util.h"
#include "dist/primitives.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Sloppy quorums + hinted handoff vs strict membership "
               "under churn ===\n"
               "(5 storage nodes, N=3 R=1 W=2, LNKD-SSD legs, MTTR 5 s, "
               "200 ms op timeout)\n\n";

  const std::vector<double> offsets = {0.0, 5.0, 25.0};
  const double spacing = 100.0;
  const int writes = 12000;

  CsvWriter csv(std::string(bench::kResultsDir) + "/ablation_sloppy.csv");
  csv.WriteHeader({"variant", "mtbf_s", "failed_writes", "failed_reads",
                   "substitutions", "hints_delivered", "p_consistent_t0"});

  TextTable table({"variant", "MTBF", "failed writes", "failed reads",
                   "substitutions", "hints stored/delivered",
                   "P(consistent, t=0)", "P(consistent, 25ms)"});
  for (double mtbf_s : {60.0, 15.0}) {
    for (bool sloppy : {false, true}) {
      kvs::StalenessExperimentOptions options;
      options.cluster.quorum = {3, 1, 2};
      options.cluster.num_storage_nodes = 5;
      options.cluster.legs = LnkdSsd();
      options.cluster.request_timeout_ms = 200.0;
      options.cluster.sloppy_quorums = sloppy;
      options.cluster.heartbeat_interval_ms = 50.0;
      options.cluster.suspect_timeout_ms = 150.0;
      options.cluster.hint_delivery_interval_ms = 100.0;
      options.writes = writes;
      options.write_spacing_ms = spacing;
      options.read_offsets_ms = offsets;
      options.seed = 909;
      const auto failures = kvs::FailureSchedule::RandomCrashRecover(
          5, writes * spacing, mtbf_s * 1000.0, /*mttr_ms=*/5000.0,
          /*seed=*/910);
      const auto result =
          kvs::RunStalenessExperimentWithFailures(options, failures);

      const std::string name =
          std::string(sloppy ? "sloppy+handoff" : "strict membership");
      table.AddRow(
          {name, FormatDouble(mtbf_s, 0) + "s",
           std::to_string(result.final_metrics.writes_failed),
           std::to_string(result.final_metrics.reads_failed),
           std::to_string(result.final_metrics.sloppy_substitutions),
           std::to_string(result.final_metrics.hints_stored) + "/" +
               std::to_string(result.final_metrics.hints_delivered),
           FormatDouble(result.t_visibility[0].ProbConsistent(), 4),
           FormatDouble(result.t_visibility[2].ProbConsistent(), 4)});
      csv.WriteRow(name,
                   {mtbf_s,
                    static_cast<double>(result.final_metrics.writes_failed),
                    static_cast<double>(result.final_metrics.reads_failed),
                    static_cast<double>(
                        result.final_metrics.sloppy_substitutions),
                    static_cast<double>(
                        result.final_metrics.hints_delivered),
                    result.t_visibility[0].ProbConsistent()});
    }
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: with strict membership, every crash window in which a "
         "home replica holds one of the W=2 required acks turns writes "
         "into timeouts; sloppy quorums keep the write path available "
         "(failed writes drop to ~0) at a small staleness cost while "
         "hints are parked off the read path, repaid when handoff "
         "delivers them after recovery.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
