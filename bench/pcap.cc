// PCAP harness: closed-loop consistency control vs every static quorum
// under gray failures (the "probabilistic consistency/availability/
// partition" tuning loop of kvs/controller.h).
//
// The declared SLA is "fraction p of reads fresher than t ms, at read p99
// <= L ms". Two chaos scenarios stress the staleness/latency trade-off in
// opposite directions: a replica serving everything 20x slow for the whole
// run, and a replica crash/recover-flapping. Against each scenario the
// harness runs (a) the full static (R, W) lattice at N=3 with the knobs the
// controller starts from (hedging off, single attempt) and (b) the same
// workload with the ConsistencyController active. All cells share the same
// per-trial seed stream (RunControllerTrials both ways), so the controller
// is the only variable.
//
// Headline check: in both scenarios the controller meets BOTH bounds while
// every static lattice point violates at least one — low-R statics miss the
// freshness target, high-R statics blow the latency budget when the slow or
// flapping replica lands in the read quorum. Freshness is measured the same
// way for every cell: the empirical probe P(consistent | t = sla.t) of the
// Section 5.2 workload; latency is the pooled client read p99.
//
// Self-contained harness in the chaos.cc mold: paper-style table on stdout,
// machine-readable bench_results/BENCH_pcap.{json,csv}, nonzero exit when a
// check fails.
//
// Usage: pcap [--trials=small|full] [--out-dir=DIR] [--threads=N]

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/adaptive.h"
#include "dist/production.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "obs/dashboard.h"
#include "obs/monitor.h"
#include "util/parallel.h"

namespace pbs {
namespace {

// The declared SLA every cell is judged against. Calibrated so the chaos
// scenarios genuinely pinch: a fresh-enough static needs R high enough that
// the degraded replica's tail leaks into p99, and a fast-enough static
// reads too few replicas to stay fresh (LNKD-DISK write legs propagate
// slowly, so R=1 reads genuinely race replication at t=10ms). A read that
// fails outright is neither fresh nor fast: each cell also gets a failure
// budget of (1 - p) of its reads.
constexpr double kSlaFreshProbability = 0.99;
constexpr double kSlaStalenessBoundMs = 10.0;
constexpr double kSlaReadP99Ms = 8.0;

struct Scenario {
  std::string name;
  std::function<kvs::FaultSchedule(double horizon, uint64_t seed)> faults;
};

struct Cell {
  std::string scenario;
  std::string config;  // "R=1 W=2" or "controller"
  bool controller = false;
  double fresh_at_t = 0.0;  // probe P(consistent | t = kSlaStalenessBoundMs)
  double read_p50 = 0.0;
  double read_p99 = 0.0;
  int64_t reads = 0;
  int64_t reads_failed = 0;
  int64_t decisions = 0;
  int64_t steps = 0;
  int64_t rollbacks = 0;
  uint64_t digest = 0;
  std::string final_config;
  bool fresh_ok = false;
  bool latency_ok = false;
  bool avail_ok = false;

  bool MeetsSla() const { return fresh_ok && latency_ok && avail_ok; }
  const char* Verdict() const {
    if (MeetsSla()) return "met";
    if (!fresh_ok) return "fresh";
    if (!latency_ok) return "p99";
    return "avail";
  }
};

kvs::ControllerTrialOptions BaseOptions(const Scenario& scenario, int trials,
                                        int writes) {
  kvs::ControllerTrialOptions options;
  options.experiment.cluster.quorum = {3, 1, 2};
  options.experiment.cluster.legs = LnkdDisk();
  options.experiment.cluster.request_timeout_ms = 200.0;
  // kQuorumOnly makes R the real latency/staleness dial: reads contact only
  // an R-subset, so a degraded replica in the subset stalls the read (no
  // free extra responses) and hedges have an untried replica to recruit.
  options.experiment.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.experiment.writes = writes;
  options.experiment.write_spacing_ms = 50.0;
  options.experiment.read_offsets_ms = {1.0, kSlaStalenessBoundMs, 50.0};
  options.trials = trials;
  options.seed = 20240;  // shared by every cell: paired comparison
  options.faults = scenario.faults;
  return options;
}

Cell RunCell(const Scenario& scenario, kvs::ControllerTrialOptions options,
             const std::string& label, bool controller,
             const PbsExecutionOptions& exec) {
  const kvs::ControllerCampaignResult result =
      kvs::RunControllerTrials(options, exec);
  Cell cell;
  cell.scenario = scenario.name;
  cell.config = label;
  cell.controller = controller;
  const kvs::ChaosSummary& pooled = result.pooled;
  for (size_t i = 0; i < pooled.probe_offsets_ms.size(); ++i) {
    if (pooled.probe_offsets_ms[i] == kSlaStalenessBoundMs) {
      cell.fresh_at_t = pooled.ProbConsistentAtIndex(i);
    }
  }
  cell.read_p50 = pooled.read_p50;
  cell.read_p99 = pooled.read_p99;
  cell.reads = pooled.reads_started;
  cell.reads_failed = pooled.reads_failed;
  cell.digest = result.pooled_digest;
  for (const kvs::ControllerCampaignSummary& trial : result.trials) {
    cell.decisions += trial.decisions;
    cell.steps += trial.steps;
    cell.rollbacks += trial.rollbacks;
  }
  if (controller && !result.trials.empty()) {
    const kvs::ControllerCampaignSummary& last = result.trials.back();
    char buffer[96];
    std::snprintf(buffer, sizeof buffer,
                  "R=[%d..%d] mix=%.2f W=%d hedge=%s retries=%d",
                  last.final_r_lo, last.final_r_hi, last.final_mix,
                  last.final_w, last.final_hedge ? "on" : "off",
                  last.final_retry_attempts);
    cell.final_config = buffer;
  }
  cell.fresh_ok = cell.fresh_at_t >= kSlaFreshProbability;
  cell.latency_ok = cell.read_p99 <= kSlaReadP99Ms;
  cell.avail_ok =
      static_cast<double>(cell.reads_failed) <=
      (1.0 - kSlaFreshProbability) * static_cast<double>(cell.reads);
  return cell;
}

void WriteJson(const std::filesystem::path& path, const std::string& mode,
               const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"pcap\",\n  \"mode\": \"%s\",\n",
               mode.c_str());
  std::fprintf(f,
               "  \"sla\": {\"fresh_probability\": %.4f, "
               "\"staleness_bound_ms\": %.1f, \"read_p99_ms\": %.1f},\n",
               kSlaFreshProbability, kSlaStalenessBoundMs, kSlaReadP99Ms);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"config\": \"%s\", "
        "\"controller\": %s, \"fresh_at_t\": %.6f, "
        "\"read_p50_ms\": %.6f, \"read_p99_ms\": %.6f, "
        "\"reads\": %" PRId64 ", \"reads_failed\": %" PRId64 ", "
        "\"decisions\": %" PRId64 ", \"steps\": %" PRId64 ", "
        "\"rollbacks\": %" PRId64 ", \"decision_digest\": \"%016" PRIx64
        "\", \"final_config\": \"%s\", \"fresh_ok\": %s, "
        "\"latency_ok\": %s, \"avail_ok\": %s, \"meets_sla\": %s}%s\n",
        c.scenario.c_str(), c.config.c_str(), c.controller ? "true" : "false",
        c.fresh_at_t, c.read_p50, c.read_p99, c.reads, c.reads_failed,
        c.decisions, c.steps, c.rollbacks, c.digest, c.final_config.c_str(),
        c.fresh_ok ? "true" : "false", c.latency_ok ? "true" : "false",
        c.avail_ok ? "true" : "false", c.MeetsSla() ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void WriteCsv(const std::filesystem::path& path,
              const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f,
               "scenario,config,controller,fresh_at_t,read_p50_ms,"
               "read_p99_ms,reads,reads_failed,decisions,steps,rollbacks,"
               "fresh_ok,latency_ok,avail_ok,meets_sla\n");
  for (const Cell& c : cells) {
    std::fprintf(f,
                 "%s,%s,%d,%.6f,%.6f,%.6f,%" PRId64 ",%" PRId64 ",%" PRId64
                 ",%" PRId64 ",%" PRId64 ",%d,%d,%d,%d\n",
                 c.scenario.c_str(), c.config.c_str(), c.controller ? 1 : 0,
                 c.fresh_at_t, c.read_p50, c.read_p99, c.reads,
                 c.reads_failed, c.decisions, c.steps, c.rollbacks,
                 c.fresh_ok ? 1 : 0, c.latency_ok ? 1 : 0, c.avail_ok ? 1 : 0,
                 c.MeetsSla() ? 1 : 0);
  }
  std::fclose(f);
}

bool WriteText(const std::filesystem::path& path, const std::string& text) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

// The live-monitor acceptance (ISSUE 10): a replica turns 10x slow mid-run
// and the drift monitor must raise prediction_drift within three windows
// of the onset, while the fault-free control run raises nothing. The
// faulted run's telemetry JSONL and rendered dashboard are written next to
// the pcap tables so CI uploads a browsable artifact of the detection.
int RunDriftMonitorCheck(const std::filesystem::path& dir) {
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  options.cluster.legs = LnkdSsd();
  // kQuorumOnly again: under kAllN an R=1 read keeps the fastest of N
  // responses and the slow replica never surfaces in the measurements.
  options.cluster.read_fanout = ReadFanout::kQuorumOnly;
  options.cluster.request_timeout_ms = 200.0;
  options.cluster.sla.fresh_probability = 0.99;
  options.cluster.sla.staleness_bound_ms = 10.0;
  options.cluster.sla.read_p99_ms = 5.0;
  options.cluster.obs.telemetry_window_ms = 500.0;
  options.cluster.obs.monitor_enabled = true;
  options.writes = 400;
  options.write_spacing_ms = 50.0;
  options.seed = 7;

  constexpr double kFaultStartMs = 10000.0;
  const int64_t fault_window = static_cast<int64_t>(
      kFaultStartMs / options.cluster.obs.telemetry_window_ms);
  kvs::FaultSchedule faults;
  faults.AddSlowNode(kFaultStartMs, /*end=*/25000.0, /*node=*/2,
                     /*delay_mult=*/10.0);
  const kvs::StalenessExperimentResult faulted =
      kvs::RunStalenessExperimentWithFaults(options, faults);
  const kvs::StalenessExperimentResult control =
      kvs::RunStalenessExperiment(options);

  int64_t first_drift = -1;
  for (const obs::Alert& alert : faulted.monitor_alerts) {
    if (alert.kind == obs::AlertKind::kPredictionDrift) {
      first_drift = alert.window_id;
      break;
    }
  }
  std::printf(
      "drift monitor: fault at window %" PRId64 ", first prediction_drift "
      "at %" PRId64 " (%zu alert(s)); control run %zu alert(s)\n",
      fault_window, first_drift, faulted.monitor_alerts.size(),
      control.monitor_alerts.size());

  int failures = 0;
  if (first_drift < fault_window || first_drift > fault_window + 3) {
    std::printf("CHECK FAIL: prediction_drift expected within 3 windows of "
                "the fault (window %" PRId64 "), got %" PRId64 "\n",
                fault_window, first_drift);
    ++failures;
  }
  if (!control.monitor_alerts.empty()) {
    std::printf("CHECK FAIL: fault-free control run raised %zu alert(s); "
                "expected none\n",
                control.monitor_alerts.size());
    ++failures;
  }
  if (!WriteText(dir / "pcap_telemetry.jsonl", faulted.telemetry_jsonl) ||
      !WriteText(dir / "pcap_dashboard.html",
                 obs::RenderDashboardHtml(
                     faulted.telemetry_jsonl,
                     "pcap drift monitor — 10x slow replica at t=10s"))) {
    ++failures;
  }
  return failures;
}

int Main(int argc, char** argv) {
  bool small = false;
  std::string out_dir = "bench_results";
  PbsExecutionOptions exec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials=small") {
      small = true;
    } else if (arg == "--trials=full") {
      small = false;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      exec.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else {
      std::fprintf(stderr,
                   "usage: pcap [--trials=small|full] [--out-dir=DIR] "
                   "[--threads=N]\n");
      return 2;
    }
  }
  const int trials = small ? 2 : 4;
  const int writes = small ? 300 : 1200;

  using kvs::FaultSchedule;
  std::vector<Scenario> scenarios;
  scenarios.push_back({"slow_replica_20x",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddSlowNode(0.0, horizon, /*node=*/0,
                                       /*delay_mult=*/20.0);
                         return s;
                       }});
  scenarios.push_back({"flapping_replica",
                       [](double horizon, uint64_t) {
                         FaultSchedule s;
                         s.AddFlappingNode(0.0, horizon, /*node=*/0,
                                           /*up_ms=*/300.0,
                                           /*down_ms=*/200.0);
                         return s;
                       }});

  std::printf(
      "pcap (%s mode): %d trials x %d writes per cell, SLA "
      "p=%.2f t=%.0fms p99<=%.0fms\n",
      small ? "small" : "full", trials, writes, kSlaFreshProbability,
      kSlaStalenessBoundMs, kSlaReadP99Ms);
  std::printf("%-18s %-12s %10s %10s %8s %6s %5s  %s\n", "scenario", "config",
              "fresh@t", "p99(ms)", "steps", "rollbk", "SLA",
              "controller final");

  SlaTarget sla;
  sla.fresh_probability = kSlaFreshProbability;
  sla.staleness_bound_ms = kSlaStalenessBoundMs;
  sla.read_p99_ms = kSlaReadP99Ms;

  std::vector<Cell> cells;
  for (const Scenario& scenario : scenarios) {
    // The static (R, W) lattice at N=3, knobs pinned to the controller's
    // starting point (hedging off, single attempt).
    for (int r = 1; r <= 3; ++r) {
      for (int w = 1; w <= 3; ++w) {
        kvs::ControllerTrialOptions options =
            BaseOptions(scenario, trials, writes);
        options.experiment.cluster.quorum = {3, r, w};
        char label[16];
        std::snprintf(label, sizeof label, "R=%d W=%d", r, w);
        cells.push_back(RunCell(scenario, options, label,
                                /*controller=*/false, exec));
        const Cell& c = cells.back();
        std::printf("%-18s %-12s %10.4f %10.3f %8" PRId64 " %6" PRId64
                    " %5s\n",
                    c.scenario.c_str(), c.config.c_str(), c.fresh_at_t,
                    c.read_p99, c.steps, c.rollbacks, c.Verdict());
        std::fflush(stdout);
      }
    }
    // The closed loop, starting from the same lattice.
    kvs::ControllerTrialOptions options =
        BaseOptions(scenario, trials, writes);
    options.experiment.cluster.sla = sla;
    options.experiment.cluster.controller.enabled = true;
    options.experiment.cluster.controller.epoch_ms = 500.0;
    options.experiment.cluster.controller.trials_per_eval = small ? 400 : 800;
    options.experiment.cluster.controller.min_leg_samples = 48;
    cells.push_back(RunCell(scenario, options, "controller",
                            /*controller=*/true, exec));
    const Cell& c = cells.back();
    std::printf("%-18s %-12s %10.4f %10.3f %8" PRId64 " %6" PRId64
                " %5s  %s\n",
                c.scenario.c_str(), c.config.c_str(), c.fresh_at_t,
                c.read_p99, c.steps, c.rollbacks, c.Verdict(),
                c.final_config.c_str());
    std::fflush(stdout);
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::filesystem::path dir(out_dir);
  WriteJson(dir / "BENCH_pcap.json", small ? "small" : "full", cells);
  WriteCsv(dir / "BENCH_pcap.csv", cells);
  std::printf("wrote %s/BENCH_pcap.{json,csv}\n", out_dir.c_str());

  // Acceptance: per scenario, the controller meets both bounds and every
  // static lattice point violates at least one — plus the live drift
  // monitor catches a mid-run degradation (and stays quiet without one).
  int failures = RunDriftMonitorCheck(dir);
  std::printf("wrote %s/pcap_telemetry.jsonl and %s/pcap_dashboard.html\n",
              out_dir.c_str(), out_dir.c_str());
  for (const Scenario& scenario : scenarios) {
    for (const Cell& c : cells) {
      if (c.scenario != scenario.name) continue;
      if (c.controller && !c.MeetsSla()) {
        std::printf("CHECK FAIL: %s controller violates the SLA on %s "
                    "(fresh@t=%.4f want >= %.2f, p99=%.3f want <= %.1f, "
                    "failed %" PRId64 "/%" PRId64 ")\n",
                    c.scenario.c_str(), c.Verdict(), c.fresh_at_t,
                    kSlaFreshProbability, c.read_p99, kSlaReadP99Ms,
                    c.reads_failed, c.reads);
        ++failures;
      }
      if (!c.controller && c.MeetsSla()) {
        std::printf("CHECK FAIL: static %s meets the SLA under %s "
                    "(fresh@t=%.4f, p99=%.3f) — the scenario does not pinch\n",
                    c.config.c_str(), c.scenario.c_str(), c.fresh_at_t,
                    c.read_p99);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("headline: controller meets p=%.2f@t=%.0fms, p99<=%.0fms in "
                "both scenarios; all %d static lattice points violate a "
                "bound\n",
                kSlaFreshProbability, kSlaStalenessBoundMs, kSlaReadP99Ms,
                static_cast<int>(cells.size()) - 2);
    std::printf("all pcap checks passed\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pbs

int main(int argc, char** argv) { return pbs::Main(argc, argv); }
