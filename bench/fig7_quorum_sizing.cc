// E7 — Figure 7: effect of the replication factor N on t-visibility with
// R=W=1, for LNKD-DISK, LNKD-SSD and WAN. Reproduces the paper's
// observation that P(consistent at t=0) drops as N grows, while the time to
// reach a high consistency probability barely moves.

#include <iostream>

#include "bench/bench_util.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Figure 7: t-visibility vs replication factor, R=W=1 "
               "===\n\n";
  const int trials = 400000;
  const std::vector<int> ns = {2, 3, 5, 10};
  const std::vector<double> ts = {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0};

  CsvWriter csv(std::string(bench::kResultsDir) + "/fig7_quorum_sizing.csv");
  csv.WriteHeader({"scenario", "n", "t_ms", "p_consistent"});

  for (const std::string scenario_name :
       {std::string("LNKD-DISK"), std::string("LNKD-SSD"),
        std::string("WAN")}) {
    std::vector<std::string> header = {"N"};
    for (double t : ts) header.push_back("t=" + FormatDouble(t, 0));
    header.push_back("t@99.9%");
    TextTable table(std::move(header));
    for (int n : ns) {
      ReplicaLatencyModelPtr model;
      if (scenario_name == "LNKD-DISK") {
        model = MakeIidModel(LnkdDisk(), n);
      } else if (scenario_name == "LNKD-SSD") {
        model = MakeIidModel(LnkdSsd(), n);
      } else {
        model = MakeWanModel(WanLocalBase(), n);
      }
      const TVisibilityCurve curve =
          EstimateTVisibility({n, 1, 1}, model, trials, /*seed=*/77,
                              bench::BenchExecution());
      std::vector<double> row;
      for (double t : ts) {
        const double p = curve.ProbConsistent(t);
        row.push_back(p);
        csv.WriteRow(scenario_name,
                     {static_cast<double>(n), t, p});
      }
      row.push_back(curve.TimeForConsistency(0.999));
      table.AddRow("N=" + std::to_string(n), row, 4);
    }
    std::cout << scenario_name << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Paper anchors (Section 5.7, LNKD-DISK): P(consistent at "
               "t=0) falls from 57.5% (N=2) to 21.1% (N=10), while the "
               "99.9% t-visibility only moves from ~45.3 ms to ~53.7 ms.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
