// A6 — Section 6 "Multi-key operations": freshness of read-only multi-key
// transactions. Closed-form product rule across key counts plus Monte
// Carlo transaction-level t-visibility, and the largest transaction that
// still meets a freshness target.

#include <iostream>

#include "bench/bench_util.h"
#include "core/multikey.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Multi-key read-only transactions (N=3) ===\n\n";
  const std::vector<int> key_counts = {1, 2, 4, 8, 16, 64};

  std::cout << "(1) Closed form: P(every key within newest k versions) = "
               "(1 - ps^k)^m\n\n";
  CsvWriter csv(std::string(bench::kResultsDir) + "/multikey.csv");
  csv.WriteHeader({"config", "keys", "k", "p_all_fresh"});
  TextTable closed({"config", "k", "m=1", "m=2", "m=4", "m=8", "m=16",
                    "m=64"});
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}, QuorumConfig{3, 2, 2}}) {
    for (int k : {1, 3}) {
      std::vector<double> row;
      for (int m : key_counts) {
        const double p = MultiKeyFreshnessProbability(config, m, k);
        row.push_back(p);
        csv.WriteRow(config.ToString(),
                     {static_cast<double>(m), static_cast<double>(k), p});
      }
      closed.AddRow(config.ToString() + " k=" + std::to_string(k), row, 4);
    }
  }
  closed.Print(std::cout);

  std::cout << "\n(2) Largest transaction meeting a 90% all-within-k target "
               "— staleness tolerance buys transaction width:\n\n";
  TextTable caps({"config", "k=1", "k=3", "k=5", "k=10"});
  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}, QuorumConfig{5, 2, 2},
        QuorumConfig{3, 2, 2}}) {
    std::vector<std::string> row = {config.ToString()};
    for (int k : {1, 3, 5, 10}) {
      const int cap = MaxKeysForFreshnessTarget(config, 0.9, k);
      row.push_back(cap < 0 ? "0"
                            : (cap > 1000000 ? "unbounded"
                                             : std::to_string(cap)));
    }
    caps.AddRow(std::move(row));
  }
  caps.Print(std::cout);

  std::cout << "\n(3) Transaction-level t-visibility under LNKD-DISK "
               "(R=W=1): time until ALL keys read fresh with 99% "
               "probability\n\n";
  const auto model = MakeIidModel(LnkdDisk(), 3);
  TextTable tvis({"keys", "P(all fresh, t=0)", "t @ 99% (ms)",
                  "t @ 99.9% (ms)"});
  for (int m : key_counts) {
    const auto curve = EstimateMultiKeyTVisibility({3, 1, 1}, model, m,
                                                   200000 / m + 1000,
                                                   /*seed=*/616);
    tvis.AddRow("m=" + std::to_string(m),
                {curve.ProbConsistent(0.0), curve.TimeForConsistency(0.99),
                 curve.TimeForConsistency(0.999)},
                3);
  }
  tvis.Print(std::cout);

  std::cout << "\nReading: freshness erodes geometrically with transaction "
               "width — the quantitative form of Section 6's note that "
               "multi-key staleness probabilities multiply. Strict quorums "
               "are immune (every factor is 1).\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
