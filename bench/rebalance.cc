// Elastic-rebalance harness: a 64-node, 32-vnode sharded cluster takes a
// steady write/probe workload while storage nodes join and leave the ring
// mid-run, and the harness reports client-observed <k,t>-staleness split
// into before / during / after rebalance phases — fleet-wide and per shard
// — alongside the migration counters and the key-movement economics.
//
// Acceptance checks (nonzero exit on failure):
//   * zero lost acknowledged writes in every scenario and trial,
//   * key movement within 1.5x the consistent-hashing minimum for the
//     membership delta,
//   * post-churn placement bit-identical to a fresh ring built from the
//     final membership (deterministic rebuild),
//   * every started rebalance drains to completion.
//
// Self-contained harness in the chaos mold: paper-style table on stdout,
// machine-readable bench_results/BENCH_rebalance.{json,csv} plus the
// per-shard staleness attribution in BENCH_rebalance_shards.csv.
//
// Usage: rebalance [--trials=small|full] [--out-dir=DIR] [--threads=N]

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "dist/production.h"
#include "kvs/rebalance_experiment.h"
#include "util/parallel.h"

namespace pbs {
namespace {

struct ScenarioRow {
  std::string scenario;
  int join_nodes = 0;
  int remove_nodes = 0;
  kvs::RebalanceCampaignResult campaign;
  // Trial means for the movement economics.
  double moved_fraction = 0.0;
  double theoretical_min_fraction = 0.0;
  int64_t writes_acked = 0;
  int64_t transfers_delivered = 0;
  int64_t transfers_dropped = 0;
  int64_t stale_routes = 0;
  std::map<NodeId, kvs::RebalancePhaseStats> per_shard;
};

ScenarioRow RunScenario(const std::string& name, int join_nodes,
                        int remove_nodes, int trials, int writes, int keys,
                        const PbsExecutionOptions& exec) {
  kvs::RebalanceTrialOptions options;
  options.run.cluster.quorum = {3, 2, 2};
  options.run.cluster.legs = LnkdSsd();
  options.run.cluster.num_storage_nodes = 64;
  options.run.cluster.vnodes_per_node = 32;
  options.run.cluster.request_timeout_ms = 200.0;
  options.run.keys = keys;
  options.run.writes = writes;
  options.run.write_spacing_ms = 5.0;
  options.run.read_offset_ms = 10.0;
  options.run.join_nodes = join_nodes;
  options.run.remove_nodes = remove_nodes;
  options.trials = trials;
  options.seed = 6464;

  ScenarioRow row;
  row.scenario = name;
  row.join_nodes = join_nodes;
  row.remove_nodes = remove_nodes;
  row.campaign = kvs::RunRebalanceTrials(options, exec);
  for (const kvs::RebalanceRunSummary& trial : row.campaign.trials) {
    row.moved_fraction += trial.moved_fraction;
    row.theoretical_min_fraction += trial.theoretical_min_fraction;
    row.writes_acked += trial.writes_acked;
    row.transfers_delivered += trial.migration_transfers_delivered;
    row.transfers_dropped += trial.migration_transfers_dropped;
    row.stale_routes += trial.stale_routes_forwarded;
    for (const auto& [shard, stats] : trial.per_shard) {
      kvs::RebalancePhaseStats& pooled = row.per_shard[shard];
      pooled.reads += stats.reads;
      pooled.stale_reads += stats.stale_reads;
      pooled.version_lag += stats.version_lag;
    }
  }
  const double n = static_cast<double>(row.campaign.trials.size());
  if (n > 0) {
    row.moved_fraction /= n;
    row.theoretical_min_fraction /= n;
  }
  return row;
}

void WriteJson(const std::filesystem::path& path, const std::string& mode,
               const std::vector<ScenarioRow>& rows) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"rebalance\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n  \"results\": [\n", mode.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioRow& row = rows[i];
    const kvs::RebalanceCampaignResult& c = row.campaign;
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"join\": %d, \"remove\": %d, "
        "\"trials\": %zu, \"writes_acked\": %" PRId64 ", "
        "\"lost_acked_writes\": %" PRId64 ", "
        "\"stale_before\": %.6f, \"stale_during\": %.6f, "
        "\"stale_after\": %.6f, "
        "\"version_lag_during\": %" PRId64 ", "
        "\"moved_fraction\": %.6f, \"theoretical_min_fraction\": %.6f, "
        "\"transfers_delivered\": %" PRId64 ", \"transfers_dropped\": %" PRId64 ", "
        "\"stale_routes_forwarded\": %" PRId64 ", \"shards_observed\": %zu}%s\n",
        row.scenario.c_str(), row.join_nodes, row.remove_nodes,
        c.trials.size(), row.writes_acked,
        c.lost_acked_writes,
        c.before.StaleFraction(), c.during.StaleFraction(),
        c.after.StaleFraction(), c.during.version_lag,
        row.moved_fraction, row.theoretical_min_fraction,
        row.transfers_delivered,
        row.transfers_dropped,
        row.stale_routes,
        row.per_shard.size(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void WriteCsv(const std::filesystem::path& path,
              const std::vector<ScenarioRow>& rows) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f,
               "scenario,join,remove,trials,writes_acked,lost_acked_writes,"
               "stale_before,stale_during,stale_after,version_lag_during,"
               "moved_fraction,theoretical_min_fraction,transfers_delivered,"
               "transfers_dropped,stale_routes_forwarded\n");
  for (const ScenarioRow& row : rows) {
    const kvs::RebalanceCampaignResult& c = row.campaign;
    std::fprintf(f, "%s,%d,%d,%zu,%" PRId64 ",%" PRId64 ",%.6f,%.6f,%.6f,%" PRId64 ",%.6f,%.6f,"
                    "%" PRId64 ",%" PRId64 ",%" PRId64 "\n",
                 row.scenario.c_str(), row.join_nodes, row.remove_nodes,
                 c.trials.size(), row.writes_acked,
                 c.lost_acked_writes,
                 c.before.StaleFraction(), c.during.StaleFraction(),
                 c.after.StaleFraction(),
                 c.during.version_lag,
                 row.moved_fraction, row.theoretical_min_fraction,
                 row.transfers_delivered,
                 row.transfers_dropped,
                 row.stale_routes);
  }
  std::fclose(f);
}

void WriteShardCsv(const std::filesystem::path& path,
                   const std::vector<ScenarioRow>& rows) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return;
  }
  std::fprintf(f, "scenario,shard,reads,stale_reads,version_lag\n");
  for (const ScenarioRow& row : rows) {
    for (const auto& [shard, stats] : row.per_shard) {
      std::fprintf(f, "%s,%d,%" PRId64 ",%" PRId64 ",%" PRId64 "\n", row.scenario.c_str(), shard,
                   stats.reads,
                   stats.stale_reads,
                   stats.version_lag);
    }
  }
  std::fclose(f);
}

int Main(int argc, char** argv) {
  bool small = false;
  std::string out_dir = "bench_results";
  PbsExecutionOptions exec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials=small") {
      small = true;
    } else if (arg == "--trials=full") {
      small = false;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      exec.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else {
      std::fprintf(stderr,
                   "usage: rebalance [--trials=small|full] [--out-dir=DIR] "
                   "[--threads=N]\n");
      return 2;
    }
  }
  const int trials = small ? 2 : 4;
  const int writes = small ? 400 : 2000;
  const int keys = small ? 128 : 256;

  std::printf(
      "rebalance (%s mode): 64 storage nodes x 32 vnodes, %d trials x %d "
      "writes per scenario\n",
      small ? "small" : "full", trials, writes);
  std::printf("%-18s %5s %5s %8s %6s %9s %9s %9s %8s %8s\n", "scenario",
              "join", "rm", "acked", "lost", "st-before", "st-during",
              "st-after", "moved", "theo-min");

  std::vector<ScenarioRow> rows;
  struct Spec {
    const char* name;
    int join, remove;
  };
  for (const Spec& spec : {Spec{"join_only", 2, 0}, Spec{"remove_only", 0, 2},
                           Spec{"concurrent_churn", 2, 2}}) {
    ScenarioRow row = RunScenario(spec.name, spec.join, spec.remove, trials,
                                  writes, keys, exec);
    const kvs::RebalanceCampaignResult& c = row.campaign;
    std::printf("%-18s %5d %5d %8" PRId64 " %6" PRId64 " %9.4f %9.4f %9.4f %8.4f %8.4f\n",
                row.scenario.c_str(), row.join_nodes, row.remove_nodes,
                row.writes_acked,
                c.lost_acked_writes,
                c.before.StaleFraction(), c.during.StaleFraction(),
                c.after.StaleFraction(), row.moved_fraction,
                row.theoretical_min_fraction);
    std::fflush(stdout);
    rows.push_back(std::move(row));
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::filesystem::path dir(out_dir);
  WriteJson(dir / "BENCH_rebalance.json", small ? "small" : "full", rows);
  WriteCsv(dir / "BENCH_rebalance.csv", rows);
  WriteShardCsv(dir / "BENCH_rebalance_shards.csv", rows);
  std::printf("wrote %s/BENCH_rebalance.{json,csv} and "
              "%s/BENCH_rebalance_shards.csv\n",
              out_dir.c_str(), out_dir.c_str());

  int failures = 0;
  for (const ScenarioRow& row : rows) {
    if (row.campaign.lost_acked_writes != 0) {
      std::printf("CHECK FAIL: %s lost %" PRId64 " acknowledged writes\n",
                  row.scenario.c_str(),
                  row.campaign.lost_acked_writes);
      ++failures;
    }
    for (size_t t = 0; t < row.campaign.trials.size(); ++t) {
      const kvs::RebalanceRunSummary& trial = row.campaign.trials[t];
      if (trial.moved_fraction > 1.5 * trial.theoretical_min_fraction) {
        std::printf(
            "CHECK FAIL: %s trial %zu moved %.4f of the key space "
            "(theoretical minimum %.4f, limit 1.5x)\n",
            row.scenario.c_str(), t, trial.moved_fraction,
            trial.theoretical_min_fraction);
        ++failures;
      }
      if (!trial.placement_matches_fresh_ring) {
        std::printf("CHECK FAIL: %s trial %zu placement diverges from a "
                    "fresh ring over the final membership\n",
                    row.scenario.c_str(), t);
        ++failures;
      }
      if (trial.rebalances_completed != trial.rebalances_started) {
        std::printf("CHECK FAIL: %s trial %zu: %" PRId64 " rebalances started, "
                    "%" PRId64 " completed\n",
                    row.scenario.c_str(), t,
                    trial.rebalances_started,
                    trial.rebalances_completed);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("all rebalance checks passed: zero lost acked writes, "
                "movement within 1.5x minimum, deterministic placement\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pbs

int main(int argc, char** argv) { return pbs::Main(argc, argv); }
