#ifndef PBS_BENCH_BENCH_UTIL_H_
#define PBS_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/wars.h"
#include "dist/production.h"

namespace pbs {
namespace bench {

/// Where every harness mirrors its printed tables as CSV.
inline constexpr const char kResultsDir[] = "bench_results";

/// A named latency scenario bound to a replication factor.
struct Scenario {
  std::string name;
  ReplicaLatencyModelPtr model;
};

/// The paper's four production scenarios (Figures 5-6, Table 4):
/// LNKD-SSD, LNKD-DISK, YMMR (IID fits) and WAN (per-replica locality).
inline std::vector<Scenario> ProductionScenarios(int n) {
  std::vector<Scenario> scenarios;
  for (const auto& fit : AllIidProductionFits()) {
    scenarios.push_back({fit.name, MakeIidModel(fit, n)});
  }
  scenarios.push_back({"WAN", MakeWanModel(WanLocalBase(), n)});
  return scenarios;
}

}  // namespace bench
}  // namespace pbs

#endif  // PBS_BENCH_BENCH_UTIL_H_
