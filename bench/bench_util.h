#ifndef PBS_BENCH_BENCH_UTIL_H_
#define PBS_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "core/wars.h"
#include "dist/production.h"
#include "util/parallel.h"

namespace pbs {
namespace bench {

/// Where every harness mirrors its printed tables as CSV.
inline constexpr const char kResultsDir[] = "bench_results";

/// Execution options shared by the figure/validation harnesses: all hardware
/// threads by default, overridable with PBS_THREADS=n (n = 1 reproduces the
/// historical serial execution; the numbers are identical either way, only
/// the wall clock changes).
inline PbsExecutionOptions BenchExecution() {
  PbsExecutionOptions exec;
  if (const char* env = std::getenv("PBS_THREADS")) {
    exec.threads = std::atoi(env);
  }
  return exec;
}

/// A named latency scenario bound to a replication factor.
struct Scenario {
  std::string name;
  ReplicaLatencyModelPtr model;
};

/// The paper's four production scenarios (Figures 5-6, Table 4):
/// LNKD-SSD, LNKD-DISK, YMMR (IID fits) and WAN (per-replica locality).
inline std::vector<Scenario> ProductionScenarios(int n) {
  std::vector<Scenario> scenarios;
  for (const auto& fit : AllIidProductionFits()) {
    scenarios.push_back({fit.name, MakeIidModel(fit, n)});
  }
  scenarios.push_back({"WAN", MakeWanModel(WanLocalBase(), n)});
  return scenarios;
}

}  // namespace bench
}  // namespace pbs

#endif  // PBS_BENCH_BENCH_UTIL_H_
