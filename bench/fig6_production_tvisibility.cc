// E6 — Figure 6: t-visibility under the production latency fits for the
// three partial-quorum configurations (R=1,W=1), (R=1,W=2), (R=2,W=1),
// N=3. Prints P(consistency) at a grid of t values plus the headline
// "immediately after commit" and "t for 99.9%" numbers.

#include <iostream>

#include "bench/bench_util.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Figure 6: t-visibility for production fits, N=3 ===\n\n";
  const int trials = 500000;
  const std::vector<QuorumConfig> configs = {{3, 1, 1}, {3, 1, 2}, {3, 2, 1}};
  const std::vector<double> ts = {0.0,  0.5,  1.0,  2.0,   5.0,   10.0, 25.0,
                                  50.0, 75.0, 100.0, 250.0, 500.0, 1500.0};
  const auto scenarios = bench::ProductionScenarios(3);

  CsvWriter csv(std::string(bench::kResultsDir) +
                "/fig6_production_tvisibility.csv");
  csv.WriteHeader({"scenario", "r", "w", "t_ms", "p_consistent"});

  for (const auto& scenario : scenarios) {
    std::vector<std::string> header = {"config"};
    for (double t : ts) header.push_back("t=" + FormatDouble(t, 1));
    header.push_back("t@99.9%");
    TextTable table(std::move(header));
    for (const auto& config : configs) {
      const TVisibilityCurve curve =
          EstimateTVisibility(config, scenario.model, trials, /*seed=*/66,
                              bench::BenchExecution());
      std::vector<double> row;
      for (double t : ts) {
        const double p = curve.ProbConsistent(t);
        row.push_back(p);
        csv.WriteRow(scenario.name,
                     {static_cast<double>(config.r),
                      static_cast<double>(config.w), t, p});
      }
      row.push_back(curve.TimeForConsistency(0.999));
      table.AddRow("R=" + std::to_string(config.r) +
                       " W=" + std::to_string(config.w),
                   row, 4);
    }
    std::cout << scenario.name << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Paper anchors (Section 5.6, R=W=1): LNKD-SSD 97.4% at t=0 and "
         ">99.999% after 5 ms; LNKD-DISK 43.9% at t=0 and 92.5% at 10 ms; "
         "YMMR 89.3% at t=0, 99.9% only after ~1364 ms; WAN ~33% at t=0, "
         "consistent only after the 75 ms WAN hop.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
