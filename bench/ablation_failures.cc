// A2 — Section 6 "Failure modes": fail-stop crashes turn an N-replica set
// into an (N-F)-replica set until recovery and surface as staleness (and
// availability) tail events. Sweeps crash rates (MTBF) at fixed MTTR and
// reports t-visibility and failure counts, with and without hinted handoff.

#include <iostream>

#include "bench/bench_util.h"
#include "dist/primitives.h"
#include "kvs/cluster.h"
#include "kvs/experiment.h"
#include "kvs/failure.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Ablation: fail-stop crashes vs t-visibility (N=3, "
               "R=W=1, LNKD-DISK legs) ===\n\n";

  const std::vector<double> offsets = {0.0, 5.0, 10.0, 50.0};
  struct Variant {
    std::string name;
    double mtbf_ms;  // 0 = no failures
    bool hinted_handoff;
  };
  // The experiment horizon is writes * spacing = 6000 * 250 ms = 1500 s.
  const std::vector<Variant> variants = {
      {"no failures", 0.0, false},
      {"MTBF 100s, MTTR 10s", 100e3, false},
      {"MTBF 100s, MTTR 10s + handoff", 100e3, true},
      {"MTBF 20s, MTTR 10s", 20e3, false},
      {"MTBF 20s, MTTR 10s + handoff", 20e3, true},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/ablation_failures.csv");
  csv.WriteHeader({"variant", "t_ms", "p_consistent", "failed_ops"});

  std::vector<std::string> header = {"variant"};
  for (double t : offsets) header.push_back("t=" + FormatDouble(t, 0));
  header.push_back("failed reads");
  header.push_back("failed writes");
  header.push_back("handoffs");
  TextTable table(std::move(header));

  for (const auto& variant : variants) {
    kvs::StalenessExperimentOptions options;
    options.cluster.quorum = {3, 1, 1};
    options.cluster.legs = LnkdDisk();
    options.cluster.request_timeout_ms = 200.0;
    options.cluster.hinted_handoff = variant.hinted_handoff;
    options.cluster.hinted_handoff_backoff_base_ms = 500.0;
    options.cluster.hinted_handoff_backoff_max_ms = 500.0;
    options.cluster.hinted_handoff_max_retries = 100;
    options.writes = 6000;
    options.write_spacing_ms = 250.0;
    options.read_offsets_ms = offsets;
    options.seed = 2002;

    // RunStalenessExperiment builds its own cluster, so express failures
    // through an equivalent pre-computed schedule via a crashed-replica
    // workaround: we re-run the harness inline here with failures.
    // (The harness exposes the cluster config only, so we reproduce the
    // schedule through the options' seed-deterministic horizon.)
    kvs::StalenessExperimentResult result;
    if (variant.mtbf_ms == 0.0) {
      result = kvs::RunStalenessExperiment(options);
    } else {
      result = kvs::RunStalenessExperimentWithFailures(
          options, kvs::FailureSchedule::RandomCrashRecover(
                       options.cluster.quorum.n,
                       options.writes * options.write_spacing_ms,
                       variant.mtbf_ms, /*mttr_ms=*/10e3, /*seed=*/303));
    }

    std::vector<std::string> row = {variant.name};
    for (size_t i = 0; i < offsets.size(); ++i) {
      const double p = result.t_visibility[i].ProbConsistent();
      row.push_back(FormatDouble(p, 4));
      csv.WriteRow(variant.name,
                   {offsets[i], p,
                    static_cast<double>(result.final_metrics.reads_failed +
                                        result.final_metrics.writes_failed)});
    }
    row.push_back(std::to_string(result.final_metrics.reads_failed));
    row.push_back(std::to_string(result.final_metrics.writes_failed));
    row.push_back(
        std::to_string(result.final_metrics.hinted_handoffs_sent));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: exactly as Section 6 argues, a replica set with F "
         "crashed nodes behaves like an (N-F)-replica set — and per "
         "Figure 7, *smaller* effective N means *better* consistency "
         "immediately after commit for R=W=1 (here t=0 consistency rises "
         "with the crash rate) at the cost of availability (failed "
         "operations appear once two replicas are down simultaneously) "
         "and a staler high-t tail while recovered replicas catch up "
         "(compare t=50). Hinted handoff replays missed writes to "
         "recovering replicas, trimming that tail.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
