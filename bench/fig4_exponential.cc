// E3 — Figure 4: t-visibility under exponential latency distributions.
// W = Exponential(lambda_w) for lambda_w in {4, 2, 1, 0.5, 0.2, 0.1};
// A = R = S = Exponential(1) (mean 1 ms). N=3, R=W=1.
// The paper reads this as "ARS:W mean ratio 1:1/4 ... 1:10".

#include <iostream>

#include "bench/bench_util.h"
#include "core/tvisibility.h"
#include "dist/primitives.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Figure 4: P(consistency) vs t, exponential W, "
               "A=R=S=Exp(1), N=3, R=W=1 ===\n\n";
  const std::vector<double> lambdas = {4.0, 2.0, 1.0, 0.5, 0.2, 0.1};
  const std::vector<double> ts = {0.0, 0.5, 1.0, 2.0,  3.0,  5.0,
                                  7.5, 10.0, 15.0, 25.0, 45.0, 65.0};
  const int trials = 500000;
  const QuorumConfig config{3, 1, 1};

  CsvWriter csv(std::string(bench::kResultsDir) + "/fig4_exponential.csv");
  csv.WriteHeader({"lambda_w", "t_ms", "p_consistent"});

  std::vector<std::string> header = {"ARS:W ratio"};
  for (double t : ts) header.push_back("t=" + FormatDouble(t, 1));
  header.push_back("t@99.9%");
  TextTable table(std::move(header));

  for (double lambda_w : lambdas) {
    const auto legs =
        MakeWars("fig4", Exponential(lambda_w), Exponential(1.0));
    const auto model = MakeIidModel(legs, config.n);
    const TVisibilityCurve curve =
        EstimateTVisibility(config, model, trials, /*seed=*/4242,
                            bench::BenchExecution());
    std::vector<double> row;
    for (double t : ts) {
      const double p = curve.ProbConsistent(t);
      row.push_back(p);
      csv.WriteRow("", {lambda_w, t, p});
    }
    row.push_back(curve.TimeForConsistency(0.999));
    table.AddRow("1:" + FormatDouble(1.0 / lambda_w, 2), row, 3);
  }
  table.Print(std::cout);

  std::cout
      << "\nPaper anchors (Section 5.3): lambda_w=4 (1:0.25) -> ~94% at t=0 "
         "and 99.9% within ~1 ms; lambda_w=0.1 (1:10) -> ~41% at t=0 and "
         "99.9% only after ~65 ms.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
