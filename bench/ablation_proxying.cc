// A12 — Section 4.2 "Proxying operations": who coordinates matters. Four
// architectures over LNKD-DISK at N=3:
//   proxied           — dedicated front-end coordinators (Dynamo; the WARS
//                       baseline everywhere else in this repo),
//   local same        — client sticks to one replica that coordinates both
//                       its writes and reads (Voldemort's client-as-
//                       coordinator with session stickiness),
//   local independent — writes and reads coordinated by random replicas.
// Reports t-visibility and operation latency for each.

#include <iostream>

#include "bench/bench_util.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Proxied vs local coordination (LNKD-DISK, N=3) ===\n\n";
  const int trials = 400000;

  struct Arch {
    std::string name;
    ReplicaLatencyModelPtr model;
  };
  const std::vector<Arch> architectures = {
      {"proxied front-end", MakeIidModel(LnkdDisk(), 3)},
      {"local, same coordinator",
       MakeLocalCoordinatorModel(LnkdDisk(), 3, /*same_coordinator=*/true)},
      {"local, independent coordinators",
       MakeLocalCoordinatorModel(LnkdDisk(), 3, /*same_coordinator=*/false)},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/ablation_proxying.csv");
  csv.WriteHeader({"architecture", "r", "w", "p_t0", "t999_ms", "read_p50",
                   "write_p50"});

  for (const QuorumConfig config :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}}) {
    TextTable table({"architecture", "P(consistent, t=0)",
                     "t @ 99.9% (ms)", "read p50 (ms)", "write p50 (ms)"});
    for (const auto& arch : architectures) {
      WarsTrialSet set =
          RunWarsTrials(config, arch.model, trials, /*seed=*/121,
                        /*want_propagation=*/false, ReadFanout::kAllN,
                        bench::BenchExecution());
      const TVisibilityCurve curve(std::move(set.staleness_thresholds));
      const LatencyProfile reads(std::move(set.read_latencies));
      const LatencyProfile writes(std::move(set.write_latencies));
      table.AddRow({arch.name,
                    FormatDouble(curve.ProbConsistent(0.0), 4),
                    FormatDouble(curve.TimeForConsistency(0.999), 2),
                    FormatDouble(reads.Percentile(50.0), 3),
                    FormatDouble(writes.Percentile(50.0), 3)});
      csv.WriteRow(arch.name,
                   {static_cast<double>(config.r),
                    static_cast<double>(config.w),
                    curve.ProbConsistent(0.0),
                    curve.TimeForConsistency(0.999),
                    reads.Percentile(50.0), writes.Percentile(50.0)});
    }
    std::cout << config.ToString() << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading: local coordination slashes latency (the coordinator's "
         "own legs are free — why Dynamo's authors and Voldemort adopted "
         "client coordination), but its consistency depends on session "
         "locality: a session reading where it wrote gets read-your-writes "
         "for free (P=1 at t=0 with R=W=1), while independent local "
         "coordinators collapse to P(consistent, t=0) = 1/N — instant "
         "commits give writes no propagation headstart. Proxying sits in "
         "between: slower, but the coordinator round trips shelter "
         "propagation.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
