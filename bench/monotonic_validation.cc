// A10 — Section 3.2: monotonic-reads session guarantee, Equation 3
// prediction vs event-driven measurement. Sweeps the write/read rate ratio
// and compares the closed form ps^(1 + gw/cr) (a non-expanding-quorum
// bound) against violations measured on the cluster, with and without
// quorum expansion being slowed (fast vs slow write propagation).

#include <iostream>

#include "bench/bench_util.h"
#include "core/closed_form.h"
#include "dist/primitives.h"
#include "kvs/client.h"
#include "kvs/cluster.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

struct Measured {
  double violation_rate = 0.0;
  double live_prediction = 0.0;  // session's own Equation 3 estimate
};

Measured MeasureViolations(const WarsDistributions& legs,
                           double write_interval, double read_interval,
                           int reads) {
  kvs::KvsConfig config;
  config.quorum = {3, 1, 1};
  config.legs = legs;
  config.request_timeout_ms = 5000.0;
  config.seed = 1010;
  kvs::Cluster cluster(config);
  kvs::ClientSession writer(&cluster, cluster.coordinator(0).id(), 1);
  kvs::ClientSession reader(&cluster, cluster.coordinator(0).id(), 2);

  const double horizon = reads * read_interval;
  const int writes = static_cast<int>(horizon / write_interval);
  for (int i = 0; i < writes; ++i) {
    cluster.sim().At(i * write_interval,
                     [&writer]() { writer.Write(1, "v", nullptr); });
  }
  for (int i = 0; i < reads; ++i) {
    cluster.sim().At(i * read_interval,
                     [&reader]() { reader.Read(1, nullptr); });
  }
  Measured out;
  // Sample the live estimate while traffic still flows (it decays during
  // the trailing timeout drain).
  cluster.sim().At(horizon - 1.0, [&]() {
    out.live_prediction = reader.PredictedMonotonicViolationProbability(1);
  });
  cluster.sim().Run();
  out.violation_rate = static_cast<double>(reader.monotonic_violations()) /
                       static_cast<double>(reader.reads_issued());
  return out;
}

void Run() {
  std::cout << "=== Monotonic reads (Section 3.2): Equation 3 vs "
               "measurement, N=3 R=W=1, writes every 20 ms ===\n\n";
  const double write_interval = 20.0;
  const int reads = 20000;

  CsvWriter csv(std::string(bench::kResultsDir) +
                "/monotonic_validation.csv");
  csv.WriteHeader({"gw_over_cr", "eq3_bound", "measured_slow_propagation",
                   "measured_fast_propagation", "live_session_estimate"});

  TextTable table({"gw/cr", "Eq.3 bound ps^(1+gw/cr)",
                   "measured (slow propagation)",
                   "measured (fast propagation)",
                   "session's live estimate"});
  // Slow propagation: heavy-tailed writes keep quorums near size W for a
  // while (the closed form's regime). Fast propagation: SSD-like legs make
  // every replica current within ~1 ms, crushing violations.
  const auto slow = MakeWars("slow", Exponential(0.02), Exponential(2.0));
  const auto fast = LnkdSsd();
  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    // gw/cr = ratio: the session reads every write_interval * ratio ms.
    const double read_interval = write_interval * ratio;
    const double bound = MonotonicReadsViolationProbability(
        {3, 1, 1}, 1.0 / write_interval, 1.0 / read_interval);
    const Measured measured_slow =
        MeasureViolations(slow, write_interval, read_interval, reads);
    const Measured measured_fast =
        MeasureViolations(fast, write_interval, read_interval, reads);
    table.AddRow("gw/cr=" + FormatDouble(ratio, 2),
                 {bound, measured_slow.violation_rate,
                  measured_fast.violation_rate,
                  measured_slow.live_prediction},
                 4);
    csv.WriteRow("", {ratio, bound, measured_slow.violation_rate,
                      measured_fast.violation_rate,
                      measured_slow.live_prediction});
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: Equation 3 assumes non-expanding quorums, so it upper-"
         "bounds every measurement; slow write propagation (mean 50 ms "
         "writes) approaches the bound for fast re-reads, while SSD-speed "
         "propagation collapses violations to ~0 — the expansion effect "
         "the paper credits for eventual consistency being 'good enough'. "
         "The live estimate column is computed by the session itself from "
         "its measured rates (the Section 3.2 workflow).\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
