// A5 — Alternative quorum-system designs (Sections 2.1/3.3/7): load and
// staleness of majority/subset, grid and tree quorum systems at comparable
// replica counts, with and without per-member omission. The paper flags
// "revisiting probabilistic quorum systems — including non-majority quorum
// systems such as tree quorums — in the context of write propagation" as
// promising future work; this harness is that comparison in the
// non-expanding model.

#include <iostream>

#include "bench/bench_util.h"
#include "core/quorum_system.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  const int trials = 300000;
  std::cout << "=== Quorum-system designs at N ~ 15-16 replicas ===\n\n";

  struct Case {
    std::string name;
    QuorumSystemPtr system;
  };
  const std::vector<Case> cases = {
      {"majority subset (N=15, R=W=8)", MakeSubsetQuorumSystem(15, 8, 8)},
      {"partial subset (N=15, R=W=1)", MakeSubsetQuorumSystem(15, 1, 1)},
      {"partial subset (N=15, R=W=4)", MakeSubsetQuorumSystem(15, 4, 4)},
      {"grid 4x4 (N=16)", MakeGridQuorumSystem(4, 4)},
      {"tree levels=4 (N=15, pref=.9)", MakeTreeQuorumSystem(4, 0.9)},
      {"tree levels=4 (N=15, pref=.5)", MakeTreeQuorumSystem(4, 0.5)},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/quorum_systems.csv");
  csv.WriteHeader({"system", "strict", "load", "mean_read_quorum",
                   "mean_write_quorum", "miss_prob", "k2_miss_prob"});

  TextTable table({"system", "strict", "load", "avg |read Q|",
                   "avg |write Q|", "P(miss last write)",
                   "P(miss last 2)"});
  for (const auto& c : cases) {
    const auto stats = AnalyzeQuorumSystem(*c.system, trials, /*seed=*/515);
    table.AddRow({c.name, c.system->IsStrict() ? "yes" : "no",
                  FormatDouble(stats.load, 3),
                  FormatDouble(stats.mean_read_quorum_size, 2),
                  FormatDouble(stats.mean_write_quorum_size, 2),
                  FormatDouble(stats.miss_probability, 4),
                  FormatDouble(stats.k2_miss_probability, 4)});
    csv.WriteRow(c.name, {c.system->IsStrict() ? 1.0 : 0.0, stats.load,
                          stats.mean_read_quorum_size,
                          stats.mean_write_quorum_size,
                          stats.miss_probability,
                          stats.k2_miss_probability});
  }
  table.Print(std::cout);

  std::cout << "\n=== Structured systems under per-member omission "
               "(fail-stop / timeout model) ===\n\n";
  TextTable omission({"system", "omission f", "P(miss last write)",
                      "analytic (grid: 1-(1-f)^2)"});
  for (double f : {0.05, 0.1, 0.2}) {
    const auto grid = MakeGridQuorumSystem(6, 6, f);
    const auto grid_stats = AnalyzeQuorumSystem(*grid, trials, /*seed=*/516);
    omission.AddRow({"grid 6x6", FormatDouble(f, 2),
                     FormatDouble(grid_stats.miss_probability, 4),
                     FormatDouble(1.0 - (1.0 - f) * (1.0 - f), 4)});
    const auto tree = MakeTreeQuorumSystem(4, 0.9, f);
    const auto tree_stats = AnalyzeQuorumSystem(*tree, trials, /*seed=*/517);
    omission.AddRow({"tree levels=4 pref=.9", FormatDouble(f, 2),
                     FormatDouble(tree_stats.miss_probability, 4), "-"});
  }
  omission.Print(std::cout);

  std::cout
      << "\nReading: the grid achieves the optimal O(1/sqrt(N)) load with "
         "tiny quorums but its single-cell intersections are fragile under "
         "omission; root-heavy trees have log-size quorums but concentrate "
         "load at the root; random partial subsets trade intersection "
         "probability (PBS's ps) for both small quorums and low load.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
