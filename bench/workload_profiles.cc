// A13 — Full-stack workload profiles: the YCSB mixes against the
// event-driven cluster across consistency configurations. Where the other
// harnesses isolate one mechanism, this one answers the adopter's question:
// "for my workload, what do the consistency knobs cost and buy?"

#include <iostream>

#include "bench/bench_util.h"
#include "kvs/cluster.h"
#include "kvs/workload.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;
using kvs::WorkloadPreset;

void Run() {
  std::cout << "=== YCSB workload mixes on the event-driven cluster "
               "(N=3, LNKD-DISK, zipfian 0.99, 30k ops) ===\n\n";

  CsvWriter csv(std::string(bench::kResultsDir) + "/workload_profiles.csv");
  csv.WriteHeader({"preset", "r", "w", "read_p50", "read_p999", "write_p50",
                   "write_p999", "p_stale_ge1", "monotonic_violations"});

  const std::vector<WorkloadPreset> presets = {
      WorkloadPreset::kYcsbA, WorkloadPreset::kYcsbB,
      WorkloadPreset::kYcsbC, WorkloadPreset::kYcsbD};

  for (const QuorumConfig quorum :
       {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 2}}) {
    TextTable table({"preset", "read p50/p99.9 (ms)", "write p50/p99.9 (ms)",
                     "P(read >=1 version stale)", "monotonic violations"});
    for (WorkloadPreset preset : presets) {
      kvs::KvsConfig config;
      config.quorum = quorum;
      config.legs = LnkdDisk();
      config.read_repair = true;
      config.request_timeout_ms = 5000.0;
      config.num_coordinators = 4;
      config.seed = 1300;
      kvs::Cluster cluster(config);
      kvs::WorkloadDriver driver(
          &cluster, kvs::MakePresetOptions(preset, 30000,
                                           /*mean_interarrival_ms=*/0.5));
      const kvs::WorkloadResult result = driver.RunToCompletion();
      const auto& metrics = cluster.metrics();
      const auto reads = metrics.read_latency.ToProfile();
      const bool has_writes = metrics.write_latency.count() > 0;
      const std::string write_cell =
          has_writes
              ? FormatDouble(
                    metrics.write_latency.ToProfile().Percentile(50.0), 2) +
                    " / " +
                    FormatDouble(
                        metrics.write_latency.ToProfile().Percentile(99.9),
                        2)
              : "- (no writes)";
      table.AddRow({PresetName(preset),
                    FormatDouble(reads.Percentile(50.0), 2) + " / " +
                        FormatDouble(reads.Percentile(99.9), 2),
                    write_cell,
                    FormatDouble(result.staleness.ProbStalerThan(1), 4),
                    std::to_string(result.monotonic_violations)});
      csv.WriteRow(PresetName(preset),
                   {static_cast<double>(quorum.r),
                    static_cast<double>(quorum.w), reads.Percentile(50.0),
                    reads.Percentile(99.9),
                    has_writes
                        ? metrics.write_latency.ToProfile().Percentile(50.0)
                        : 0.0,
                    has_writes
                        ? metrics.write_latency.ToProfile().Percentile(99.9)
                        : 0.0,
                    result.staleness.ProbStalerThan(1),
                    static_cast<double>(result.monotonic_violations)});
    }
    std::cout << quorum.ToString()
              << (quorum.IsStrict() ? " (strict)" : " (partial)") << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading: write-heavy mixes (A) surface the most staleness under "
         "R=W=1 — hot keys are overwritten while reads race propagation; "
         "read-mostly mixes (B, D) see less because each version has time "
         "to spread (and read repair works in their favor); read-only C "
         "is trivially consistent. The strict table prices the same "
         "workloads under QUORUM/QUORUM: zero staleness versus the "
         "committed watermark at ~2x latency. (Strict quorums can still "
         "log a handful of monotonic-reads 'violations': a session may "
         "read an in-flight version early — the paper's k-regular "
         "semantics — and then fail to see it again before it commits.)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
