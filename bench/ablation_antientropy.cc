// A1 — Ablation: how much fresher than the conservative WARS bound do the
// anti-entropy processes of Section 4.2 make the system? Runs the
// event-driven cluster with (a) no extra anti-entropy (WARS assumptions),
// (b) read repair, (c) gossip anti-entropy at several rates, (d) both.
// The paper deliberately excludes these from WARS ("a conservative
// assumption ... is that they never occur"); this ablation quantifies what
// that conservatism leaves on the table.

#include <iostream>

#include "bench/bench_util.h"
#include "dist/primitives.h"
#include "kvs/experiment.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

kvs::StalenessExperimentOptions BaseOptions() {
  kvs::StalenessExperimentOptions options;
  options.cluster.quorum = {3, 1, 1};
  // Slow writes (mean 20 ms) against fast everything else: plenty of
  // staleness for the anti-entropy processes to repair.
  options.cluster.legs =
      MakeWars("slow-w", Exponential(0.05), Exponential(1.0));
  options.cluster.request_timeout_ms = 5000.0;
  options.writes = 8000;
  options.write_spacing_ms = 500.0;
  options.read_offsets_ms = {0.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0};
  options.seed = 1001;
  return options;
}

void Run() {
  std::cout << "=== Ablation: read repair and gossip anti-entropy vs the "
               "conservative WARS baseline ===\n"
               "(N=3, R=W=1, W ~ Exp(0.05): mean 20 ms; probes per commit "
               "at the listed offsets)\n\n";

  struct Variant {
    std::string name;
    bool read_repair;
    double gossip_interval_ms;  // 0 = off
  };
  const std::vector<Variant> variants = {
      {"baseline (WARS assumptions)", false, 0.0},
      {"read repair", true, 0.0},
      {"gossip every 100 ms", false, 100.0},
      {"gossip every 20 ms", false, 20.0},
      {"read repair + gossip 20 ms", true, 20.0},
  };

  CsvWriter csv(std::string(bench::kResultsDir) +
                "/ablation_antientropy.csv");
  csv.WriteHeader({"variant", "t_ms", "p_consistent"});

  const auto offsets = BaseOptions().read_offsets_ms;
  std::vector<std::string> header = {"variant"};
  for (double t : offsets) header.push_back("t=" + FormatDouble(t, 0));
  header.push_back("repairs");
  header.push_back("gossip values");
  TextTable table(std::move(header));

  for (const auto& variant : variants) {
    auto options = BaseOptions();
    options.cluster.read_repair = variant.read_repair;
    options.cluster.anti_entropy_interval_ms = variant.gossip_interval_ms;
    const auto result = kvs::RunStalenessExperiment(options);
    std::vector<std::string> row = {variant.name};
    for (size_t i = 0; i < offsets.size(); ++i) {
      const double p = result.t_visibility[i].ProbConsistent();
      row.push_back(FormatDouble(p, 4));
      csv.WriteRow(variant.name, {offsets[i], p});
    }
    row.push_back(std::to_string(result.final_metrics.read_repairs_sent));
    row.push_back(
        std::to_string(result.final_metrics.anti_entropy_values_shipped));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nReading: every anti-entropy mechanism can only *raise* "
               "the curve versus the baseline (WARS is a lower bound on "
               "freshness, Section 4.2). Gossip helps at larger t once a "
               "sync interval has elapsed; read repair helps later probes "
               "of the same key after an early probe pulled the version.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
