// A14 — Design-space atlas: the batch counterpart of the paper's
// interactive demo (pbs.cs.berkeley.edu/#demo). For every production
// scenario, N in {2,3,5,10} and every (R, W), dumps the whole
// consistency/latency design space to CSV and prints the Pareto frontier
// (configurations not dominated on [t-visibility, read p99.9, write
// p99.9]) — what an operator browses when picking a configuration.

#include <iostream>

#include "bench/bench_util.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

struct Cell {
  std::string scenario;
  QuorumConfig config;
  double t999 = 0.0;
  double read_p999 = 0.0;
  double write_p999 = 0.0;
};

bool Dominates(const Cell& a, const Cell& b) {
  const bool no_worse = a.t999 <= b.t999 && a.read_p999 <= b.read_p999 &&
                        a.write_p999 <= b.write_p999;
  const bool strictly_better = a.t999 < b.t999 ||
                               a.read_p999 < b.read_p999 ||
                               a.write_p999 < b.write_p999;
  return no_worse && strictly_better;
}

void Run() {
  std::cout << "=== Design-space atlas: every (scenario, N, R, W) ===\n"
               "(t-visibility at 99.9%; latencies at p99.9; full dump in "
               "bench_results/design_space_atlas.csv)\n\n";
  const int trials = 150000;
  const std::vector<int> ns = {2, 3, 5, 10};

  CsvWriter csv(std::string(bench::kResultsDir) +
                "/design_space_atlas.csv");
  csv.WriteHeader({"scenario", "n", "r", "w", "strict", "t999_ms",
                   "read_p999_ms", "write_p999_ms", "p_consistent_t0"});

  for (const std::string scenario :
       {std::string("LNKD-SSD"), std::string("LNKD-DISK"),
        std::string("YMMR")}) {
    std::vector<Cell> cells;
    for (int n : ns) {
      ReplicaLatencyModelPtr model;
      if (scenario == "LNKD-SSD") {
        model = MakeIidModel(LnkdSsd(), n);
      } else if (scenario == "LNKD-DISK") {
        model = MakeIidModel(LnkdDisk(), n);
      } else {
        model = MakeIidModel(Ymmr(), n);
      }
      for (int r = 1; r <= n; ++r) {
        for (int w = 1; w <= n; ++w) {
          const QuorumConfig config{n, r, w};
          WarsTrialSet set =
              RunWarsTrials(config, model, trials, /*seed=*/1400,
                            /*want_propagation=*/false, ReadFanout::kAllN,
                            bench::BenchExecution());
          const TVisibilityCurve curve(std::move(set.staleness_thresholds));
          const LatencyProfile reads(std::move(set.read_latencies));
          const LatencyProfile writes(std::move(set.write_latencies));
          Cell cell;
          cell.scenario = scenario;
          cell.config = config;
          cell.t999 = curve.TimeForConsistency(0.999);
          cell.read_p999 = reads.Percentile(99.9);
          cell.write_p999 = writes.Percentile(99.9);
          csv.WriteRow(scenario,
                       {static_cast<double>(n), static_cast<double>(r),
                        static_cast<double>(w),
                        config.IsStrict() ? 1.0 : 0.0, cell.t999,
                        cell.read_p999, cell.write_p999,
                        curve.ProbConsistent(0.0)});
          cells.push_back(cell);
        }
      }
    }
    // Pareto frontier over (t999, Lr, Lw).
    TextTable table({"config", "t@99.9% (ms)", "Lr p99.9 (ms)",
                     "Lw p99.9 (ms)", "strict"});
    int frontier_size = 0;
    for (const Cell& cell : cells) {
      bool dominated = false;
      for (const Cell& other : cells) {
        if (Dominates(other, cell)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      ++frontier_size;
      if (frontier_size <= 12) {
        table.AddRow({cell.config.ToString(), FormatDouble(cell.t999, 2),
                      FormatDouble(cell.read_p999, 2),
                      FormatDouble(cell.write_p999, 2),
                      cell.config.IsStrict() ? "yes" : "no"});
      }
    }
    std::cout << scenario << " — Pareto frontier (" << frontier_size
              << " of " << cells.size() << " configurations survive; first "
              << "12 shown):\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: the frontier always contains both extremes "
               "(R=W=1 for latency, a strict combination for t=0) plus the "
               "partial-quorum middle the paper argues for; everything "
               "else — oversized quorums at small N, lopsided strict "
               "combos — is dominated.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
