// A14 — Design-space atlas: the batch counterpart of the paper's
// interactive demo (pbs.cs.berkeley.edu/#demo). For every production
// scenario, N in {2,3,5,10} and every (R, W), dumps the whole
// consistency/latency design space to CSV and prints the Pareto frontier
// (configurations not dominated on [t-visibility, read p99.9, write
// p99.9]) — what an operator browses when picking a configuration.
//
// A second pass re-walks the identical lattice through the analytic grid
// backend (one shared AnalyticScenario per scenario, per-point cost in
// microseconds) into design_space_atlas_analytic.csv — the "interactive
// demo speed" the kAnalytic backend buys. The Monte Carlo CSV is
// byte-identical to what it was before the analytic arm existed.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "core/analytic.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

struct Cell {
  std::string scenario;
  QuorumConfig config;
  double t999 = 0.0;
  double read_p999 = 0.0;
  double write_p999 = 0.0;
};

bool Dominates(const Cell& a, const Cell& b) {
  const bool no_worse = a.t999 <= b.t999 && a.read_p999 <= b.read_p999 &&
                        a.write_p999 <= b.write_p999;
  const bool strictly_better = a.t999 < b.t999 ||
                               a.read_p999 < b.read_p999 ||
                               a.write_p999 < b.write_p999;
  return no_worse && strictly_better;
}

void Run() {
  std::cout << "=== Design-space atlas: every (scenario, N, R, W) ===\n"
               "(t-visibility at 99.9%; latencies at p99.9; full dump in "
               "bench_results/design_space_atlas.csv)\n\n";
  const int trials = 150000;
  const std::vector<int> ns = {2, 3, 5, 10};

  CsvWriter csv(std::string(bench::kResultsDir) +
                "/design_space_atlas.csv");
  csv.WriteHeader({"scenario", "n", "r", "w", "strict", "t999_ms",
                   "read_p999_ms", "write_p999_ms", "p_consistent_t0"});

  for (const std::string scenario :
       {std::string("LNKD-SSD"), std::string("LNKD-DISK"),
        std::string("YMMR")}) {
    std::vector<Cell> cells;
    for (int n : ns) {
      ReplicaLatencyModelPtr model;
      if (scenario == "LNKD-SSD") {
        model = MakeIidModel(LnkdSsd(), n);
      } else if (scenario == "LNKD-DISK") {
        model = MakeIidModel(LnkdDisk(), n);
      } else {
        model = MakeIidModel(Ymmr(), n);
      }
      for (int r = 1; r <= n; ++r) {
        for (int w = 1; w <= n; ++w) {
          const QuorumConfig config{n, r, w};
          WarsTrialSet set =
              RunWarsTrials(config, model, trials, /*seed=*/1400,
                            /*want_propagation=*/false, ReadFanout::kAllN,
                            bench::BenchExecution());
          const TVisibilityCurve curve(std::move(set.staleness_thresholds));
          const LatencyProfile reads(std::move(set.read_latencies));
          const LatencyProfile writes(std::move(set.write_latencies));
          Cell cell;
          cell.scenario = scenario;
          cell.config = config;
          cell.t999 = curve.TimeForConsistency(0.999);
          cell.read_p999 = reads.Percentile(99.9);
          cell.write_p999 = writes.Percentile(99.9);
          csv.WriteRow(scenario,
                       {static_cast<double>(n), static_cast<double>(r),
                        static_cast<double>(w),
                        config.IsStrict() ? 1.0 : 0.0, cell.t999,
                        cell.read_p999, cell.write_p999,
                        curve.ProbConsistent(0.0)});
          cells.push_back(cell);
        }
      }
    }
    // Pareto frontier over (t999, Lr, Lw).
    TextTable table({"config", "t@99.9% (ms)", "Lr p99.9 (ms)",
                     "Lw p99.9 (ms)", "strict"});
    int frontier_size = 0;
    for (const Cell& cell : cells) {
      bool dominated = false;
      for (const Cell& other : cells) {
        if (Dominates(other, cell)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      ++frontier_size;
      if (frontier_size <= 12) {
        table.AddRow({cell.config.ToString(), FormatDouble(cell.t999, 2),
                      FormatDouble(cell.read_p999, 2),
                      FormatDouble(cell.write_p999, 2),
                      cell.config.IsStrict() ? "yes" : "no"});
      }
    }
    std::cout << scenario << " — Pareto frontier (" << frontier_size
              << " of " << cells.size() << " configurations survive; first "
              << "12 shown):\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: the frontier always contains both extremes "
               "(R=W=1 for latency, a strict combination for t=0) plus the "
               "partial-quorum middle the paper argues for; everything "
               "else — oversized quorums at small N, lopsided strict "
               "combos — is dominated.\n";

  // Analytic arm: the same lattice through the grid backend. One scenario
  // build amortizes the FFT convolutions over every (N, R, W) cell; each
  // cell is then two order statistics plus three curve queries.
  std::cout << "\n=== Analytic pass (grid backend, per-point cost) ===\n\n";
  CsvWriter acsv(std::string(bench::kResultsDir) +
                 "/design_space_atlas_analytic.csv");
  acsv.WriteHeader({"scenario", "n", "r", "w", "strict", "t999_ms",
                    "read_p999_ms", "write_p999_ms", "p_consistent_t0",
                    "point_us"});
  TextTable atable({"scenario", "cells", "build (ms)", "per cell (us)"});
  for (const auto& fit : AllIidProductionFits()) {
    const auto build_start = std::chrono::steady_clock::now();
    auto scenario = MakeAnalyticScenario(fit, AnalyticGridOptions{});
    if (!scenario.ok()) {
      std::cout << fit.name << ": " << scenario.status().message() << "\n";
      continue;
    }
    const double build_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - build_start)
            .count();
    int cells = 0;
    double total_us = 0.0;
    for (int n : ns) {
      for (int r = 1; r <= n; ++r) {
        for (int w = 1; w <= n; ++w) {
          const QuorumConfig config{n, r, w};
          const auto start = std::chrono::steady_clock::now();
          const AnalyticWars analytic(config, scenario.value());
          const double t999 = analytic.ApproxTimeForConsistency(0.999);
          const double read_p999 = analytic.ReadLatencyQuantile(0.999);
          const double write_p999 = analytic.WriteLatencyQuantile(0.999);
          const double p0 = analytic.ApproxProbConsistent(0.0);
          const double point_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          acsv.WriteRow(fit.name,
                        {static_cast<double>(n), static_cast<double>(r),
                         static_cast<double>(w),
                         config.IsStrict() ? 1.0 : 0.0, t999, read_p999,
                         write_p999, p0, point_us});
          total_us += point_us;
          ++cells;
        }
      }
    }
    atable.AddRow({fit.name, std::to_string(cells), FormatDouble(build_ms, 1),
                   FormatDouble(total_us / cells, 1)});
  }
  atable.Print(std::cout);
  std::cout << "\nReading: after one ~100 ms grid build per scenario, every "
               "design point costs well under a millisecond — the whole "
               "138-cell atlas re-evaluates in the time one Monte Carlo "
               "cell takes, which is what makes interactive what-if "
               "exploration (and per-epoch controller sweeps) practical.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
