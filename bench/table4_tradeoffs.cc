// E8 — Table 4: the latency / t-visibility trade-off. For each production
// scenario and each (R, W) combination at N=3, reports the t-visibility
// required for a 99.9% probability of consistent reads alongside the 99.9th
// percentile read (Lr) and write (Lw) latencies — the table the paper's
// headline claims come from (e.g. YMMR R=2,W=1: 81.1% latency win for a
// 202 ms inconsistency window).

#include <iostream>

#include "bench/bench_util.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "core/wars.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Table 4: t-visibility (pst = .001) and 99.9th "
               "percentile latencies, N=3 ===\n\n";
  const int trials = 1000000;  // the paper used 1M reads/writes for latency
  const std::vector<QuorumConfig> configs = {{3, 1, 1}, {3, 1, 2}, {3, 2, 1},
                                             {3, 2, 2}, {3, 3, 1}, {3, 1, 3}};
  const auto scenarios = bench::ProductionScenarios(3);

  CsvWriter csv(std::string(bench::kResultsDir) + "/table4_tradeoffs.csv");
  csv.WriteHeader({"scenario", "r", "w", "lr_99.9_ms", "lw_99.9_ms",
                   "t_visibility_99.9_ms"});

  for (const auto& scenario : scenarios) {
    TextTable table({"config", "Lr (99.9th, ms)", "Lw (99.9th, ms)",
                     "t @ 99.9% consistent (ms)"});
    for (const auto& config : configs) {
      WarsTrialSet set =
          RunWarsTrials(config, scenario.model, trials, /*seed=*/88,
                        /*want_propagation=*/false, ReadFanout::kAllN,
                        bench::BenchExecution());
      const TVisibilityCurve curve(std::move(set.staleness_thresholds));
      const LatencyProfile reads(std::move(set.read_latencies));
      const LatencyProfile writes(std::move(set.write_latencies));
      const double lr = reads.Percentile(99.9);
      const double lw = writes.Percentile(99.9);
      const double t = curve.TimeForConsistency(0.999);
      table.AddRow("R=" + std::to_string(config.r) +
                       ", W=" + std::to_string(config.w),
                   {lr, lw, t}, 2);
      csv.WriteRow(scenario.name,
                   {static_cast<double>(config.r),
                    static_cast<double>(config.w), lr, lw, t});
    }
    std::cout << scenario.name << ":\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Paper anchors (Table 4): LNKD-SSD R=1,W=1 -> 0.66/0.66/1.85; "
         "LNKD-DISK R=1,W=1 -> 0.66/10.99/45.5 and R=2,W=1 -> "
         "1.63/10.9/13.6; YMMR R=1,W=1 -> 5.58/10.83/1364 and R=2,W=1 -> "
         "32.6/10.73/202; WAN R=1,W=1 -> 3.4/55.12/113. Strict quorums "
         "(R+W>N) always report t = 0.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
