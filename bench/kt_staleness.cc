// A4 — <k, t>-staleness under a write arrival process (the Section 5.1
// extension): probability of reading a value at least k versions stale, as
// a function of the probe delay t and Poisson write inter-arrival rate.
// Also prints the Equation 5 closed-form upper bound computed from the
// empirical write-propagation CDF for comparison.

#include <iostream>

#include "bench/bench_util.h"
#include "core/predictor.h"
#include "core/tvisibility.h"
#include "dist/primitives.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== <k,t>-staleness, N=3 R=W=1, LNKD-DISK legs, Poisson "
               "writes ===\n\n";
  const QuorumConfig config{3, 1, 1};
  const auto model = MakeIidModel(LnkdDisk(), 3);
  const std::vector<double> inter_arrival_means = {5.0, 20.0, 100.0};
  const std::vector<double> ts = {0.0, 5.0, 20.0};
  const std::vector<int> ks = {1, 2, 3, 5};

  CsvWriter csv(std::string(bench::kResultsDir) + "/kt_staleness.csv");
  csv.WriteHeader({"mean_interarrival_ms", "t_ms", "k", "p_staler_mc",
                   "p_bound_eq5"});

  PredictorOptions predictor_options;
  predictor_options.trials = 300000;
  predictor_options.seed = 4040;
  PbsPredictor predictor(config, model, predictor_options);

  for (double mean : inter_arrival_means) {
    TextTable table({"t \\ k", "k=1 (MC)", "k=1 (Eq.5)", "k=2 (MC)",
                     "k=2 (Eq.5)", "k=3 (MC)", "k=5 (MC)"});
    for (double t : ts) {
      const auto result = EstimateKTStaleness(
          config, model, Exponential(1.0 / mean), t, /*history=*/40,
          /*trials=*/40000, /*seed=*/4141, bench::BenchExecution());
      std::vector<double> row;
      for (int k : ks) {
        const double mc = result.ProbStalerThan(k);
        csv.WriteRow("", {mean, t, static_cast<double>(k), mc,
                          predictor.KTStalenessUpperBound(k, t)});
        if (k <= 2) {
          row.push_back(mc);
          row.push_back(predictor.KTStalenessUpperBound(k, t));
        } else {
          row.push_back(mc);
        }
      }
      table.AddRow("t=" + FormatDouble(t, 0), row, 4);
    }
    std::cout << "Mean write inter-arrival " << FormatDouble(mean, 0)
              << " ms:\n";
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Reading: staleness beyond k versions decays rapidly in k "
         "(Section 3.1's exponential bound), and rapid writes (short "
         "inter-arrivals) are the regime where multi-version staleness "
         "appears at all. Equation 5 assumes the pathological case of all "
         "k writes committing simultaneously, so it sits at or above the "
         "Monte Carlo for small t but can be undercut when long "
         "inter-arrival gaps let old versions propagate (individual-t "
         "refinement, Section 3.5).\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
