// A11 — Section 2.3's Voldemort design point: reads to R of N replicas
// instead of N of N. Verifies the paper's claim quantitatively: staleness
// is unchanged, read latency rises (max over a random R-subset vs the R-th
// order statistic of N), message count drops, and the late responses that
// power read repair and asynchronous staleness detection disappear.

#include <iostream>

#include "bench/bench_util.h"
#include "core/latency.h"
#include "core/tvisibility.h"
#include "dist/primitives.h"
#include "kvs/experiment.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace pbs;

void Run() {
  std::cout << "=== Read fan-out: Dynamo (N of N) vs Voldemort (R of N) "
               "===\n\n";
  const int trials = 500000;

  CsvWriter csv(std::string(bench::kResultsDir) +
                "/ablation_read_fanout.csv");
  csv.WriteHeader({"scenario", "r", "w", "fanout", "read_p50", "read_p999",
                   "t999"});

  std::cout << "(1) WARS model, production fits, N=3:\n\n";
  TextTable table({"scenario", "config", "fan-out", "read p50 (ms)",
                   "read p99.9 (ms)", "t @ 99.9% (ms)"});
  for (const auto& fit : AllIidProductionFits()) {
    const auto model = MakeIidModel(fit, 3);
    for (const QuorumConfig config :
         {QuorumConfig{3, 1, 1}, QuorumConfig{3, 2, 1}}) {
      for (ReadFanout fanout :
           {ReadFanout::kAllN, ReadFanout::kQuorumOnly}) {
        WarsTrialSet set = RunWarsTrials(config, model, trials, /*seed=*/111,
                                         false, fanout,
                                         bench::BenchExecution());
        const TVisibilityCurve curve(std::move(set.staleness_thresholds));
        const LatencyProfile reads(std::move(set.read_latencies));
        const std::string fanout_name =
            fanout == ReadFanout::kAllN ? "N of N" : "R of N";
        table.AddRow({fit.name, config.ToString(), fanout_name,
                      FormatDouble(reads.Percentile(50.0), 3),
                      FormatDouble(reads.Percentile(99.9), 3),
                      FormatDouble(curve.TimeForConsistency(0.999), 2)});
        csv.WriteRow(fit.name,
                     {static_cast<double>(config.r),
                      static_cast<double>(config.w),
                      fanout == ReadFanout::kAllN ? 0.0 : 1.0,
                      reads.Percentile(50.0), reads.Percentile(99.9),
                      curve.TimeForConsistency(0.999)});
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\n(2) Event-driven cluster, message and repair accounting "
               "(N=3, R=2, W=1, LNKD-DISK, read repair enabled):\n\n";
  TextTable cluster_table({"fan-out", "messages sent", "read repairs",
                           "P(consistent, t=0)", "P(consistent, 10ms)"});
  for (ReadFanout fanout : {ReadFanout::kAllN, ReadFanout::kQuorumOnly}) {
    kvs::StalenessExperimentOptions options;
    options.cluster.quorum = {3, 2, 1};
    options.cluster.legs = LnkdDisk();
    options.cluster.read_fanout = fanout;
    options.cluster.read_repair = true;
    options.cluster.request_timeout_ms = 1000.0;
    options.writes = 8000;
    options.write_spacing_ms = 250.0;
    options.read_offsets_ms = {0.0, 10.0};
    options.seed = 112;
    const auto result = kvs::RunStalenessExperiment(options);
    cluster_table.AddRow(
        {fanout == ReadFanout::kAllN ? "N of N" : "R of N",
         std::to_string(result.network_messages),
         std::to_string(result.final_metrics.read_repairs_sent),
         FormatDouble(result.t_visibility[0].ProbConsistent(), 4),
         FormatDouble(result.t_visibility[1].ProbConsistent(), 4)});
  }
  cluster_table.Print(std::cout);

  std::cout
      << "\nReading: staleness columns nearly match across fan-outs, as the "
         "paper argues — with one second-order wrinkle its set-intersection "
         "argument misses: Dynamo's first R responders are biased toward "
         "replicas with small read-request legs, i.e. the ones the read "
         "reached (and raced the write at) earliest, so the random R-subset "
         "is marginally FRESHER (1-3 points at t=0 under slow writes). "
         "R-of-N trades read latency and anti-entropy opportunities (note "
         "the reduced repair count) for ~2-3x fewer read messages.\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
