// E4 — Tables 1-3 / Section 5.5: latency model fitting. Re-derives
// Pareto-body + exponential-tail mixture fits from the published percentile
// tables and reports N-RMSE, next to the paper's published Table 3
// parameters evaluated against the same tables.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "dist/fit.h"
#include "dist/production.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pbs;

struct FitTarget {
  std::string name;
  std::vector<PercentilePoint> points;  // published operation latencies
  // The paper's Table 3 models are ONE-WAY message delays. LinkedIn's
  // tables are single-node latencies (request leg + response leg); Yammer's
  // are client-observed quorum operations on N=3, R=W=2 (order statistics
  // over replicas), which is how the paper's fits were derived.
  enum class Recompose { kTwoLegSum, kQuorumRead, kQuorumWrite };
  Recompose recompose;
  std::string published_desc;
};

/// Operation-level quantiles implied by the published one-way leg models,
/// under the target's recomposition rule.
std::vector<double> RecomposedQuantiles(const FitTarget& target,
                                        uint64_t seed) {
  std::vector<double> samples;
  const int trials = 200000;
  samples.reserve(trials);
  if (target.recompose == FitTarget::Recompose::kTwoLegSum) {
    // Single-node round trip: request + response leg of the same model.
    const auto legs =
        target.name.find("SSD") != std::string::npos ? LnkdSsd() : LnkdDisk();
    Rng rng(seed);
    for (int i = 0; i < trials; ++i) {
      samples.push_back(legs.w->Sample(rng) + legs.a->Sample(rng));
    }
  } else {
    // Yammer client operation: N=3, R=W=2 quorum over the YMMR legs.
    const auto model = MakeIidModel(Ymmr(), 3);
    const auto set = RunWarsTrials({3, 2, 2}, model, trials, seed,
                                   /*want_propagation=*/false,
                                   ReadFanout::kAllN, bench::BenchExecution());
    samples = target.recompose == FitTarget::Recompose::kQuorumRead
                  ? set.read_latencies
                  : set.write_latencies;
  }
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  for (const auto& pt : target.points) {
    out.push_back(QuantileSorted(samples, pt.percentile / 100.0));
  }
  return out;
}

void Run() {
  std::cout << "=== Section 5.5 / Table 3: latency model fitting ===\n\n";

  const std::vector<FitTarget> targets = {
      {"LinkedIn SSD (Table 1)", LinkedInSsdPercentiles(),
       FitTarget::Recompose::kTwoLegSum,
       "W=A=R=S: 91.22% Pareto(.235,10) + 8.78% Exp(1.66)"},
      {"LinkedIn disk (Table 1)", LinkedInDiskPercentiles(),
       FitTarget::Recompose::kTwoLegSum,
       "W: 38% Pareto(1.05,1.51) + 62% Exp(.183); A as SSD"},
      {"Yammer reads (Table 2)", YammerReadPercentiles(),
       FitTarget::Recompose::kQuorumRead,
       "R=S: 98.2% Pareto(1.5,3.8) + 1.8% Exp(.0217); op = R=2 of 3"},
      {"Yammer writes (Table 2)", YammerWritePercentiles(),
       FitTarget::Recompose::kQuorumWrite,
       "W: 93.9% Pareto(3,3.35) + 6.1% Exp(.0028); op = W=2 of 3"},
  };

  CsvWriter csv(std::string(bench::kResultsDir) + "/table3_fits.csv");
  csv.WriteHeader({"target", "weight_body", "xm", "alpha", "lambda",
                   "direct_fit_nrmse_pct", "published_roundtrip_nrmse_pct"});

  std::cout << "(1) Direct mixture fits of the round-trip percentile "
               "tables (our refit of the Section 5.5 methodology):\n\n";
  TextTable table({"target", "direct Pareto+Exp fit of the table",
                   "N-RMSE"});
  std::vector<ParetoExpFit> fits;
  for (const auto& target : targets) {
    const ParetoExpFit fit =
        FitParetoExponential(target.points, /*seed=*/55, /*restarts=*/32);
    fits.push_back(fit);
    table.AddRow(
        {target.name,
         FormatDouble(100.0 * fit.weight_body, 1) + "% Pareto(" +
             FormatDouble(fit.xm, 2) + "," + FormatDouble(fit.alpha, 2) +
             ") + Exp(" + FormatDouble(fit.lambda, 4) + ")",
         FormatDouble(100.0 * fit.n_rmse, 2) + "%"});
  }
  table.Print(std::cout);

  std::cout << "\n(2) The paper's Table 3 one-way models recomposed into "
               "the operations the tables actually measure (LinkedIn: "
               "single-node round trip; Yammer: N=3, R=W=2 quorum ops) and "
               "compared against the published tables:\n\n";
  TextTable rt({"target", "published one-way model", "table",
                "recomposed operation", "N-RMSE"});
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto& target = targets[i];
    const auto implied = RecomposedQuantiles(target, /*seed=*/8000 + i);
    std::vector<double> published_table;
    std::string table_str;
    std::string implied_str;
    for (size_t j = 0; j < target.points.size(); ++j) {
      published_table.push_back(target.points[j].value);
      if (j) {
        table_str += "/";
        implied_str += "/";
      }
      table_str += FormatDouble(target.points[j].value, 1);
      implied_str += FormatDouble(implied[j], 1);
    }
    const double nrmse = NormalizedRmse(published_table, implied);
    rt.AddRow({target.name, target.published_desc, table_str, implied_str,
               FormatDouble(100.0 * nrmse, 2) + "%"});
    csv.WriteRow(target.name,
                 {fits[i].weight_body, fits[i].xm, fits[i].alpha,
                  fits[i].lambda, 100.0 * fits[i].n_rmse, 100.0 * nrmse});
  }
  rt.Print(std::cout);

  std::cout
      << "\nNotes: the paper fit one-way legs so that recomposed operation "
         "latencies matched its raw traces (N-RMSE .55% LNKD-SSD, .26% "
         "LNKD-DISK W, 1.84% YMMR W, .06% YMMR A=R=S); we only have the "
         "published percentile summaries, and the paper deliberately fit "
         "the YMMR 98th-percentile knee conservatively (\"fitting the data "
         "closely resulted in ... tens of seconds\"), so the recomposed "
         "YMMR write tail sits below Table 2's extreme points by design. "
         "The LinkedIn disk 'table' row includes an extrapolated 99.9th "
         "point (Table 1 publishes mean/95/99 only).\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
